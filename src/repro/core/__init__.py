"""The Jigsaw core: synchronization, unification, reconstruction, analyses."""

from .faults import HealthReport, RetryPolicy, ShardHealth, SyncHealth
from .link.attempt import AttemptAssembler, TransmissionAttempt
from .link.exchange import ExchangeAssembler, FrameExchange
from .passes import MaterializePass, PassContext, PipelinePass, run_passes
from .pipeline import JigsawPipeline, JigsawReport
from .sync.bootstrap import (
    BootstrapResult,
    SyncPartitionError,
    bootstrap_synchronization,
)
from .sync.sharded import ShardedBootstrap
from .sync.skew import ClockTrack
from .transport.flows import FlowKey, TcpFlow, collect_flows
from .transport.inference import LossCause, TransportInference
from .unify.jframe import JFrame, JFrameKind
from .unify.unifier import UnificationResult, Unifier

__all__ = [
    "HealthReport",
    "RetryPolicy",
    "ShardHealth",
    "SyncHealth",
    "AttemptAssembler",
    "TransmissionAttempt",
    "ExchangeAssembler",
    "FrameExchange",
    "JigsawPipeline",
    "JigsawReport",
    "MaterializePass",
    "PassContext",
    "PipelinePass",
    "run_passes",
    "BootstrapResult",
    "ShardedBootstrap",
    "SyncPartitionError",
    "bootstrap_synchronization",
    "ClockTrack",
    "FlowKey",
    "TcpFlow",
    "collect_flows",
    "LossCause",
    "TransportInference",
    "JFrame",
    "JFrameKind",
    "UnificationResult",
    "Unifier",
]
