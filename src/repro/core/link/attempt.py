"""Transmission attempts: CTS-to-self + DATA + ACK grouping (Section 5.1).

"Jigsaw first identifies each transmission attempt from a sender ...  a
CTS-to-self packet, a subsequent DATA frame and the trailing ACK response
may all be part of the same attempt.  To group these together automatically
we first use the MAC address ...  As well, we use the Duration field,
carried in CTS and DATA frames, to deduce the future time in which an ACK,
if sent, must have been received.  This timing analysis is especially
critical when frames are missing from the trace since otherwise we might
risk assigning an ACK for a missing DATA frame to an earlier observed DATA
frame."

The assembler is a single pass over valid jframes per channel.  Its output
is a time-ordered list of :class:`TransmissionAttempt`, including *partial*
attempts (ACK without DATA, CTS without DATA) that the exchange FSM later
resolves or discards.

The assembler is incremental: :meth:`AttemptAssembler.feed` accepts one
jframe from the unification stream and returns the attempts that can no
longer change (their ACK arrived or its Duration-field deadline passed),
in creation order; :meth:`AttemptAssembler.finish` flushes the rest.  The
batch :meth:`AttemptAssembler.assemble` is a thin wrapper, so the one-pass
pipeline and the batch path share one implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from ...dot11.address import MacAddress
from ...dot11.constants import SLOT_TIME_LONG_US
from ...dot11.frame import FrameType
from ..unify.jframe import JFrame

#: Slack added to the Duration-field deadline when matching ACKs: allows
#: for timestamp quantization and residual sync error.
ACK_MATCH_SLACK_US = 3 * SLOT_TIME_LONG_US

#: A CTS-to-self reservation is considered stale this long after the time
#: window its Duration field reserved.
CTS_PENDING_SLACK_US = 200


@dataclass
class TransmissionAttempt:
    """One attempt: up to three jframes (protection CTS, DATA, ACK)."""

    transmitter: Optional[MacAddress]
    receiver: Optional[MacAddress]
    data: Optional[JFrame] = None
    cts: Optional[JFrame] = None
    ack: Optional[JFrame] = None

    @property
    def start_us(self) -> int:
        for jf in (self.cts, self.data, self.ack):
            if jf is not None:
                return jf.start_us
        raise ValueError("empty attempt")

    @property
    def end_us(self) -> int:
        latest = self.start_us
        for jf in (self.cts, self.data, self.ack):
            if jf is not None:
                latest = max(latest, jf.end_us)
        return latest

    @property
    def seq(self) -> Optional[int]:
        if self.data is not None and self.data.frame is not None:
            return self.data.frame.seq
        return None

    @property
    def retry(self) -> bool:
        return (
            self.data is not None
            and self.data.frame is not None
            and self.data.frame.retry
        )

    @property
    def rate_mbps(self) -> float:
        return self.data.rate_mbps if self.data is not None else 0.0

    @property
    def acked(self) -> bool:
        return self.ack is not None

    @property
    def has_data(self) -> bool:
        return self.data is not None

    @property
    def is_broadcast(self) -> bool:
        return (
            self.data is not None
            and self.data.frame is not None
            and self.data.frame.is_group_addressed
        )

    @property
    def channel(self) -> int:
        for jf in (self.data, self.cts, self.ack):
            if jf is not None:
                return jf.channel
        raise ValueError("empty attempt")


@dataclass
class _PendingData:
    """A DATA jframe awaiting its ACK (until the Duration deadline)."""

    attempt: TransmissionAttempt
    ack_deadline_us: int


@dataclass
class AttemptStats:
    jframes_in: int = 0
    attempts: int = 0
    acks_orphaned: int = 0       # ACK matched no in-window DATA
    cts_orphaned: int = 0        # protection CTS with no following DATA
    acks_matched: int = 0


class AttemptAssembler:
    """Single-pass grouping of jframes into transmission attempts."""

    def __init__(self) -> None:
        self.stats = AttemptStats()
        # Per-channel pending state.
        self._pending_cts: Dict[int, Dict[MacAddress, JFrame]] = {}
        self._pending_data: Dict[int, List[_PendingData]] = {}
        # Attempts in creation order; an attempt leaves the queue once it
        # is *sealed* (no future jframe can mutate it).  ``_unsealed``
        # holds the ids of attempts still awaiting an ACK or its deadline.
        self._emit: Deque[TransmissionAttempt] = deque()
        self._unsealed: Set[int] = set()
        self._data_attempts = 0

    def feed(self, jframe: JFrame) -> List[TransmissionAttempt]:
        """Consume one time-ordered jframe; return newly sealed attempts.

        Only frame types that participate in data exchanges matter here;
        management frames (beacons, probes, association) form single-frame
        attempts of their own so higher layers can still see them.
        Returned attempts are in creation order and immutable from here
        on, so they can flow straight into the exchange FSM.
        """
        if jframe.frame is None:
            return []
        self.stats.jframes_in += 1
        channel = jframe.channel
        cts_map = self._pending_cts.setdefault(channel, {})
        data_list = self._pending_data.setdefault(channel, [])
        self._expire(data_list, cts_map, jframe.timestamp_us)
        frame = jframe.frame

        if frame.ftype is FrameType.CTS:
            # CTS-to-self: RA names the protected sender.  (A CTS
            # answering an RTS looks identical; the sender match below
            # disambiguates in practice.)
            cts_map[frame.addr1] = jframe
        elif frame.ftype is FrameType.ACK:
            self._match_ack(jframe, data_list)
        elif frame.ftype.carries_sequence:
            attempt = TransmissionAttempt(
                transmitter=frame.addr2,
                receiver=frame.addr1,
                data=jframe,
            )
            # Attach a protection CTS from the same sender if its
            # reservation window covers this DATA frame.
            if frame.addr2 is not None and frame.addr2 in cts_map:
                cts = cts_map.pop(frame.addr2)
                # The CTS Duration field reserved the air through the
                # end of the protected exchange; the DATA frame must
                # start inside that reservation.
                if (
                    jframe.start_us
                    <= cts.end_us
                    + cts.frame.duration_us
                    + CTS_PENDING_SLACK_US
                ):
                    attempt.cts = cts
                else:
                    self.stats.cts_orphaned += 1
            self._emit.append(attempt)
            self._data_attempts += 1
            self.stats.attempts += 1
            if frame.expects_ack:
                deadline = (
                    jframe.end_us
                    + frame.duration_us
                    + ACK_MATCH_SLACK_US
                )
                data_list.append(_PendingData(attempt, deadline))
                self._unsealed.add(id(attempt))
        # RTS and other control frames: ignored (the production network
        # does not use RTS/CTS exchanges; CTS-to-self is handled above).
        return self._drain()

    def finish(self) -> List[TransmissionAttempt]:
        """Flush attempts still awaiting an ACK deadline; fix up stats.

        Also resets the per-run pending state, so the assembler can be
        reused for another jframe stream (counters in ``stats`` keep
        accumulating, as they always have).
        """
        self._pending_data.clear()
        self._pending_cts.clear()
        self._unsealed.clear()
        self.stats.attempts = self._data_attempts + self.stats.acks_orphaned
        self._data_attempts = 0
        return self._drain()

    def assemble(self, jframes: Sequence[JFrame]) -> List[TransmissionAttempt]:
        """Batch wrapper: feed every jframe, then flush."""
        attempts: List[TransmissionAttempt] = []
        for jframe in jframes:
            attempts.extend(self.feed(jframe))
        attempts.extend(self.finish())
        return attempts

    # --- checkpoint support ----------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle with ``_unsealed`` converted to stable references.

        ``_unsealed`` keys attempts by ``id()``, and ids are not stable
        across a pickle round trip.  The state carries the unsealed
        attempt *objects* instead (in emission-queue order); pickling the
        assembler as one graph preserves their identity with the copies
        in ``_emit``/``_pending_data``, so ``__setstate__`` can rebuild
        the id set exactly.
        """
        state = self.__dict__.copy()
        unsealed = self._unsealed
        state["_unsealed"] = [a for a in self._emit if id(a) in unsealed]
        return state

    def __setstate__(self, state: dict) -> None:
        unsealed = state.pop("_unsealed")
        self.__dict__.update(state)
        self._unsealed = {id(a) for a in unsealed}

    # --- helpers ---------------------------------------------------------

    def _drain(self) -> List[TransmissionAttempt]:
        """Pop the sealed prefix of the creation-order emission queue."""
        emit = self._emit
        unsealed = self._unsealed
        out: List[TransmissionAttempt] = []
        while emit and id(emit[0]) not in unsealed:
            out.append(emit.popleft())
        return out

    def _match_ack(
        self,
        ack: JFrame,
        data_list: List[_PendingData],
    ) -> None:
        """Assign an ACK to the pending DATA whose Duration window fits.

        The ACK's RA is the *data transmitter*.  Timing is authoritative:
        an ACK arriving after a DATA frame's deadline belongs to a missing
        later DATA frame, not the observed earlier one.
        """
        target = ack.frame.addr1
        best: Optional[_PendingData] = None
        for pending in data_list:
            attempt = pending.attempt
            if attempt.transmitter != target or attempt.ack is not None:
                continue
            if ack.timestamp_us > pending.ack_deadline_us:
                continue
            if ack.timestamp_us <= attempt.data.end_us:
                continue  # an ACK cannot end before its DATA frame did
            if best is None or pending.ack_deadline_us < best.ack_deadline_us:
                best = pending
        if best is not None:
            best.attempt.ack = ack
            data_list.remove(best)
            self._unsealed.discard(id(best.attempt))
            self.stats.acks_matched += 1
        else:
            # Evidence of a DATA frame the platform missed entirely.
            self._emit.append(
                TransmissionAttempt(
                    transmitter=target, receiver=None, ack=ack
                )
            )
            self.stats.acks_orphaned += 1

    def _expire(
        self,
        data_list: List[_PendingData],
        cts_map: Dict[MacAddress, JFrame],
        now_us: int,
    ) -> None:
        kept = [p for p in data_list if p.ack_deadline_us >= now_us]
        if len(kept) != len(data_list):
            for pending in data_list:
                if pending.ack_deadline_us < now_us:
                    self._unsealed.discard(id(pending.attempt))
            data_list[:] = kept
        stale = [
            addr
            for addr, cts in cts_map.items()
            if now_us
            > cts.end_us + cts.frame.duration_us + CTS_PENDING_SLACK_US
        ]
        for addr in stale:
            del cts_map[addr]
