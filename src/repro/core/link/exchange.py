"""Frame exchanges: composing attempts, with inference for missing data.

Section 5.1's right-hand FSM: "we then group transmission attempts into
frame exchanges — complete sets of transmission attempts (including
retransmissions) that end in a link-layer frame being successfully
delivered or not."  Classification is driven by the change in the 12-bit
sequence number since the last attempt from the same sender:

* **R1** — broadcast/multicast: never retransmitted; attempt == exchange.
* frames without sequence numbers (orphan ACKs) are queued "until more
  data becomes available to resolve their position";
* **R2** — delta 0: a retransmission; coalesce into the open exchange;
* **R3** — delta 1: a new exchange begins; queued orphan attempts are
  resolved heuristically (ACK timing, "acknowledgments are less likely to
  be lost than data", "the coded rate of a frame never increases in
  response to a loss", "almost all frame exchanges can complete within
  500 ms");
* **R4** — delta > 1: no inference; flush the queue, start fresh.

Delivery is *tri-state*: ``True`` (ACK observed), ``False`` (link-layer
failure inferred), ``None`` (ambiguous — "if we never see an ACK, it is
ambiguous if the frame was lost or if we simply did not observe the ACK").
Transport-layer inference (Section 5.2) later upgrades the ``None``s.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...dot11.address import MacAddress
from ...dot11.constants import EXCHANGE_HORIZON_US, RETRY_LIMIT, SEQ_MODULO
from ..unify.jframe import JFrame
from .attempt import TransmissionAttempt

#: How far an attempt's ``start_us`` may regress behind the end of the
#: jframe that created it.  An attempt starts no earlier than its attached
#: protection CTS, whose reservation (bounded by the 15-bit Duration field,
#: <= 32.8 ms) must still cover the DATA frame's start; the DATA airtime
#: itself is bounded by the longest legal PSDU at 1 Mb/s (~19 ms).  70 ms
#: therefore safely over-covers the sum, so attempts arriving later in the
#: stream can never start earlier than ``watermark - REORDER_SLACK``.
EXCHANGE_REORDER_SLACK_US = 70_000

#: Hard cap on one exchange's span, in horizons.  "Almost all frame
#: exchanges can complete within 500 ms"; a compliant sender exhausts its
#: retries well inside one horizon, so only a non-compliant sender
#: retransmitting the same sequence number indefinitely can keep an
#: exchange open longer — force-closing it bounds both the open-attempt
#: list and the reorder buffer's emission lag.
EXCHANGE_SPAN_LIMIT_HORIZONS = 8


@dataclass
class FrameExchange:
    """All attempts to deliver one link-layer frame."""

    transmitter: Optional[MacAddress]
    receiver: Optional[MacAddress]
    attempts: List[TransmissionAttempt] = field(default_factory=list)
    #: True: ACK observed.  False: inferred lost.  None: ambiguous.
    delivered: Optional[bool] = None
    #: Set when delivery was decided by transport-layer evidence.
    delivery_inferred_from_transport: bool = False
    #: Set when assembling this exchange required heuristic inference.
    needed_inference: bool = False

    @property
    def seq(self) -> Optional[int]:
        for attempt in self.attempts:
            if attempt.seq is not None:
                return attempt.seq
        return None

    @property
    def start_us(self) -> int:
        return self.attempts[0].start_us

    @property
    def end_us(self) -> int:
        return self.attempts[-1].end_us

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def retransmissions(self) -> int:
        return max(0, len([a for a in self.attempts if a.has_data]) - 1)

    @property
    def is_broadcast(self) -> bool:
        return any(a.is_broadcast for a in self.attempts)

    @property
    def data_jframe(self) -> Optional[JFrame]:
        for attempt in self.attempts:
            if attempt.data is not None:
                return attempt.data
        return None

    @property
    def final_rate_mbps(self) -> float:
        for attempt in reversed(self.attempts):
            if attempt.has_data:
                return attempt.rate_mbps
        return 0.0

    @property
    def channel(self) -> int:
        return self.attempts[0].channel


@dataclass
class ExchangeStats:
    attempts_in: int = 0
    exchanges: int = 0
    attempts_needing_inference: int = 0
    exchanges_needing_inference: int = 0
    orphans_resolved: int = 0
    orphans_discarded: int = 0


@dataclass
class _SenderState:
    last_seq: Optional[int] = None
    open_exchange: Optional[FrameExchange] = None
    orphan_queue: List[TransmissionAttempt] = field(default_factory=list)
    last_time_us: int = 0


class ExchangeAssembler:
    """Per-transmitter FSM composing attempts into frame exchanges.

    Incremental API: :meth:`feed` consumes one attempt from the stream and
    returns exchanges in ``start_us`` order (ties broken by closure order,
    i.e. exactly the stable start-time sort of the closure sequence).
    Per-sender FSMs close exchanges out of start order, so closed
    exchanges sit in a small bounded reorder heap until no open exchange
    — and no exchange a future attempt could still open — can precede
    them.  A sender that goes silent cannot stall the buffer: once the
    feed watermark passes an open exchange's last activity by more than
    the horizon plus the reorder slack, any future attempt from that
    sender would close it on arrival anyway, so it is closed eagerly
    with ``finish()`` semantics (orphan ACKs resolved first); nor can a
    non-compliant endless same-seq retransmission chain, whose exchange
    is force-closed once its span passes a hard cap.  Emission therefore
    lags the feed by at most a few exchange horizons, and downstream
    consumers
    (the pipeline's analysis passes) get in-order delivery without an
    end-of-run sort barrier.  :meth:`finish` closes every still-open
    exchange and drains the buffer.  The batch :meth:`assemble` wraps
    both.
    """

    def __init__(
        self,
        horizon_us: int = EXCHANGE_HORIZON_US,
        reorder_slack_us: int = EXCHANGE_REORDER_SLACK_US,
    ) -> None:
        self.horizon_us = horizon_us
        self.reorder_slack_us = reorder_slack_us
        self.stats = ExchangeStats()
        self._senders: Dict[Optional[MacAddress], _SenderState] = {}
        self._closed = 0
        #: States currently holding an open exchange (id(state) -> state):
        #: the emission bound scans only these, and the stale sweep keeps
        #: the set trimmed to senders active within the last few horizons.
        self._open_states: Dict[int, _SenderState] = {}
        #: States with queued orphan attempts: the sweep discards orphans
        #: too old to ever resolve (resolution needs an open exchange
        #: ending at or before the orphan, and every future exchange ends
        #: after the watermark), so a sender whose data frames are never
        #: captured cannot grow its queue O(trace).
        self._orphan_states: Dict[int, _SenderState] = {}
        #: Closed exchanges awaiting ordered emission: (start, seq, exch).
        self._reorder: List[Tuple[int, int, FrameExchange]] = []
        self._emit_seq = 0
        #: Cached emission bound and the watermark that triggers its next
        #: recomputation.  The bound only ever under-estimates (emission
        #: may lag by one sweep step, never run early), so the
        #: stale-sweep/min-start scan of the open set runs once per
        #: quarter-horizon of trace time instead of once per attempt.
        self._bound = float("-inf")
        self._next_sweep = float("-inf")
        #: Largest creation-jframe end time over fed attempts: attempts
        #: arrive in creation order, so every future attempt's jframes end
        #: at or after this — and its start can precede it by at most the
        #: reorder slack.
        self._watermark = float("-inf")

    @property
    def watermark_us(self) -> float:
        """The emission bound: every exchange starting at or before this
        has been returned from :meth:`feed`.

        This is the conservative downstream watermark of the whole
        reconstruction: exchanges emit after attempts, which emit after
        jframes, so a consumer that has drained :meth:`feed`'s returns
        has seen *every* layer's events up to this bound.  The service
        daemon seals windowed pass output against it.  ``-inf`` until
        the first emission sweep; monotonically non-decreasing after —
        including across a checkpoint/restore, since the cached bound is
        part of the pickled state.
        """
        return self._bound

    # --- checkpoint support ----------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle with the ``id()``-keyed state dicts made stable.

        ``_open_states``/``_orphan_states`` key sender states by ``id()``
        — not stable across a round trip — and their *insertion order*
        drives the stale sweep's closure order, so the state stores the
        values as ordered lists.  Identity with ``_senders``' values is
        preserved by pickling the assembler as one graph, and
        ``__setstate__`` rebuilds the dicts in the recorded order.
        """
        state = self.__dict__.copy()
        state["_open_states"] = list(self._open_states.values())
        state["_orphan_states"] = list(self._orphan_states.values())
        return state

    def __setstate__(self, state: dict) -> None:
        open_states = state.pop("_open_states")
        orphan_states = state.pop("_orphan_states")
        self.__dict__.update(state)
        self._open_states = {id(s): s for s in open_states}
        self._orphan_states = {id(s): s for s in orphan_states}

    def feed(self, attempt: TransmissionAttempt) -> List[FrameExchange]:
        """Consume one attempt; return exchanges ready in start order."""
        closed: List[FrameExchange] = []
        self.stats.attempts_in += 1
        state = self._senders.setdefault(attempt.transmitter, _SenderState())

        # Stale open exchange: frame exchanges complete within 500 ms.
        if (
            state.open_exchange is not None
            and attempt.start_us - state.last_time_us > self.horizon_us
        ):
            self._close(state, closed, moved_on=False)
        state.last_time_us = attempt.start_us

        if attempt.is_broadcast:
            # R1: broadcast — attempt and exchange are identical, and
            # delivery has no link-layer meaning (no ACK expected).
            self._close(state, closed, moved_on=True)
            closed.append(
                FrameExchange(
                    transmitter=attempt.transmitter,
                    receiver=attempt.receiver,
                    attempts=[attempt],
                    delivered=True,
                )
            )
        elif attempt.seq is None:
            # An orphan (ACK- or CTS-only) attempt: queue until data
            # resolves its position.
            state.orphan_queue.append(attempt)
            self._orphan_states[id(state)] = state
        elif state.last_seq is None or state.open_exchange is None:
            self._open_new(state, attempt, closed)
        else:
            delta = (attempt.seq - state.last_seq) % SEQ_MODULO
            if delta == 0:
                # R2: retransmission of the open exchange's frame.
                state.open_exchange.attempts.append(attempt)
                if attempt.acked:
                    state.open_exchange.delivered = True
                if not attempt.retry:
                    # Retransmission without the retry bit (the rare
                    # non-compliant implementations footnote 5 mentions).
                    state.open_exchange.needed_inference = True
                    self.stats.attempts_needing_inference += 1
            elif delta == 1:
                # R3: a new exchange; first resolve queued orphans.
                self._resolve_orphans(state, closed)
                self._open_new(state, attempt, closed, moved_on=True)
            else:
                # R4: sequence gap — no inference; flush.
                self.stats.orphans_discarded += len(state.orphan_queue)
                state.orphan_queue.clear()
                self._orphan_states.pop(id(state), None)
                self._open_new(state, attempt, closed, moved_on=False)

        # The attempt's creation jframe is its DATA frame when it has one
        # (ACK matching may extend ``end_us`` past it), else its only
        # jframe; creation-jframe ends are non-decreasing across the feed.
        creation_end = (
            attempt.data.end_us if attempt.data is not None else attempt.end_us
        )
        if creation_end > self._watermark:
            self._watermark = creation_end

        # Stale sweep + emission bound in one scan of the open set (which
        # the sweep itself keeps trimmed to recently-active senders).  A
        # sender silent for so long that any future attempt of its own
        # (start >= watermark - slack) would trigger the staleness close
        # above is treated like end-of-run: queued orphan ACKs are
        # resolved against its open exchange first (finish() semantics —
        # which can upgrade delivery where the on-arrival staleness close
        # would not have; the same asymmetry the batch assembler always
        # had between its staleness and finish paths), then the exchange
        # closes with moved_on=False inference.  An exchange whose *span*
        # exceeds the hard cap — only a non-compliant same-seq
        # retransmission chain can do that — is force-closed the same
        # way.  Without both rules an open exchange could pin the
        # emission bound (and grow the buffer) forever.
        #
        # The scan is amortized: it runs once per quarter-horizon of
        # watermark progress, not per attempt.  The cached bound stays
        # valid in between — exchanges opened after a sweep start at or
        # above (watermark-at-sweep - slack) >= bound, so a stale bound
        # only *delays* emission by at most one step, never emits early.
        if self._watermark >= self._next_sweep:
            bound = self._watermark - self.reorder_slack_us
            stale_deadline = bound - self.horizon_us
            span_deadline = (
                bound - EXCHANGE_SPAN_LIMIT_HORIZONS * self.horizon_us
            )
            open_states = self._open_states
            if open_states:
                stale: List[_SenderState] = []
                for open_state in open_states.values():
                    start = open_state.open_exchange.start_us
                    if (
                        open_state.last_time_us < stale_deadline
                        or start < span_deadline
                    ):
                        stale.append(open_state)
                    elif start < bound:
                        bound = start
                for open_state in stale:
                    self._resolve_orphans(open_state, closed)
                    self._close(open_state, closed, moved_on=False)
            # Orphans queued by senders with no open exchange can only
            # ever resolve against an exchange ending at or before them;
            # every future exchange ends after the watermark, so orphans
            # older than the bound are dead — discard them (the same
            # verdict finish() or the next R3/R4 would reach).
            if self._orphan_states:
                for orphan_state in list(self._orphan_states.values()):
                    if orphan_state.open_exchange is not None:
                        continue  # handled when that exchange closes
                    queue = orphan_state.orphan_queue
                    kept = [o for o in queue if o.start_us >= bound]
                    if len(kept) != len(queue):
                        self.stats.orphans_discarded += len(queue) - len(kept)
                        queue[:] = kept
                    if not queue:
                        self._orphan_states.pop(id(orphan_state), None)
            self._bound = bound
            self._next_sweep = self._watermark + self.horizon_us // 4

        self._closed += len(closed)
        for exchange in closed:
            heapq.heappush(
                self._reorder,
                (exchange.start_us, self._emit_seq, exchange),
            )
            self._emit_seq += 1
        ready: List[FrameExchange] = []
        reorder = self._reorder
        bound = self._bound
        while reorder and reorder[0][0] <= bound:
            ready.append(heapq.heappop(reorder)[2])
        return ready

    def finish(self) -> List[FrameExchange]:
        """Close every open exchange, resolve remaining orphans and drain
        the reorder buffer (in start order, like :meth:`feed`).

        Resets the per-sender FSM state so the assembler can be reused
        for another attempt stream (``stats`` counters keep accumulating).
        """
        closed: List[FrameExchange] = []
        for state in self._senders.values():
            self._resolve_orphans(state, closed)
            self._close(state, closed, moved_on=False)
        self._closed += len(closed)
        self.stats.exchanges = self._closed
        self._senders.clear()
        self._open_states.clear()
        self._orphan_states.clear()
        self._closed = 0
        reorder = self._reorder
        for exchange in closed:
            heapq.heappush(reorder, (exchange.start_us, self._emit_seq, exchange))
            self._emit_seq += 1
        drained = [heapq.heappop(reorder)[2] for _ in range(len(reorder))]
        self._watermark = float("-inf")
        self._bound = float("-inf")
        self._next_sweep = float("-inf")
        self._emit_seq = 0
        return drained

    def assemble(
        self, attempts: Sequence[TransmissionAttempt]
    ) -> List[FrameExchange]:
        """Batch wrapper: feed every attempt, then flush.

        ``feed``/``finish`` already emit in start order; the sort is a
        stable no-op safety net keeping the documented invariant
        unconditional.
        """
        exchanges: List[FrameExchange] = []
        for attempt in attempts:
            exchanges.extend(self.feed(attempt))
        exchanges.extend(self.finish())
        exchanges.sort(key=lambda e: e.start_us)
        return exchanges

    # --- internals --------------------------------------------------------

    def _open_new(
        self,
        state: _SenderState,
        attempt: TransmissionAttempt,
        exchanges: List[FrameExchange],
        moved_on: bool = False,
    ) -> None:
        self._close(state, exchanges, moved_on=moved_on)
        exchange = FrameExchange(
            transmitter=attempt.transmitter,
            receiver=attempt.receiver,
            attempts=[attempt],
            delivered=True if attempt.acked else None,
        )
        if attempt.retry:
            # First observed attempt already carries the retry bit: we
            # missed at least one earlier transmission of this exchange.
            exchange.needed_inference = True
            self.stats.attempts_needing_inference += 1
        state.open_exchange = exchange
        self._open_states[id(state)] = state
        state.last_seq = attempt.seq

    def _close(
        self,
        state: _SenderState,
        exchanges: List[FrameExchange],
        moved_on: bool = False,
    ) -> None:
        if state.open_exchange is None:
            return
        exchange = state.open_exchange
        self._infer_delivery(exchange, moved_on)
        if exchange.needed_inference:
            self.stats.exchanges_needing_inference += 1
        exchanges.append(exchange)
        state.open_exchange = None
        self._open_states.pop(id(state), None)

    def _infer_delivery(self, exchange: FrameExchange, moved_on: bool) -> None:
        """Deduce delivery from the sender's visible MAC behaviour.

        "We must deduce the presence or absence of this missing data based
        on the subsequent behavior of the sender and receiver" (Section
        5.1).  With no ACK observed:

        * the sender burned through the full retry limit — it *abandoned*
          the frame, so the exchange failed;
        * the sender advanced to the next sequence number after fewer
          attempts — an 802.11 sender only stops retrying early because it
          received the ACK, so the monitors simply missed it.
        """
        if exchange.delivered is not None or exchange.is_broadcast:
            return
        n_data = sum(1 for a in exchange.attempts if a.has_data)
        if n_data >= RETRY_LIMIT:
            exchange.delivered = False
            exchange.needed_inference = True
            self.stats.attempts_needing_inference += 1
        elif moved_on and 1 <= n_data <= 2:
            # Missing one ACK is plausible; missing several in a row is not
            # ("acknowledgments are less likely to be lost than data").
            # Mid-size retry runs stay ambiguous for the transport oracle.
            exchange.delivered = True
            exchange.needed_inference = True
            self.stats.attempts_needing_inference += 1

    def _resolve_orphans(
        self, state: _SenderState, exchanges: List[FrameExchange]
    ) -> None:
        """Assign queued no-sequence attempts using timing heuristics.

        An orphan ACK addressed to this sender that falls inside the open
        exchange's plausible ACK window is evidence the (possibly missed)
        data of that exchange was delivered — "acknowledgments are less
        likely to be lost than data", so prefer believing the ACK over
        assuming a spurious match.
        """
        if not state.orphan_queue:
            return
        open_exchange = state.open_exchange
        for orphan in state.orphan_queue:
            resolved = False
            if (
                open_exchange is not None
                and orphan.ack is not None
                and open_exchange.delivered is not True
            ):
                gap = orphan.start_us - open_exchange.end_us
                if 0 <= gap <= self.horizon_us:
                    # The missing-DATA ACK completes the open exchange.
                    open_exchange.attempts.append(orphan)
                    open_exchange.delivered = True
                    open_exchange.needed_inference = True
                    self.stats.attempts_needing_inference += 1
                    self.stats.orphans_resolved += 1
                    resolved = True
            if not resolved:
                self.stats.orphans_discarded += 1
        state.orphan_queue.clear()
        self._orphan_states.pop(id(state), None)
