"""Link-layer reconstruction: attempts, exchanges, delivery inference."""

from .attempt import AttemptAssembler, AttemptStats, TransmissionAttempt
from .exchange import ExchangeAssembler, ExchangeStats, FrameExchange

__all__ = [
    "AttemptAssembler",
    "AttemptStats",
    "TransmissionAttempt",
    "ExchangeAssembler",
    "ExchangeStats",
    "FrameExchange",
]
