"""Co-channel interference estimation — Section 7.2, Figure 9.

The estimator is exactly the paper's: for each sender/receiver pair
``(s, r)``, split transmissions into those with and without a simultaneous
transmission elsewhere in the trace, and attribute the *excess* loss under
simultaneity to interference:

    P_i = P[I|S] = [(nlx/nx) - (nl0/n0)] / (1 - nl0/n0)

The interference loss rate is then ``X = P_i * (nx / n)``, truncated at
zero when the estimate goes negative (the paper truncates 11% of pairs).
Only pairs exchanging at least ``min_packets`` transmissions are scored
(the paper uses 100 over a day; compressed scenarios pass less).

The estimator is implemented as :class:`InterferenceScanner`, an
*incremental* feed: jframes grow per-channel occupancy timelines,
attempts are scored against them on arrival, and — because jframes and
attempts both arrive in stream order — intervals that can no longer
overlap any future attempt are pruned, keeping the live window bounded
by tens of milliseconds of airtime rather than the whole trace.
:class:`InterferencePass` plugs the scanner into the pipeline's pass
API; :func:`estimate_interference` is the batch replay wrapper.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple


from ...dot11.address import MacAddress
from ..link.attempt import TransmissionAttempt
from ..passes import PassContext, PipelinePass, run_passes
from ..pipeline import JigsawReport
from ..unify.jframe import JFrame
from .summary import StationTracker


@dataclass
class PairInterference:
    """Interference estimate for one (sender, receiver) pair."""

    sender: MacAddress
    receiver: MacAddress
    n: int           # all transmissions s -> r
    n0: int          # without simultaneous transmission
    nl0: int         # ... of which lost
    nx: int          # with at least one simultaneous transmission
    nlx: int         # ... of which lost
    sender_is_ap: bool = False

    @property
    def background_loss_rate(self) -> float:
        return self.nl0 / self.n0 if self.n0 else 0.0

    @property
    def p_interference(self) -> Optional[float]:
        """P_i = P[I|S]; None when no simultaneous transmissions occurred."""
        if self.nx == 0 or self.n0 == 0:
            return None
        background = self.background_loss_rate
        if background >= 1.0:
            return None
        return ((self.nlx / self.nx) - background) / (1.0 - background)

    @property
    def interference_loss_rate(self) -> float:
        """X: probability a transmission from s to r is lost to interference."""
        p = self.p_interference
        if p is None:
            return 0.0
        return max(0.0, p) * (self.nx / self.n)


@dataclass
class InterferenceResult:
    pairs: List[PairInterference]
    truncated_pairs: int = 0    # negative P_i truncated to zero

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def fraction_pairs_interfered(self) -> float:
        """Fraction of scored pairs with positive interference estimate."""
        if not self.pairs:
            return 0.0
        positive = sum(
            1
            for p in self.pairs
            if p.p_interference is not None and p.p_interference > 0
        )
        return positive / len(self.pairs)

    def sender_split(self) -> Tuple[float, float]:
        """(AP share, client share) among interfered pairs (paper: 56/44)."""
        interfered = [
            p
            for p in self.pairs
            if p.p_interference is not None and p.p_interference > 0
        ]
        if not interfered:
            return 0.0, 0.0
        aps = sum(1 for p in interfered if p.sender_is_ap)
        return aps / len(interfered), 1 - aps / len(interfered)

    def loss_rate_cdf(self) -> List[float]:
        """Sorted X values across pairs — the Figure 9 curve."""
        return sorted(p.interference_loss_rate for p in self.pairs)

    def fraction_pairs_with_rate_at_least(self, threshold: float) -> float:
        if not self.pairs:
            return 0.0
        return (
            sum(
                1
                for p in self.pairs
                if p.interference_loss_rate >= threshold
            )
            / len(self.pairs)
        )

    def average_background_loss(self) -> float:
        total_n0 = sum(p.n0 for p in self.pairs)
        total_nl0 = sum(p.nl0 for p in self.pairs)
        return total_nl0 / total_n0 if total_n0 else 0.0

    def format_table(self) -> str:
        ap_share, client_share = self.sender_split()
        xs = self.loss_rate_cdf()
        median = xs[len(xs) // 2] if xs else 0.0
        return "\n".join(
            [
                f"scored (s,r) pairs:        {self.n_pairs}",
                f"pairs with interference:   "
                f"{self.fraction_pairs_interfered():.2f} (paper: 0.88)",
                f"sender split AP/client:    {ap_share:.2f}/{client_share:.2f} "
                f"(paper: 0.56/0.44)",
                f"avg background loss rate:  "
                f"{self.average_background_loss():.3f} (paper: 0.12)",
                f"median interference rate:  {median:.3f} "
                f"(paper: ~0.025 at the median)",
                f"pairs with X >= 0.1:       "
                f"{self.fraction_pairs_with_rate_at_least(0.1):.2f} (paper: 0.10)",
                f"pairs with X >= 0.2:       "
                f"{self.fraction_pairs_with_rate_at_least(0.2):.2f} (paper: 0.05)",
                f"negative P_i truncated:    {self.truncated_pairs}",
            ]
        )


#: The estimator's backwards scan margin: an overlapping frame that
#: started more than this long before the attempt is not considered
#: (matches the batch implementation's bisect bound).
SCAN_MARGIN_US = 20_000

#: Upper bound on any single frame's airtime: the longest legal PSDU at
#: 1 Mb/s is ~19 ms and the 15-bit Duration field tops out at 32.8 ms.
#: Used to bound both the prune horizon and the candidate scan range.
_DURATION_BOUND_US = 33_000


class _ChannelWindow:
    """One channel's occupancy intervals, in arrival (end-time) order.

    The jframe stream is ordered by end-of-reception timestamp, so the
    parallel ``ends`` array is sorted and overlap candidates for a query
    ``[qstart, qend)`` live in the slice ``end > qstart`` and
    ``end <= qend + duration bound`` — a bisect range bounded by the
    airtime window, independent of trace length.  A head index advances
    past intervals no future query can overlap; compaction frees them.
    """

    __slots__ = ("ends", "items", "head")

    def __init__(self) -> None:
        self.ends: List[int] = []
        self.items: List[Tuple[int, int, Optional[MacAddress]]] = []
        self.head = 0

    def add(self, start: int, end: int, tx: Optional[MacAddress]) -> None:
        self.ends.append(end)
        self.items.append((start, end, tx))

    def prune(self, floor: int) -> None:
        """Drop intervals with ``end < floor`` (irrelevant forever)."""
        ends = self.ends
        head = self.head
        n = len(ends)
        while head < n and ends[head] < floor:
            head += 1
        self.head = head
        if head > 4096 and head * 2 > n:
            del ends[:head]
            del self.items[:head]
            self.head = 0

    def has_simultaneous(
        self,
        start_us: int,
        end_us: int,
        exclude: Tuple[Optional[MacAddress], ...],
    ) -> bool:
        """Any overlapping transmission from a third party?"""
        ends = self.ends
        # Overlap requires other.end > start and other.start < end; the
        # latter bounds other.end by end + max frame airtime.
        lo = bisect_right(ends, start_us, lo=self.head)
        hi = bisect_right(ends, end_us + _DURATION_BOUND_US, lo=lo)
        items = self.items
        margin = start_us - SCAN_MARGIN_US
        for index in range(lo, hi):
            other_start, _, transmitter = items[index]
            # Scan only a bounded margin backwards for long frames that
            # started earlier (the batch estimator's bisect bound).
            if other_start < margin or other_start >= end_us:
                continue
            if transmitter is not None and transmitter in exclude:
                continue
            return True
        return False


class InterferenceScanner:
    """Incremental Section 7.2 estimator.

    Feed jframes (occupancy) and attempts (scored transmissions) in
    stream order; :meth:`result` builds the scored pair population.  The
    per-channel windows self-prune, so memory stays bounded by the
    airtime horizon when driven from the live pipeline.
    """

    def __init__(self) -> None:
        self._windows: Dict[int, _ChannelWindow] = defaultdict(_ChannelWindow)
        self._counters: Dict[
            Tuple[MacAddress, MacAddress], List[int]
        ] = defaultdict(lambda: [0, 0, 0, 0, 0])  # n, n0, nl0, nx, nlx
        #: Attempts awaiting their overlap query: an attempt seals before
        #: a *long* overlapping frame (started before the attempt's data
        #: ended, ending after the seal point) has arrived, so queries
        #: wait until the jframe watermark passes end + max airtime.
        self._pending: "deque[TransmissionAttempt]" = deque()
        #: Largest data end over scorable attempts fed so far.  Attempts
        #: arrive in data-frame stream order, so every future query ends
        #: at or after this — the only safe prune anchor in both feeding
        #: styles (live interleaved, and replay where all jframes precede
        #: all attempts).
        self._max_attempt_end: Optional[int] = None

    def feed_jframe(self, jframe: JFrame) -> None:
        window = None
        if jframe.duration_us > 0:
            window = self._windows[jframe.channel]
            window.add(jframe.start_us, jframe.end_us, jframe.transmitter)
        watermark = jframe.timestamp_us
        pending = self._pending
        while (
            pending
            and pending[0].data.end_us + _DURATION_BOUND_US <= watermark
        ):
            self._score(pending.popleft())
        if window is not None:
            # Keep every channel's window bounded — including channels
            # that never see a scored attempt (all-broadcast/management
            # traffic), which would otherwise accumulate forever.  No
            # future query can end before the oldest still-pending
            # attempt, nor before the newest attempt fed so far.
            if pending:
                oldest = pending[0].data.end_us
            elif self._max_attempt_end is not None:
                oldest = self._max_attempt_end
            else:
                return
            window.prune(oldest - _DURATION_BOUND_US - SCAN_MARGIN_US)

    def feed_attempt(self, attempt: TransmissionAttempt) -> None:
        if (
            not attempt.has_data
            or attempt.is_broadcast
            or attempt.transmitter is None
            or attempt.receiver is None
        ):
            return
        self._max_attempt_end = attempt.data.end_us
        self._pending.append(attempt)

    def _score(self, attempt: TransmissionAttempt) -> None:
        data = attempt.data
        window = self._windows[data.channel]
        # Attempts arrive in data-frame stream order, so every future
        # query ends at or after this one; intervals ending more than a
        # frame-airtime-plus-margin before it can never overlap again.
        window.prune(data.end_us - _DURATION_BOUND_US - SCAN_MARGIN_US)
        simultaneous = window.has_simultaneous(
            data.start_us,
            data.end_us,
            exclude=(attempt.transmitter, attempt.receiver),
        )
        lost = not attempt.acked
        c = self._counters[(attempt.transmitter, attempt.receiver)]
        c[0] += 1
        if simultaneous:
            c[3] += 1
            if lost:
                c[4] += 1
        else:
            c[1] += 1
            if lost:
                c[2] += 1

    def result(
        self, aps: Set[MacAddress], min_packets: int = 100
    ) -> InterferenceResult:
        pending = self._pending
        while pending:
            self._score(pending.popleft())
        pairs: List[PairInterference] = []
        truncated = 0
        for (sender, receiver), (n, n0, nl0, nx, nlx) in self._counters.items():
            if n < min_packets:
                continue
            pair = PairInterference(
                sender=sender,
                receiver=receiver,
                n=n,
                n0=n0,
                nl0=nl0,
                nx=nx,
                nlx=nlx,
                sender_is_ap=sender in aps,
            )
            p = pair.p_interference
            if p is not None and p < 0:
                truncated += 1
            pairs.append(pair)
        pairs.sort(key=lambda p: (str(p.sender), str(p.receiver)))
        return InterferenceResult(pairs=pairs, truncated_pairs=truncated)


class InterferencePass(PipelinePass):
    """Streaming Figure 9: the scanner fed from the pipeline's loop."""

    name = "interference"

    def __init__(
        self,
        min_packets: int = 100,
        tracker: Optional[StationTracker] = None,
    ) -> None:
        self.min_packets = min_packets
        self._scanner = InterferenceScanner()
        self._tracker = tracker or StationTracker()

    def on_jframe(self, jframe) -> None:
        self._tracker.feed(jframe)
        self._scanner.feed_jframe(jframe)

    def on_attempt(self, attempt) -> None:
        self._scanner.feed_attempt(attempt)

    def finish(self, context: Optional[PassContext]) -> InterferenceResult:
        _, aps = self._tracker.finish()
        return self._scanner.result(aps, min_packets=self.min_packets)


def estimate_interference(
    report: JigsawReport,
    min_packets: int = 100,
) -> InterferenceResult:
    """Run the Section 7.2 estimator over a pipeline report."""
    return run_passes(report, [InterferencePass(min_packets=min_packets)])[
        "interference"
    ]
