"""Co-channel interference estimation — Section 7.2, Figure 9.

The estimator is exactly the paper's: for each sender/receiver pair
``(s, r)``, split transmissions into those with and without a simultaneous
transmission elsewhere in the trace, and attribute the *excess* loss under
simultaneity to interference:

    P_i = P[I|S] = [(nlx/nx) - (nl0/n0)] / (1 - nl0/n0)

The interference loss rate is then ``X = P_i * (nx / n)``, truncated at
zero when the estimate goes negative (the paper truncates 11% of pairs).
Only pairs exchanging at least ``min_packets`` transmissions are scored
(the paper uses 100 over a day; compressed scenarios pass less).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...dot11.address import MacAddress
from ..link.attempt import TransmissionAttempt
from ..pipeline import JigsawReport
from ..unify.jframe import JFrame
from .summary import identify_stations


@dataclass
class PairInterference:
    """Interference estimate for one (sender, receiver) pair."""

    sender: MacAddress
    receiver: MacAddress
    n: int           # all transmissions s -> r
    n0: int          # without simultaneous transmission
    nl0: int         # ... of which lost
    nx: int          # with at least one simultaneous transmission
    nlx: int         # ... of which lost
    sender_is_ap: bool = False

    @property
    def background_loss_rate(self) -> float:
        return self.nl0 / self.n0 if self.n0 else 0.0

    @property
    def p_interference(self) -> Optional[float]:
        """P_i = P[I|S]; None when no simultaneous transmissions occurred."""
        if self.nx == 0 or self.n0 == 0:
            return None
        background = self.background_loss_rate
        if background >= 1.0:
            return None
        return ((self.nlx / self.nx) - background) / (1.0 - background)

    @property
    def interference_loss_rate(self) -> float:
        """X: probability a transmission from s to r is lost to interference."""
        p = self.p_interference
        if p is None:
            return 0.0
        return max(0.0, p) * (self.nx / self.n)


@dataclass
class InterferenceResult:
    pairs: List[PairInterference]
    truncated_pairs: int = 0    # negative P_i truncated to zero

    @property
    def n_pairs(self) -> int:
        return len(self.pairs)

    def fraction_pairs_interfered(self) -> float:
        """Fraction of scored pairs with positive interference estimate."""
        if not self.pairs:
            return 0.0
        positive = sum(
            1
            for p in self.pairs
            if p.p_interference is not None and p.p_interference > 0
        )
        return positive / len(self.pairs)

    def sender_split(self) -> Tuple[float, float]:
        """(AP share, client share) among interfered pairs (paper: 56/44)."""
        interfered = [
            p
            for p in self.pairs
            if p.p_interference is not None and p.p_interference > 0
        ]
        if not interfered:
            return 0.0, 0.0
        aps = sum(1 for p in interfered if p.sender_is_ap)
        return aps / len(interfered), 1 - aps / len(interfered)

    def loss_rate_cdf(self) -> List[float]:
        """Sorted X values across pairs — the Figure 9 curve."""
        return sorted(p.interference_loss_rate for p in self.pairs)

    def fraction_pairs_with_rate_at_least(self, threshold: float) -> float:
        if not self.pairs:
            return 0.0
        return (
            sum(
                1
                for p in self.pairs
                if p.interference_loss_rate >= threshold
            )
            / len(self.pairs)
        )

    def average_background_loss(self) -> float:
        total_n0 = sum(p.n0 for p in self.pairs)
        total_nl0 = sum(p.nl0 for p in self.pairs)
        return total_nl0 / total_n0 if total_n0 else 0.0

    def format_table(self) -> str:
        ap_share, client_share = self.sender_split()
        xs = self.loss_rate_cdf()
        median = xs[len(xs) // 2] if xs else 0.0
        return "\n".join(
            [
                f"scored (s,r) pairs:        {self.n_pairs}",
                f"pairs with interference:   "
                f"{self.fraction_pairs_interfered():.2f} (paper: 0.88)",
                f"sender split AP/client:    {ap_share:.2f}/{client_share:.2f} "
                f"(paper: 0.56/0.44)",
                f"avg background loss rate:  "
                f"{self.average_background_loss():.3f} (paper: 0.12)",
                f"median interference rate:  {median:.3f} "
                f"(paper: ~0.025 at the median)",
                f"pairs with X >= 0.1:       "
                f"{self.fraction_pairs_with_rate_at_least(0.1):.2f} (paper: 0.10)",
                f"pairs with X >= 0.2:       "
                f"{self.fraction_pairs_with_rate_at_least(0.2):.2f} (paper: 0.05)",
                f"negative P_i truncated:    {self.truncated_pairs}",
            ]
        )


class _ChannelTimeline:
    """Sorted transmission intervals per channel for overlap queries."""

    def __init__(self, jframes: Sequence[JFrame]) -> None:
        self._starts: Dict[int, List[int]] = defaultdict(list)
        self._intervals: Dict[int, List[Tuple[int, int, Optional[MacAddress]]]] = (
            defaultdict(list)
        )
        for jframe in jframes:
            if jframe.duration_us <= 0:
                continue
            self._intervals[jframe.channel].append(
                (jframe.start_us, jframe.end_us, jframe.transmitter)
            )
        for channel, intervals in self._intervals.items():
            intervals.sort(key=lambda interval: (interval[0], interval[1]))
            self._starts[channel] = [iv[0] for iv in intervals]

    def has_simultaneous(
        self,
        channel: int,
        start_us: int,
        end_us: int,
        exclude: Tuple[Optional[MacAddress], ...],
    ) -> bool:
        """Any overlapping transmission from a third party on ``channel``?"""
        intervals = self._intervals.get(channel)
        if not intervals:
            return False
        starts = self._starts[channel]
        # Overlap requires other.start < end; scan a margin backwards for
        # long frames that started earlier.
        hi = bisect_left(starts, end_us)
        lo = max(0, bisect_left(starts, start_us - 20_000))
        for index in range(lo, hi):
            other_start, other_end, transmitter = intervals[index]
            if other_end <= start_us or other_start >= end_us:
                continue
            if transmitter is not None and transmitter in exclude:
                continue
            return True
        return False


def estimate_interference(
    report: JigsawReport,
    min_packets: int = 100,
) -> InterferenceResult:
    """Run the Section 7.2 estimator over a pipeline report."""
    _, aps = identify_stations(report)
    timeline = _ChannelTimeline(report.jframes)
    counters: Dict[Tuple[MacAddress, MacAddress], List[int]] = defaultdict(
        lambda: [0, 0, 0, 0, 0]  # n, n0, nl0, nx, nlx
    )
    for attempt in report.attempts:
        if (
            not attempt.has_data
            or attempt.is_broadcast
            or attempt.transmitter is None
            or attempt.receiver is None
        ):
            continue
        data = attempt.data
        lost = not attempt.acked
        simultaneous = timeline.has_simultaneous(
            data.channel,
            data.start_us,
            data.end_us,
            exclude=(attempt.transmitter, attempt.receiver),
        )
        c = counters[(attempt.transmitter, attempt.receiver)]
        c[0] += 1
        if simultaneous:
            c[3] += 1
            if lost:
                c[4] += 1
        else:
            c[1] += 1
            if lost:
                c[2] += 1

    pairs: List[PairInterference] = []
    truncated = 0
    for (sender, receiver), (n, n0, nl0, nx, nlx) in counters.items():
        if n < min_packets:
            continue
        pair = PairInterference(
            sender=sender,
            receiver=receiver,
            n=n,
            n0=n0,
            nl0=nl0,
            nx=nx,
            nlx=nlx,
            sender_is_ap=sender in aps,
        )
        p = pair.p_interference
        if p is not None and p < 0:
            truncated += 1
        pairs.append(pair)
    pairs.sort(key=lambda p: (str(p.sender), str(p.receiver)))
    return InterferenceResult(pairs=pairs, truncated_pairs=truncated)
