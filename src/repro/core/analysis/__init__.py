"""Analyses exploiting the global viewpoint (Sections 6 and 7)."""

from .activity import (
    ActivityBin,
    ActivityTimeline,
    activity_timeline,
    broadcast_airtime_share,
)
from .coverage import (
    CoverageResult,
    OracleCoverage,
    PodReductionResult,
    StationCoverage,
    oracle_coverage,
    pod_reduction_coverage,
    wired_coverage,
)
from .dispersion import DispersionCdf, dispersion_cdf
from .interference import (
    InterferenceResult,
    PairInterference,
    estimate_interference,
)
from .protection import ProtectionResult, analyze_protection
from .summary import TraceSummary, identify_stations, summarize
from .tcploss import TcpLossResult, analyze_tcp_loss

__all__ = [
    "ActivityBin",
    "ActivityTimeline",
    "activity_timeline",
    "broadcast_airtime_share",
    "CoverageResult",
    "OracleCoverage",
    "PodReductionResult",
    "StationCoverage",
    "oracle_coverage",
    "pod_reduction_coverage",
    "wired_coverage",
    "DispersionCdf",
    "dispersion_cdf",
    "InterferenceResult",
    "PairInterference",
    "estimate_interference",
    "ProtectionResult",
    "analyze_protection",
    "TraceSummary",
    "identify_stations",
    "summarize",
    "TcpLossResult",
    "analyze_tcp_loss",
]
