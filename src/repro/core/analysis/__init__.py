"""Analyses exploiting the global viewpoint (Sections 6 and 7).

Every analysis exists in two interchangeable forms:

* a **streaming pass** (:class:`ActivityPass`, :class:`DispersionPass`,
  :class:`ProtectionPass`, :class:`TcpLossPass`, :class:`SummaryPass`,
  :class:`InterferencePass`, :class:`WiredCoveragePass`,
  :class:`BroadcastAirtimePass`) that taps
  ``JigsawPipeline.run(traces, passes=[...])`` directly and runs in
  bounded memory with ``materialize=False``;
* the classic **function entry point** (``activity_timeline(report)``
  etc.), now a thin wrapper that replays a materialized report through
  the very same pass — so both styles produce identical results by
  construction.
"""

from .activity import (
    ActivityBin,
    ActivityPass,
    ActivityTimeline,
    BroadcastAirtimePass,
    activity_timeline,
    broadcast_airtime_share,
)
from .coverage import (
    CoverageResult,
    OracleCoverage,
    PodReductionResult,
    StationCoverage,
    WiredCoveragePass,
    oracle_coverage,
    pod_reduction_coverage,
    wired_coverage,
)
from .dispersion import DispersionCdf, DispersionPass, dispersion_cdf
from .interference import (
    InterferencePass,
    InterferenceResult,
    InterferenceScanner,
    PairInterference,
    estimate_interference,
)
from .protection import ProtectionPass, ProtectionResult, analyze_protection
from .summary import (
    StationTracker,
    SummaryPass,
    TraceSummary,
    identify_stations,
    summarize,
)
from .tcploss import TcpLossPass, TcpLossResult, analyze_tcp_loss

__all__ = [
    "ActivityBin",
    "ActivityPass",
    "ActivityTimeline",
    "BroadcastAirtimePass",
    "activity_timeline",
    "broadcast_airtime_share",
    "CoverageResult",
    "OracleCoverage",
    "PodReductionResult",
    "StationCoverage",
    "WiredCoveragePass",
    "oracle_coverage",
    "pod_reduction_coverage",
    "wired_coverage",
    "DispersionCdf",
    "DispersionPass",
    "dispersion_cdf",
    "InterferencePass",
    "InterferenceResult",
    "InterferenceScanner",
    "PairInterference",
    "estimate_interference",
    "ProtectionPass",
    "ProtectionResult",
    "analyze_protection",
    "StationTracker",
    "SummaryPass",
    "TraceSummary",
    "identify_stations",
    "summarize",
    "TcpLossPass",
    "TcpLossResult",
    "analyze_tcp_loss",
]
