"""Coverage evaluation — Section 6, Figures 6 and 7.

Three experiments:

* :func:`wired_coverage` — "for every packet in every flow in the wired
  trace that would result in a unicast DATA packet on the wireless network,
  we checked to see if the packet also appeared in the wireless trace",
  reported per station and split clients vs APs (Figure 6);
* :func:`pod_reduction_coverage` — re-run the whole pipeline on shrinking
  pod subsets, chosen by visual redundancy, and measure how AP and client
  coverage degrade (Figure 7);
* :func:`oracle_coverage` — the controlled laptop experiment: compare the
  platform's captures against the ground truth of everything a chosen
  station transmitted (the paper measures ~95% of link-level events).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


from ...dot11.address import MacAddress
from ...dot11.frame import FrameType
from ...net.wired import WiredTraceRecord
from ..passes import PassContext, PipelinePass
from ..unify.jframe import JFrame


@dataclass
class StationCoverage:
    station: MacAddress
    is_ap: bool
    wired_packets: int
    observed_packets: int

    @property
    def coverage(self) -> float:
        if self.wired_packets == 0:
            return 1.0
        return self.observed_packets / self.wired_packets


@dataclass
class CoverageResult:
    """Figure 6: per-station coverage of wired-trace packets."""

    stations: List[StationCoverage]

    def overall(self) -> float:
        total = sum(s.wired_packets for s in self.stations)
        seen = sum(s.observed_packets for s in self.stations)
        return seen / total if total else 1.0

    def _group(self, is_ap: bool) -> List[StationCoverage]:
        return [s for s in self.stations if s.is_ap == is_ap]

    def group_coverage(self, is_ap: bool) -> float:
        group = self._group(is_ap)
        total = sum(s.wired_packets for s in group)
        seen = sum(s.observed_packets for s in group)
        return seen / total if total else 1.0

    def fraction_of_stations_above(self, threshold: float, is_ap: bool) -> float:
        group = self._group(is_ap)
        if not group:
            return 0.0
        return sum(1 for s in group if s.coverage >= threshold) / len(group)

    def format_table(self) -> str:
        lines = [
            f"overall coverage: {self.overall():.3f} (paper: 0.97)",
            f"AP coverage:      {self.group_coverage(True):.3f}",
            f"client coverage:  {self.group_coverage(False):.3f}",
            "fraction of clients with 100% coverage: "
            f"{self.fraction_of_stations_above(1.0, False):.2f} (paper: 0.46)",
            "fraction of clients with >=95% coverage: "
            f"{self.fraction_of_stations_above(0.95, False):.2f} (paper: 0.78)",
            "fraction of APs with >=95% coverage: "
            f"{self.fraction_of_stations_above(0.95, True):.2f} (paper: 0.94)",
        ]
        return "\n".join(lines)


class WiredCoveragePass(PipelinePass):
    """Streaming Figure 6: index unicast DATA payloads off the jframe
    feed, then match every wired unicast packet against the air trace.

    A downlink wired record must appear as a DATA frame transmitted by its
    AP; an uplink record as a DATA frame from its client.  Matching is by
    payload content — the same join key the paper's wired/wireless
    comparison uses (flow + packet identity).
    """

    name = "wired_coverage"

    def __init__(self, wired_trace: Sequence[WiredTraceRecord]) -> None:
        self.wired_trace = wired_trace
        self._index: Dict[Tuple[Optional[MacAddress], bytes], int] = (
            defaultdict(int)
        )

    def on_jframe(self, jframe) -> None:
        frame = jframe.frame
        if (
            frame is None
            or frame.ftype is not FrameType.DATA
            or frame.is_group_addressed
            or not frame.body
        ):
            return
        self._index[(frame.addr2, bytes(frame.body[:64]))] += 1

    def finish(self, context: Optional[PassContext]) -> CoverageResult:
        index = self._index
        per_station: Dict[Tuple[MacAddress, bool], List[int]] = defaultdict(
            lambda: [0, 0]
        )
        for record in self.wired_trace:
            if record.downlink:
                station, is_ap = record.ap_mac, True
            else:
                station, is_ap = record.client_mac, False
            counters = per_station[(station, is_ap)]
            counters[0] += 1
            key = (station, bytes(record.payload[:64]))
            if index.get(key, 0) > 0:
                index[key] -= 1
                counters[1] += 1
        stations = [
            StationCoverage(
                station=station,
                is_ap=is_ap,
                wired_packets=total,
                observed_packets=seen,
            )
            for (station, is_ap), (total, seen) in sorted(
                per_station.items(), key=lambda kv: kv[0][0]
            )
        ]
        return CoverageResult(stations=stations)


def wired_coverage(
    wired_trace: Sequence[WiredTraceRecord],
    jframes: Iterable[JFrame],
) -> CoverageResult:
    """Figure 6: match every wired unicast packet against the air trace."""
    cpass = WiredCoveragePass(wired_trace)
    for jframe in jframes:
        cpass.on_jframe(jframe)
    return cpass.finish(None)


@dataclass
class PodReductionPoint:
    """One bar pair of Figure 7."""

    n_pods: int
    n_radios: int
    ap_coverage: float
    client_coverage: float
    partitioned: bool
    unreachable_radios: int


@dataclass
class PodReductionResult:
    points: List[PodReductionPoint]

    def format_table(self) -> str:
        lines = [f"{'pods':>5} {'radios':>7} {'AP cov':>7} {'client cov':>11} "
                 f"{'partitioned':>12}"]
        for p in self.points:
            lines.append(
                f"{p.n_pods:>5} {p.n_radios:>7} {p.ap_coverage:>7.3f} "
                f"{p.client_coverage:>11.3f} {str(p.partitioned):>12}"
            )
        return "\n".join(lines)


def pod_reduction_coverage(
    artifacts,
    pod_counts: Sequence[int],
    pipeline_factory=None,
) -> PodReductionResult:
    """Figure 7: coverage as the pod deployment shrinks.

    Pods are removed in visual-redundancy order (most redundant first),
    the full pipeline re-runs on the surviving radios, and coverage is
    recomputed against the same wired trace.  A partitioned bootstrap —
    the paper's 10-pod failure — is reported rather than hidden.
    """
    from ..pipeline import JigsawPipeline

    removal_order = artifacts.pod_reduction_order()
    total = len(artifacts.pods)
    points: List[PodReductionPoint] = []
    for count in pod_counts:
        count = min(count, total)
        removed = set(removal_order[: total - count])
        kept_pods = [i for i in range(total) if i not in removed]
        kept_radios = set(artifacts.radios_of_pods(kept_pods))
        traces = [
            t for t in artifacts.radio_traces if t.radio_id in kept_radios
        ]
        clock_groups = [
            g
            for g in artifacts.clock_groups()
            if all(r in kept_radios for r in g)
        ]
        pipeline = (
            pipeline_factory() if pipeline_factory else JigsawPipeline()
        )
        report = pipeline.run(traces, clock_groups=clock_groups)
        coverage = wired_coverage(artifacts.wired_trace, report.jframes)
        points.append(
            PodReductionPoint(
                n_pods=count,
                n_radios=len(traces),
                ap_coverage=coverage.group_coverage(True),
                client_coverage=coverage.group_coverage(False),
                partitioned=not report.bootstrap.fully_synchronized,
                unreachable_radios=len(report.bootstrap.unreachable),
            )
        )
    return PodReductionResult(points=points)


@dataclass
class OracleCoverage:
    """Section 6's controlled laptop experiment."""

    station: MacAddress
    transmitted: int
    observed: int

    @property
    def coverage(self) -> float:
        if self.transmitted == 0:
            return 1.0
        return self.observed / self.transmitted

    def format_table(self) -> str:
        return (
            f"station {self.station}: {self.observed}/{self.transmitted} "
            f"link-level events observed ({100 * self.coverage:.1f}%; "
            f"paper: ~95%)"
        )


def oracle_coverage(artifacts, station_mac: MacAddress) -> OracleCoverage:
    """Compare ground-truth transmissions of one station against captures.

    The paper walked a laptop through the building logging every link-level
    event it generated; our oracle is the medium's transmission history.
    """
    observed_txids: Set[int] = set()
    for trace in artifacts.radio_traces:
        for record in trace:
            if record.truth_txid:
                observed_txids.add(record.truth_txid)
    transmitted = [
        tx
        for tx in artifacts.ground_truth
        if tx.transmitter_id == str(station_mac)
    ]
    observed = sum(1 for tx in transmitted if tx.txid in observed_txids)
    return OracleCoverage(
        station=station_mac,
        transmitted=len(transmitted),
        observed=observed,
    )
