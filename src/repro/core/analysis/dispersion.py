"""Group dispersion CDF — Figure 4.

"The graph shows the CDF of group dispersion values calculated for every
jframe processed from 156 radios over a 24-hour period.  For 90% percent of
all jframes, the worst case time offset between any two radios is less than
10 us, and 99% see a worst case offset under 20 us."

:class:`DispersionPass` streams the samples off the pipeline's jframe
feed; :func:`dispersion_cdf` is the batch wrapper over a
:class:`~repro.core.unify.unifier.UnificationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..passes import PassContext, PipelinePass
from ..unify.unifier import UnificationResult


@dataclass
class DispersionCdf:
    """The Figure 4 curve plus its headline percentiles."""

    samples_us: List[float]

    @property
    def n(self) -> int:
        return len(self.samples_us)

    def percentile(self, q: float) -> float:
        if not self.samples_us:
            return 0.0
        return float(np.percentile(self.samples_us, q))

    @property
    def p50_us(self) -> float:
        return self.percentile(50)

    @property
    def p90_us(self) -> float:
        return self.percentile(90)

    @property
    def p99_us(self) -> float:
        return self.percentile(99)

    def fraction_below(self, threshold_us: float) -> float:
        if not self.samples_us:
            return 0.0
        below = sum(1 for s in self.samples_us if s < threshold_us)
        return below / len(self.samples_us)

    def cdf_points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(dispersion_us, cumulative fraction) pairs for plotting."""
        if not self.samples_us:
            return []
        ordered = np.sort(self.samples_us)
        step = max(1, len(ordered) // max_points)
        points = [
            (float(ordered[i]), (i + 1) / len(ordered))
            for i in range(0, len(ordered), step)
        ]
        if points[-1][1] != 1.0:
            points.append((float(ordered[-1]), 1.0))
        return points

    def format_table(self) -> str:
        return "\n".join(
            [
                f"jframes with >=2 instances: {self.n:,}",
                f"median dispersion: {self.p50_us:.1f} us",
                f"90th percentile:   {self.p90_us:.1f} us "
                f"(paper: <10 us for 90%)",
                f"99th percentile:   {self.p99_us:.1f} us "
                f"(paper: <20 us for 99%)",
                f"fraction < 10 us:  {self.fraction_below(10):.3f}",
                f"fraction < 20 us:  {self.fraction_below(20):.3f}",
            ]
        )


class DispersionPass(PipelinePass):
    """Streaming Figure 4: collect dispersion samples as jframes arrive."""

    name = "dispersion"

    def __init__(self, min_instances: int = 2) -> None:
        self.min_instances = min_instances
        self._samples: List[float] = []

    def on_jframe(self, jframe) -> None:
        if jframe.n_instances >= self.min_instances:
            self._samples.append(jframe.dispersion_us)

    def finish(self, context: Optional[PassContext]) -> DispersionCdf:
        return DispersionCdf(samples_us=self._samples)


def dispersion_cdf(result: UnificationResult) -> DispersionCdf:
    """Figure 4 from a unification result."""
    dpass = DispersionPass(min_instances=2)
    for jframe in result.jframes:
        dpass.on_jframe(jframe)
    return dpass.finish(None)
