"""Network activity time series — Figure 8.

Figure 8(a): active clients and active APs per time bin — "an active
client [is] one that is communicating with an AP or is actively
establishing an association.  An active AP is one communicating with an
active client (an AP only sending out beacons, for example, would not be
active)."

Figure 8(b): traffic volume per bin, split into the paper's four
categories: Data, Management (management + control), Beacon, and ARP —
the latter two separated "because of their high prevalence".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType
from ...net.packets import ArpPacket, try_parse_packet
from ..pipeline import JigsawReport
from .summary import identify_stations


@dataclass
class ActivityBin:
    """One time slot of the Figure 8 series."""

    start_us: int
    active_clients: Set[MacAddress] = field(default_factory=set)
    active_aps: Set[MacAddress] = field(default_factory=set)
    data_bytes: int = 0
    management_bytes: int = 0
    beacon_bytes: int = 0
    arp_bytes: int = 0
    data_frames: int = 0
    management_frames: int = 0
    beacon_frames: int = 0
    arp_frames: int = 0

    @property
    def n_active_clients(self) -> int:
        return len(self.active_clients)

    @property
    def n_active_aps(self) -> int:
        return len(self.active_aps)

    @property
    def total_bytes(self) -> int:
        return (
            self.data_bytes
            + self.management_bytes
            + self.beacon_bytes
            + self.arp_bytes
        )


@dataclass
class ActivityTimeline:
    bin_us: int
    bins: List[ActivityBin]

    def peak_clients(self) -> int:
        return max((b.n_active_clients for b in self.bins), default=0)

    def series(self, attribute: str) -> List[float]:
        return [getattr(b, attribute) for b in self.bins]

    def format_table(self, max_rows: int = 30) -> str:
        lines = [
            f"{'bin':>5} {'clients':>8} {'aps':>5} {'data B':>10} "
            f"{'mgmt B':>10} {'beacon B':>10} {'arp B':>8}"
        ]
        step = max(1, len(self.bins) // max_rows)
        for i in range(0, len(self.bins), step):
            b = self.bins[i]
            lines.append(
                f"{i:>5} {b.n_active_clients:>8} {b.n_active_aps:>5} "
                f"{b.data_bytes:>10,} {b.management_bytes:>10,} "
                f"{b.beacon_bytes:>10,} {b.arp_bytes:>8,}"
            )
        return "\n".join(lines)


def _is_arp(frame) -> bool:
    if frame.ftype is not FrameType.DATA or not frame.body:
        return False
    return isinstance(try_parse_packet(frame.body), ArpPacket)


def activity_timeline(
    report: JigsawReport,
    duration_us: int,
    bin_us: int = 60_000_000,
) -> ActivityTimeline:
    """Bin the unified trace into the Figure 8 time series.

    ``bin_us`` defaults to the paper's one-minute granularity; compressed
    scenarios pass something smaller.
    """
    clients, aps = identify_stations(report)
    n_bins = max(1, (duration_us + bin_us - 1) // bin_us)
    bins = [ActivityBin(start_us=i * bin_us) for i in range(n_bins)]

    for jframe in report.jframes:
        frame = jframe.frame
        if frame is None:
            continue
        index = min(max(jframe.timestamp_us, 0) // bin_us, n_bins - 1)
        slot = bins[index]
        size = jframe.frame_len

        if frame.ftype is FrameType.BEACON:
            slot.beacon_bytes += size
            slot.beacon_frames += 1
        elif _is_arp(frame):
            slot.arp_bytes += size
            slot.arp_frames += 1
        elif frame.ftype is FrameType.DATA:
            slot.data_bytes += size
            slot.data_frames += 1
        else:
            slot.management_bytes += size
            slot.management_frames += 1

        # Activity: client talking to an AP, or mid-association.
        sender = frame.addr2
        receiver = frame.addr1
        if frame.ftype in (
            FrameType.DATA,
            FrameType.ASSOC_REQUEST,
            FrameType.AUTH,
            FrameType.PROBE_REQUEST,
        ):
            if sender in clients and not frame.is_broadcast or (
                sender in clients
                and frame.ftype in (FrameType.PROBE_REQUEST,)
            ):
                slot.active_clients.add(sender)
        if frame.ftype is FrameType.DATA:
            if sender in aps and receiver in clients:
                slot.active_aps.add(sender)
                slot.active_clients.add(receiver)
            elif sender in clients and receiver in aps:
                slot.active_aps.add(receiver)
    return ActivityTimeline(bin_us=bin_us, bins=bins)


def broadcast_airtime_share(
    report: JigsawReport, duration_us: int
) -> Dict[int, float]:
    """Per-channel fraction of airtime consumed by broadcast frames.

    Reproduces the Section 7.1 claim that "broadcast traffic (primarily ARP
    and Beacons) regularly consumes 10% of the channel as seen by any given
    monitor" — broadcasts ride the lowest rate, so their airtime share far
    exceeds their byte share.
    """
    by_channel: Dict[int, int] = {}
    for jframe in report.jframes:
        frame = jframe.frame
        if frame is None or not frame.is_broadcast:
            continue
        by_channel[jframe.channel] = (
            by_channel.get(jframe.channel, 0) + jframe.duration_us
        )
    return {
        channel: airtime / duration_us
        for channel, airtime in sorted(by_channel.items())
    }
