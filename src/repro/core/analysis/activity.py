"""Network activity time series — Figure 8.

Figure 8(a): active clients and active APs per time bin — "an active
client [is] one that is communicating with an AP or is actively
establishing an association.  An active AP is one communicating with an
active client (an AP only sending out beacons, for example, would not be
active)."

Figure 8(b): traffic volume per bin, split into the paper's four
categories: Data, Management (management + control), Beacon, and ARP —
the latter two separated "because of their high prevalence".

Implemented as streaming passes (:class:`ActivityPass`,
:class:`BroadcastAirtimePass`); the byte/frame tallies fold immediately,
while per-bin *activity* — which depends on the trace-global client/AP
classification — accumulates compact per-bin candidate sets (bounded by
station pairs, not trace length) that are resolved once the
classification is final.  :func:`activity_timeline` and
:func:`broadcast_airtime_share` are replay wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType
from ...net.packets import ArpPacket, try_parse_packet
from ..passes import PassContext, PipelinePass, run_passes
from ..pipeline import JigsawReport
from .summary import StationTracker


@dataclass
class ActivityBin:
    """One time slot of the Figure 8 series."""

    start_us: int
    active_clients: Set[MacAddress] = field(default_factory=set)
    active_aps: Set[MacAddress] = field(default_factory=set)
    data_bytes: int = 0
    management_bytes: int = 0
    beacon_bytes: int = 0
    arp_bytes: int = 0
    data_frames: int = 0
    management_frames: int = 0
    beacon_frames: int = 0
    arp_frames: int = 0

    @property
    def n_active_clients(self) -> int:
        return len(self.active_clients)

    @property
    def n_active_aps(self) -> int:
        return len(self.active_aps)

    @property
    def total_bytes(self) -> int:
        return (
            self.data_bytes
            + self.management_bytes
            + self.beacon_bytes
            + self.arp_bytes
        )


@dataclass
class ActivityTimeline:
    bin_us: int
    bins: List[ActivityBin]

    def peak_clients(self) -> int:
        return max((b.n_active_clients for b in self.bins), default=0)

    def series(self, attribute: str) -> List[float]:
        return [getattr(b, attribute) for b in self.bins]

    def format_table(self, max_rows: int = 30) -> str:
        lines = [
            f"{'bin':>5} {'clients':>8} {'aps':>5} {'data B':>10} "
            f"{'mgmt B':>10} {'beacon B':>10} {'arp B':>8}"
        ]
        step = max(1, len(self.bins) // max_rows)
        for i in range(0, len(self.bins), step):
            b = self.bins[i]
            lines.append(
                f"{i:>5} {b.n_active_clients:>8} {b.n_active_aps:>5} "
                f"{b.data_bytes:>10,} {b.management_bytes:>10,} "
                f"{b.beacon_bytes:>10,} {b.arp_bytes:>8,}"
            )
        return "\n".join(lines)


def _is_arp(frame) -> bool:
    if frame.ftype is not FrameType.DATA or not frame.body:
        return False
    return isinstance(try_parse_packet(frame.body), ArpPacket)


class ActivityPass(PipelinePass):
    """Streaming Figure 8 timeline.

    ``bin_us`` defaults to the paper's one-minute granularity; compressed
    scenarios pass something smaller.
    """

    name = "activity"

    def __init__(
        self,
        duration_us: int,
        bin_us: int = 60_000_000,
        tracker: Optional[StationTracker] = None,
    ) -> None:
        self.bin_us = bin_us
        self._n_bins = max(1, (duration_us + bin_us - 1) // bin_us)
        self._bins = [
            ActivityBin(start_us=i * bin_us) for i in range(self._n_bins)
        ]
        self._tracker = tracker or StationTracker()
        # Activity depends on the final client/AP classification, so each
        # bin accumulates candidate tuples (bounded by distinct stations
        # and station pairs) that finish() resolves.
        self._client_candidates: List[Set[Tuple]] = [
            set() for _ in range(self._n_bins)
        ]
        self._data_pairs: List[Set[Tuple]] = [
            set() for _ in range(self._n_bins)
        ]

    def on_jframe(self, jframe) -> None:
        frame = jframe.frame
        if frame is None:
            return
        self._tracker.feed(jframe)
        index = min(max(jframe.timestamp_us, 0) // self.bin_us, self._n_bins - 1)
        slot = self._bins[index]
        size = jframe.frame_len

        if frame.ftype is FrameType.BEACON:
            slot.beacon_bytes += size
            slot.beacon_frames += 1
        elif _is_arp(frame):
            slot.arp_bytes += size
            slot.arp_frames += 1
        elif frame.ftype is FrameType.DATA:
            slot.data_bytes += size
            slot.data_frames += 1
        else:
            slot.management_bytes += size
            slot.management_frames += 1

        # Activity: client talking to an AP, or mid-association.
        sender = frame.addr2
        receiver = frame.addr1
        if frame.ftype in (
            FrameType.DATA,
            FrameType.ASSOC_REQUEST,
            FrameType.AUTH,
            FrameType.PROBE_REQUEST,
        ):
            self._client_candidates[index].add(
                (
                    sender,
                    frame.is_broadcast,
                    frame.ftype is FrameType.PROBE_REQUEST,
                )
            )
        if frame.ftype is FrameType.DATA:
            self._data_pairs[index].add((sender, receiver))

    def finish(self, context: Optional[PassContext]) -> ActivityTimeline:
        clients, aps = self._tracker.finish()
        for slot, candidates, pairs in zip(
            self._bins, self._client_candidates, self._data_pairs
        ):
            for sender, is_broadcast, is_probe_req in candidates:
                if sender in clients and (not is_broadcast or is_probe_req):
                    slot.active_clients.add(sender)
            for sender, receiver in pairs:
                if sender in aps and receiver in clients:
                    slot.active_aps.add(sender)
                    slot.active_clients.add(receiver)
                elif sender in clients and receiver in aps:
                    slot.active_aps.add(receiver)
        return ActivityTimeline(bin_us=self.bin_us, bins=self._bins)


class BroadcastAirtimePass(PipelinePass):
    """Streaming per-channel broadcast airtime share (Section 7.1).

    Reproduces the claim that "broadcast traffic (primarily ARP and
    Beacons) regularly consumes 10% of the channel as seen by any given
    monitor" — broadcasts ride the lowest rate, so their airtime share
    far exceeds their byte share.
    """

    name = "broadcast_airtime"

    def __init__(self, duration_us: int) -> None:
        self.duration_us = duration_us
        self._by_channel: Dict[int, int] = {}

    def on_jframe(self, jframe) -> None:
        frame = jframe.frame
        if frame is None or not frame.is_broadcast:
            return
        self._by_channel[jframe.channel] = (
            self._by_channel.get(jframe.channel, 0) + jframe.duration_us
        )

    def finish(self, context: Optional[PassContext]) -> Dict[int, float]:
        return {
            channel: airtime / self.duration_us
            for channel, airtime in sorted(self._by_channel.items())
        }


def activity_timeline(
    report: JigsawReport,
    duration_us: int,
    bin_us: int = 60_000_000,
) -> ActivityTimeline:
    """Bin the unified trace into the Figure 8 time series."""
    return run_passes(report, [ActivityPass(duration_us, bin_us=bin_us)])[
        "activity"
    ]


def broadcast_airtime_share(
    report: JigsawReport, duration_us: int
) -> Dict[int, float]:
    """Per-channel fraction of airtime consumed by broadcast frames."""
    return run_passes(report, [BroadcastAirtimePass(duration_us)])[
        "broadcast_airtime"
    ]
