"""Trace summary — Table 1.

"Table 1 presents the characteristics of the trace we use for our
analyses" : duration, monitors, APs, clients, raw event counts, the error
share, jframe counts and the events-per-jframe ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType
from ...jtrace.io import RadioTrace
from ...jtrace.records import RecordKind
from ..pipeline import JigsawReport


@dataclass
class TraceSummary:
    """The Table 1 row set."""

    duration_s: float
    n_radios: int
    total_events: int
    error_events: int
    jframes: int
    events_per_jframe: float
    unique_clients: int
    unique_aps: int
    transmission_attempts: int
    frame_exchanges: int
    tcp_flows: int
    completed_handshakes: int

    @property
    def error_event_fraction(self) -> float:
        if self.total_events == 0:
            return 0.0
        return self.error_events / self.total_events

    def rows(self) -> List[Tuple[str, str]]:
        """(label, value) pairs, Table 1 style."""
        return [
            ("Trace duration (s)", f"{self.duration_s:.1f}"),
            ("Monitor radios", f"{self.n_radios}"),
            ("Raw events", f"{self.total_events:,}"),
            ("Error events (PHY/CRC)", f"{self.error_events:,} "
             f"({100 * self.error_event_fraction:.1f}%)"),
            ("Unified jframes", f"{self.jframes:,}"),
            ("Events per jframe", f"{self.events_per_jframe:.2f}"),
            ("Unique client MACs", f"{self.unique_clients}"),
            ("Unique AP MACs", f"{self.unique_aps}"),
            ("Transmission attempts", f"{self.transmission_attempts:,}"),
            ("Frame exchanges", f"{self.frame_exchanges:,}"),
            ("TCP flows", f"{self.tcp_flows:,}"),
            ("Completed handshakes", f"{self.completed_handshakes:,}"),
        ]

    def format_table(self) -> str:
        width = max(len(label) for label, _ in self.rows())
        return "\n".join(
            f"{label:<{width}}  {value}" for label, value in self.rows()
        )


def identify_stations(report: JigsawReport) -> Tuple[Set[MacAddress], Set[MacAddress]]:
    """Split observed transmitters into (clients, aps) from behaviour.

    APs reveal themselves by sending beacons/probe responses; clients by
    sending probe/association requests or ToDS data.  This is how a passive
    observer classifies stations — no configuration knowledge needed.
    """
    aps: Set[MacAddress] = set()
    clients: Set[MacAddress] = set()
    for jframe in report.jframes:
        frame = jframe.frame
        if frame is None or frame.addr2 is None:
            continue
        if frame.ftype in (FrameType.BEACON, FrameType.PROBE_RESPONSE,
                           FrameType.ASSOC_RESPONSE):
            aps.add(frame.addr2)
        elif frame.ftype in (FrameType.PROBE_REQUEST, FrameType.ASSOC_REQUEST,
                             FrameType.AUTH):
            clients.add(frame.addr2)
        elif frame.ftype is FrameType.DATA:
            if frame.to_ds:
                clients.add(frame.addr2)
            elif frame.from_ds:
                aps.add(frame.addr2)
    clients -= aps
    return clients, aps


def summarize(
    report: JigsawReport,
    traces: Sequence[RadioTrace],
    duration_us: int,
) -> TraceSummary:
    """Build the Table 1 summary from a pipeline report and its inputs."""
    total_events = sum(len(trace) for trace in traces)
    error_events = sum(
        1
        for trace in traces
        for record in trace
        if record.kind is not RecordKind.VALID
    )
    clients, aps = identify_stations(report)
    stats = report.unification.stats
    return TraceSummary(
        duration_s=duration_us / 1e6,
        n_radios=len(traces),
        total_events=total_events,
        error_events=error_events,
        jframes=stats.jframes,
        events_per_jframe=stats.events_per_jframe,
        unique_clients=len(clients),
        unique_aps=len(aps),
        transmission_attempts=report.attempt_stats.attempts,
        frame_exchanges=report.exchange_stats.exchanges,
        tcp_flows=len(report.flows),
        completed_handshakes=report.transport_stats.handshakes_completed,
    )
