"""Trace summary — Table 1.

"Table 1 presents the characteristics of the trace we use for our
analyses" : duration, monitors, APs, clients, raw event counts, the error
share, jframe counts and the events-per-jframe ratio.

The analysis is implemented as :class:`SummaryPass`, a streaming
:class:`~repro.core.passes.PipelinePass`; :func:`summarize` and
:func:`identify_stations` are thin wrappers replaying a materialized
report through the same code.  :class:`StationTracker` — the incremental
behavioural client/AP classifier — is shared by the activity, protection
and interference passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType
from ...jtrace.io import RadioTrace
from ...jtrace.records import RecordKind
from ..passes import PassContext, PipelinePass, run_passes
from ..pipeline import JigsawReport


@dataclass
class TraceSummary:
    """The Table 1 row set."""

    duration_s: float
    n_radios: int
    total_events: int
    error_events: int
    jframes: int
    events_per_jframe: float
    unique_clients: int
    unique_aps: int
    transmission_attempts: int
    frame_exchanges: int
    tcp_flows: int
    completed_handshakes: int

    @property
    def error_event_fraction(self) -> float:
        if self.total_events == 0:
            return 0.0
        return self.error_events / self.total_events

    def rows(self) -> List[Tuple[str, str]]:
        """(label, value) pairs, Table 1 style."""
        return [
            ("Trace duration (s)", f"{self.duration_s:.1f}"),
            ("Monitor radios", f"{self.n_radios}"),
            ("Raw events", f"{self.total_events:,}"),
            ("Error events (PHY/CRC)", f"{self.error_events:,} "
             f"({100 * self.error_event_fraction:.1f}%)"),
            ("Unified jframes", f"{self.jframes:,}"),
            ("Events per jframe", f"{self.events_per_jframe:.2f}"),
            ("Unique client MACs", f"{self.unique_clients}"),
            ("Unique AP MACs", f"{self.unique_aps}"),
            ("Transmission attempts", f"{self.transmission_attempts:,}"),
            ("Frame exchanges", f"{self.frame_exchanges:,}"),
            ("TCP flows", f"{self.tcp_flows:,}"),
            ("Completed handshakes", f"{self.completed_handshakes:,}"),
        ]

    def format_table(self) -> str:
        width = max(len(label) for label, _ in self.rows())
        return "\n".join(
            f"{label:<{width}}  {value}" for label, value in self.rows()
        )


class StationTracker:
    """Incremental behavioural (clients, aps) classification.

    APs reveal themselves by sending beacons/probe responses; clients by
    sending probe/association requests or ToDS data.  This is how a
    passive observer classifies stations — no configuration knowledge
    needed.  Feed jframes as they stream; :meth:`finish` resolves the
    client/AP overlap exactly like the batch classifier (a station that
    ever behaved like an AP is not a client).

    One tracker instance can be shared by several passes registered on
    the same run (each pass accepts ``tracker=``): ``feed`` remembers the
    last jframe by identity, so the classification work is done once per
    jframe no matter how many passes forward it.
    """

    __slots__ = ("_aps", "_clients", "_last")

    def __init__(self) -> None:
        self._aps: Set[MacAddress] = set()
        self._clients: Set[MacAddress] = set()
        self._last = None

    def feed(self, jframe) -> None:
        if jframe is self._last:
            return
        self._last = jframe
        frame = jframe.frame
        if frame is None or frame.addr2 is None:
            return
        ftype = frame.ftype
        if ftype in (FrameType.BEACON, FrameType.PROBE_RESPONSE,
                     FrameType.ASSOC_RESPONSE):
            self._aps.add(frame.addr2)
        elif ftype in (FrameType.PROBE_REQUEST, FrameType.ASSOC_REQUEST,
                       FrameType.AUTH):
            self._clients.add(frame.addr2)
        elif ftype is FrameType.DATA:
            if frame.to_ds:
                self._clients.add(frame.addr2)
            elif frame.from_ds:
                self._aps.add(frame.addr2)

    def finish(self) -> Tuple[Set[MacAddress], Set[MacAddress]]:
        """(clients, aps) — snapshots, safe to keep after more feeding."""
        return self._clients - self._aps, set(self._aps)


class SummaryPass(PipelinePass):
    """Streaming Table 1 summary."""

    name = "summary"

    def __init__(
        self, duration_us: int, tracker: Optional[StationTracker] = None
    ) -> None:
        self.duration_us = duration_us
        self._tracker = tracker or StationTracker()

    def on_jframe(self, jframe) -> None:
        self._tracker.feed(jframe)

    def finish(self, context: Optional[PassContext]) -> TraceSummary:
        if context is None or not context.traces:
            raise ValueError(
                "SummaryPass needs the run's input radio traces to count "
                "raw/error events: a live pipeline run provides them "
                "automatically, a replay must pass "
                "run_passes(report, passes, traces=...)"
            )
        clients, aps = self._tracker.finish()
        traces = context.traces
        total_events = sum(len(trace) for trace in traces)
        error_events = sum(
            1
            for trace in traces
            for record in trace
            if record.kind is not RecordKind.VALID
        )
        stats = context.unify_stats
        return TraceSummary(
            duration_s=self.duration_us / 1e6,
            n_radios=len(traces),
            total_events=total_events,
            error_events=error_events,
            jframes=stats.jframes,
            events_per_jframe=stats.events_per_jframe,
            unique_clients=len(clients),
            unique_aps=len(aps),
            transmission_attempts=context.attempt_stats.attempts,
            frame_exchanges=context.exchange_stats.exchanges,
            tcp_flows=context.n_flows,
            completed_handshakes=context.transport_stats.handshakes_completed,
        )


def identify_stations(report: JigsawReport) -> Tuple[Set[MacAddress], Set[MacAddress]]:
    """Split observed transmitters into (clients, aps) from behaviour."""
    tracker = StationTracker()
    for jframe in report.jframes:
        tracker.feed(jframe)
    return tracker.finish()


def summarize(
    report: JigsawReport,
    traces: Sequence[RadioTrace],
    duration_us: int,
) -> TraceSummary:
    """Build the Table 1 summary from a pipeline report and its inputs."""
    return run_passes(report, [SummaryPass(duration_us)], traces=traces)[
        "summary"
    ]
