"""Trace visualization — Figure 2.

The paper's Figure 2 shows "Jigsaw visualization of synchronized trace":
time on the x-axis in microseconds, individual radios on the y-axis, each
frame drawn at its universal time with its reception quality — making it
visible that one transmission lands simultaneously across many radios
while a distant radio only catches a corrupted copy or a PHY error.

:func:`render_timeline` reproduces that view as text: one row per radio,
one column per time slot, with markers for valid (``#``), corrupt (``x``)
and PHY-error (``.``) receptions.  It is genuinely useful when debugging
synchronization — a skewed radio's markers visibly slide off the column
shared by everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ...jtrace.records import RecordKind
from ..unify.jframe import JFrame

#: Marker per reception quality, matching the paper's visual distinction
#: between complete frames, corrupted copies, and bare PHY events.
_MARKERS = {
    RecordKind.VALID: "#",
    RecordKind.CORRUPT: "x",
    RecordKind.PHY_ERROR: ".",
}


@dataclass
class TimelineView:
    """A rendered window of the synchronized trace."""

    start_us: int
    end_us: int
    columns: int
    rows: List[str]          # one per radio, labels included
    legend: str

    def __str__(self) -> str:
        header = (
            f"universal time {self.start_us}..{self.end_us} us "
            f"({self.columns} cols, "
            f"{(self.end_us - self.start_us) / max(1, self.columns):.0f} us/col)"
        )
        return "\n".join([header, *self.rows, self.legend])


def render_timeline(
    jframes: Iterable[JFrame],
    start_us: int,
    end_us: int,
    columns: int = 100,
    radios: Optional[Sequence[int]] = None,
    max_radios: int = 24,
) -> TimelineView:
    """Render a window of the unified trace as a radio x time grid.

    ``radios`` restricts (and orders) the rows; by default the radios that
    heard anything inside the window appear, busiest first, capped at
    ``max_radios``.
    """
    if end_us <= start_us:
        raise ValueError("window must have positive length")
    window = [
        jf for jf in jframes if start_us <= jf.timestamp_us < end_us
    ]
    span = end_us - start_us
    per_radio: Dict[int, List[tuple]] = {}
    for jframe in window:
        for inst in jframe.instances:
            per_radio.setdefault(inst.radio_id, []).append(
                (inst.universal_us, inst.record.kind)
            )
    if radios is None:
        ordered = sorted(
            per_radio, key=lambda r: len(per_radio[r]), reverse=True
        )[:max_radios]
        ordered.sort()
    else:
        ordered = list(radios)

    rows = []
    label_width = max((len(f"r{r}") for r in ordered), default=2)
    for radio_id in ordered:
        cells = [" "] * columns
        for universal, kind in per_radio.get(radio_id, ()):
            col = int((universal - start_us) / span * columns)
            col = min(max(col, 0), columns - 1)
            marker = _MARKERS[kind]
            # Valid beats corrupt beats PHY error when slots collide.
            if cells[col] == " " or (
                marker == "#" or (marker == "x" and cells[col] == ".")
            ):
                cells[col] = marker
        rows.append(f"{f'r{radio_id}':>{label_width}} |{''.join(cells)}|")
    legend = "legend: # valid   x corrupt (CRC)   . phy error"
    return TimelineView(
        start_us=start_us,
        end_us=end_us,
        columns=columns,
        rows=rows,
        legend=legend,
    )


def busiest_window(
    jframes: Sequence[JFrame], width_us: int = 5_000
) -> tuple:
    """Locate the window with the most reception instances (for demos)."""
    if not jframes:
        return (0, width_us)
    best_start, best_count = jframes[0].timestamp_us, 0
    times = [jf.timestamp_us for jf in jframes]
    weights = [jf.n_instances for jf in jframes]
    left = 0
    running = 0
    for right in range(len(times)):
        running += weights[right]
        while times[right] - times[left] > width_us:
            running -= weights[left]
            left += 1
        if running > best_count:
            best_count = running
            best_start = times[left]
    return (best_start, best_start + width_us)
