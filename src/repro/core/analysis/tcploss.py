"""TCP loss decomposition — Section 7.4, Figure 11.

"We assemble all flows that complete a handshake (eliminating port scans
and connection failures).  From these flows we then calculate the loss
rate ...  by analyzing the frame exchanges making up each TCP segment we
are able to determine if each loss — as seen by TCP — is due to a lost
802.11 frame or some subsequent loss in the wired network."  The paper's
headline: the wireless component dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..passes import PassContext, PipelinePass, run_passes
from ..pipeline import JigsawReport
from ..transport.flows import TcpFlow
from ..transport.inference import LossCause


@dataclass
class FlowLossRates:
    """Loss rates of one completed flow, split by cause."""

    flow: TcpFlow
    data_segments: int
    wireless_losses: int
    wired_losses: int
    unknown_losses: int

    @property
    def total_losses(self) -> int:
        return self.wireless_losses + self.wired_losses + self.unknown_losses

    @property
    def loss_rate(self) -> float:
        return self.total_losses / self.data_segments if self.data_segments else 0.0

    @property
    def wireless_loss_rate(self) -> float:
        return (
            self.wireless_losses / self.data_segments
            if self.data_segments
            else 0.0
        )

    @property
    def wired_loss_rate(self) -> float:
        return (
            self.wired_losses / self.data_segments if self.data_segments else 0.0
        )


@dataclass
class TcpLossResult:
    flows: List[FlowLossRates]

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def aggregate_rates(self) -> Tuple[float, float, float]:
        """(wireless, wired, unknown) loss rates over all data segments."""
        segments = sum(f.data_segments for f in self.flows)
        if segments == 0:
            return 0.0, 0.0, 0.0
        return (
            sum(f.wireless_losses for f in self.flows) / segments,
            sum(f.wired_losses for f in self.flows) / segments,
            sum(f.unknown_losses for f in self.flows) / segments,
        )

    def wireless_dominates(self) -> bool:
        """The paper's headline claim for Figure 11."""
        wireless, wired, _ = self.aggregate_rates()
        return wireless >= wired

    def loss_rate_cdf(self, cause: str = "total") -> List[float]:
        """Sorted per-flow loss rates for the Figure 11 CDF."""
        if cause == "wireless":
            return sorted(f.wireless_loss_rate for f in self.flows)
        if cause == "wired":
            return sorted(f.wired_loss_rate for f in self.flows)
        return sorted(f.loss_rate for f in self.flows)

    def format_table(self) -> str:
        wireless, wired, unknown = self.aggregate_rates()
        lines = [
            f"completed flows:        {self.n_flows}",
            f"wireless loss rate:     {wireless:.4f}",
            f"wired loss rate:        {wired:.4f}",
            f"unknown loss rate:      {unknown:.4f}",
            f"wireless dominates:     {self.wireless_dominates()} "
            f"(paper: wireless component dominant)",
        ]
        return "\n".join(lines)


class TcpLossPass(PipelinePass):
    """Streaming Figure 11: fold each completed flow as it is delivered.

    Flows arrive on :meth:`on_flow` after transport inference, so their
    loss events are already classified.
    """

    name = "tcp_loss"

    def __init__(self) -> None:
        self._rows: List[FlowLossRates] = []

    def on_flow(self, flow: TcpFlow) -> None:
        if not flow.handshake_complete:
            return
        wireless = sum(
            1 for e in flow.loss_events if e.cause is LossCause.WIRELESS
        )
        wired = sum(1 for e in flow.loss_events if e.cause is LossCause.WIRED)
        unknown = sum(
            1 for e in flow.loss_events if e.cause is LossCause.UNKNOWN
        )
        self._rows.append(
            FlowLossRates(
                flow=flow,
                data_segments=len(flow.data_observations),
                wireless_losses=wireless,
                wired_losses=wired,
                unknown_losses=unknown,
            )
        )

    def finish(self, context: Optional[PassContext]) -> TcpLossResult:
        return TcpLossResult(flows=self._rows)


def analyze_tcp_loss(report: JigsawReport) -> TcpLossResult:
    """Figure 11 from a pipeline report (completed-handshake flows only)."""
    return run_passes(report, [TcpLossPass()])["tcp_loss"]
