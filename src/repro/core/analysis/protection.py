"""802.11g protection-mode analysis — Section 7.3, Figure 10.

Finds *overprotective* APs: "APs using protection mode that unnecessarily
impacts 802.11g clients".  The method is the paper's:

* "We can identify the set of APs using protection mode based upon
  CTS-to-self client transmissions to those APs" (and the APs' own
  CTS-to-self frames);
* "Using observed probe responses, we infer whether any 802.11b clients
  are in range of an AP using protection mode";
* an AP is overprotective in a time slot when it protects although no
  802.11b client has been in range within a *practical* timeout (one
  minute, versus the production policy's hour).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType, frame_marks_cck_only
from ..pipeline import JigsawReport
from .summary import identify_stations


@dataclass
class ProtectionBin:
    """One time slot of the Figure 10 series."""

    start_us: int
    protecting_aps: Set[MacAddress] = field(default_factory=set)
    overprotective_aps: Set[MacAddress] = field(default_factory=set)
    active_g_clients: Set[MacAddress] = field(default_factory=set)
    g_clients_on_overprotective: Set[MacAddress] = field(default_factory=set)

    @property
    def n_overprotective(self) -> int:
        return len(self.overprotective_aps)

    @property
    def n_active_g_clients(self) -> int:
        return len(self.active_g_clients)

    @property
    def n_affected_g_clients(self) -> int:
        return len(self.g_clients_on_overprotective)


@dataclass
class ProtectionResult:
    bins: List[ProtectionBin]
    bin_us: int
    b_clients: Set[MacAddress]
    g_clients: Set[MacAddress]

    def peak_affected_fraction(self) -> float:
        """Largest per-bin share of 11g clients on overprotective APs
        (the paper sees 25-50% during busy periods)."""
        best = 0.0
        for b in self.bins:
            if b.n_active_g_clients:
                best = max(
                    best, b.n_affected_g_clients / b.n_active_g_clients
                )
        return best

    def total_overprotective_aps(self) -> int:
        aps: Set[MacAddress] = set()
        for b in self.bins:
            aps.update(b.overprotective_aps)
        return len(aps)

    def format_table(self, max_rows: int = 24) -> str:
        lines = [
            f"{'bin':>4} {'protecting':>11} {'overprot.':>10} "
            f"{'g-active':>9} {'g-affected':>11}"
        ]
        step = max(1, len(self.bins) // max_rows)
        for i in range(0, len(self.bins), step):
            b = self.bins[i]
            lines.append(
                f"{i:>4} {len(b.protecting_aps):>11} {b.n_overprotective:>10} "
                f"{b.n_active_g_clients:>9} {b.n_affected_g_clients:>11}"
            )
        lines.append(
            f"peak affected-fraction: {self.peak_affected_fraction():.2f} "
            f"(paper: 0.25-0.50 busy periods)"
        )
        return "\n".join(lines)


def analyze_protection(
    report: JigsawReport,
    duration_us: int,
    bin_us: int = 60_000_000,
    practical_timeout_us: int = 60_000_000,
) -> ProtectionResult:
    """Figure 10 from a pipeline report.

    ``practical_timeout_us`` is the paper's "more practical timeout of one
    minute"; compressed scenarios scale it with their bin size.
    """
    clients, aps = identify_stations(report)

    # Classify 802.11b clients by their advertised rate sets and observe
    # client -> AP association plus per-event timelines in one pass.
    b_clients: Set[MacAddress] = set()
    association: Dict[MacAddress, MacAddress] = {}
    cts_events: List[Tuple[int, MacAddress]] = []       # (t, protecting AP)
    b_in_range: Dict[MacAddress, List[int]] = defaultdict(list)  # AP -> times
    g_activity: List[Tuple[int, MacAddress]] = []       # (t, g client)

    for jframe in report.jframes:
        frame = jframe.frame
        if frame is None:
            continue
        t = jframe.timestamp_us
        sender = frame.addr2
        if frame_marks_cck_only(frame) and sender is not None:
            b_clients.add(sender)
        if frame.ftype is FrameType.ASSOC_REQUEST and sender is not None:
            association[sender] = frame.addr1
        elif frame.ftype is FrameType.DATA and sender in clients and frame.to_ds:
            association[sender] = frame.addr1

    g_clients = {c for c in clients if c not in b_clients}

    for jframe in report.jframes:
        frame = jframe.frame
        if frame is None:
            continue
        t = jframe.timestamp_us
        sender = frame.addr2
        if frame.ftype is FrameType.CTS:
            # CTS-to-self: RA names the protected transmitter.
            target = frame.addr1
            if target in aps:
                cts_events.append((t, target))
            elif target in association:
                cts_events.append((t, association[target]))
        elif frame.ftype is FrameType.PROBE_RESPONSE and sender in aps:
            if frame.addr1 in b_clients:
                b_in_range[sender].append(t)
        elif frame.ftype is FrameType.DATA and sender in g_clients:
            g_activity.append((t, sender))
        elif (
            frame.ftype is FrameType.DATA
            and sender in aps
            and frame.addr1 in g_clients
        ):
            g_activity.append((t, frame.addr1))

    for times in b_in_range.values():
        times.sort()

    n_bins = max(1, (duration_us + bin_us - 1) // bin_us)
    bins = [ProtectionBin(start_us=i * bin_us) for i in range(n_bins)]

    def bin_of(t: int) -> ProtectionBin:
        return bins[min(max(t, 0) // bin_us, n_bins - 1)]

    for t, ap in cts_events:
        slot = bin_of(t)
        slot.protecting_aps.add(ap)
        if not _b_client_recently_in_range(
            b_in_range.get(ap, ()), t, practical_timeout_us
        ):
            slot.overprotective_aps.add(ap)

    for t, client in g_activity:
        slot = bin_of(t)
        slot.active_g_clients.add(client)

    for slot in bins:
        for client in slot.active_g_clients:
            ap = association.get(client)
            if ap is not None and ap in slot.overprotective_aps:
                slot.g_clients_on_overprotective.add(client)

    return ProtectionResult(
        bins=bins, bin_us=bin_us, b_clients=b_clients, g_clients=g_clients
    )


def _b_client_recently_in_range(
    times: Sequence[int], t: int, timeout_us: int
) -> bool:
    """Was any 802.11b client in range of the AP within the timeout?"""
    from bisect import bisect_right

    index = bisect_right(times, t)
    if index == 0:
        return False
    return t - times[index - 1] <= timeout_us
