"""802.11g protection-mode analysis — Section 7.3, Figure 10.

Finds *overprotective* APs: "APs using protection mode that unnecessarily
impacts 802.11g clients".  The method is the paper's:

* "We can identify the set of APs using protection mode based upon
  CTS-to-self client transmissions to those APs" (and the APs' own
  CTS-to-self frames);
* "Using observed probe responses, we infer whether any 802.11b clients
  are in range of an AP using protection mode";
* an AP is overprotective in a time slot when it protects although no
  802.11b client has been in range within a *practical* timeout (one
  minute, versus the production policy's hour).

:class:`ProtectionPass` streams the analysis off the pipeline's jframe
feed.  Every decision that depends on trace-global knowledge — the
client/AP split, the 802.11b classification, the final client->AP
association map — is deferred: the pass accumulates compact event tuples
(CTS targets, probe responses, per-bin data pairs) and resolves them in
``finish`` exactly the way the batch two-walk implementation did, so the
results are identical by construction.  :func:`analyze_protection` is
the replay wrapper.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...dot11.address import MacAddress
from ...dot11.frame import FrameType, frame_marks_cck_only
from ..passes import PassContext, PipelinePass, run_passes
from ..pipeline import JigsawReport
from .summary import StationTracker


@dataclass
class ProtectionBin:
    """One time slot of the Figure 10 series."""

    start_us: int
    protecting_aps: Set[MacAddress] = field(default_factory=set)
    overprotective_aps: Set[MacAddress] = field(default_factory=set)
    active_g_clients: Set[MacAddress] = field(default_factory=set)
    g_clients_on_overprotective: Set[MacAddress] = field(default_factory=set)

    @property
    def n_overprotective(self) -> int:
        return len(self.overprotective_aps)

    @property
    def n_active_g_clients(self) -> int:
        return len(self.active_g_clients)

    @property
    def n_affected_g_clients(self) -> int:
        return len(self.g_clients_on_overprotective)


@dataclass
class ProtectionResult:
    bins: List[ProtectionBin]
    bin_us: int
    b_clients: Set[MacAddress]
    g_clients: Set[MacAddress]

    def peak_affected_fraction(self) -> float:
        """Largest per-bin share of 11g clients on overprotective APs
        (the paper sees 25-50% during busy periods)."""
        best = 0.0
        for b in self.bins:
            if b.n_active_g_clients:
                best = max(
                    best, b.n_affected_g_clients / b.n_active_g_clients
                )
        return best

    def total_overprotective_aps(self) -> int:
        aps: Set[MacAddress] = set()
        for b in self.bins:
            aps.update(b.overprotective_aps)
        return len(aps)

    def format_table(self, max_rows: int = 24) -> str:
        lines = [
            f"{'bin':>4} {'protecting':>11} {'overprot.':>10} "
            f"{'g-active':>9} {'g-affected':>11}"
        ]
        step = max(1, len(self.bins) // max_rows)
        for i in range(0, len(self.bins), step):
            b = self.bins[i]
            lines.append(
                f"{i:>4} {len(b.protecting_aps):>11} {b.n_overprotective:>10} "
                f"{b.n_active_g_clients:>9} {b.n_affected_g_clients:>11}"
            )
        lines.append(
            f"peak affected-fraction: {self.peak_affected_fraction():.2f} "
            f"(paper: 0.25-0.50 busy periods)"
        )
        return "\n".join(lines)


class ProtectionPass(PipelinePass):
    """Streaming Figure 10 analysis.

    ``practical_timeout_us`` is the paper's "more practical timeout of one
    minute"; compressed scenarios scale it with their bin size.

    Memory note: because overprotectiveness at time ``t`` depends on the
    trace-*global* client/AP/11b classification, CTS and probe-response
    events are kept until ``finish`` — so this pass's accumulator scales
    with the count of those two sparse frame classes (a small fraction of
    a real trace; the batch implementation buffered the same events),
    while DATA-frame activity is compacted to per-bin station-pair sets.
    """

    name = "protection"

    def __init__(
        self,
        duration_us: int,
        bin_us: int = 60_000_000,
        practical_timeout_us: int = 60_000_000,
        tracker: Optional[StationTracker] = None,
    ) -> None:
        self.duration_us = duration_us
        self.bin_us = bin_us
        self.practical_timeout_us = practical_timeout_us
        self._tracker = tracker or StationTracker()
        self._b_clients: Set[MacAddress] = set()
        # Association candidates, resolved in finish(): association
        # requests apply unconditionally, ToDS data only when the sender
        # classifies as a client — and "last event wins", so each keeps
        # its feed-order sequence number.
        self._seq = 0
        self._assoc_req: Dict[MacAddress, Tuple[int, MacAddress]] = {}
        self._assoc_data: Dict[MacAddress, Tuple[int, MacAddress]] = {}
        # Raw loop-2 events (same volume the batch analysis accumulated).
        self._cts_events: List[Tuple[int, MacAddress]] = []    # (t, RA)
        self._probe_resp: List[Tuple[int, MacAddress, MacAddress]] = []
        # Per-bin DATA (sender, receiver) pairs: bounded by station pairs.
        n_bins = max(1, (duration_us + bin_us - 1) // bin_us)
        self._n_bins = n_bins
        self._data_pairs: List[Set[Tuple[MacAddress, MacAddress]]] = [
            set() for _ in range(n_bins)
        ]

    def on_jframe(self, jframe) -> None:
        frame = jframe.frame
        if frame is None:
            return
        self._tracker.feed(jframe)
        t = jframe.timestamp_us
        sender = frame.addr2
        ftype = frame.ftype
        if frame_marks_cck_only(frame) and sender is not None:
            self._b_clients.add(sender)
        if ftype is FrameType.ASSOC_REQUEST and sender is not None:
            self._seq += 1
            self._assoc_req[sender] = (self._seq, frame.addr1)
        elif ftype is FrameType.DATA and sender is not None and frame.to_ds:
            self._seq += 1
            self._assoc_data[sender] = (self._seq, frame.addr1)

        if ftype is FrameType.CTS:
            self._cts_events.append((t, frame.addr1))
        elif ftype is FrameType.PROBE_RESPONSE and sender is not None:
            self._probe_resp.append((t, sender, frame.addr1))
        elif ftype is FrameType.DATA:
            index = min(max(t, 0) // self.bin_us, self._n_bins - 1)
            self._data_pairs[index].add((sender, frame.addr1))

    def finish(self, context: Optional[PassContext]) -> ProtectionResult:
        clients, aps = self._tracker.finish()
        b_clients = self._b_clients
        g_clients = {c for c in clients if c not in b_clients}

        association: Dict[MacAddress, MacAddress] = {}
        for sender, (seq, ap) in self._assoc_req.items():
            association[sender] = ap
        for sender, (seq, ap) in self._assoc_data.items():
            if sender not in clients:
                continue
            prior = self._assoc_req.get(sender)
            if prior is None or prior[0] < seq:
                association[sender] = ap

        b_in_range: Dict[MacAddress, List[int]] = defaultdict(list)
        for t, sender, receiver in self._probe_resp:
            if sender in aps and receiver in b_clients:
                b_in_range[sender].append(t)
        for times in b_in_range.values():
            times.sort()

        bin_us = self.bin_us
        n_bins = self._n_bins
        bins = [ProtectionBin(start_us=i * bin_us) for i in range(n_bins)]

        def bin_of(t: int) -> ProtectionBin:
            return bins[min(max(t, 0) // bin_us, n_bins - 1)]

        for t, target in self._cts_events:
            # CTS-to-self: RA names the protected transmitter.
            if target in aps:
                ap = target
            elif target in association:
                ap = association[target]
            else:
                continue
            slot = bin_of(t)
            slot.protecting_aps.add(ap)
            if not _b_client_recently_in_range(
                b_in_range.get(ap, ()), t, self.practical_timeout_us
            ):
                slot.overprotective_aps.add(ap)

        for slot, pairs in zip(bins, self._data_pairs):
            for sender, receiver in pairs:
                if sender in g_clients:
                    slot.active_g_clients.add(sender)
                elif sender in aps and receiver in g_clients:
                    slot.active_g_clients.add(receiver)

        for slot in bins:
            for client in slot.active_g_clients:
                ap = association.get(client)
                if ap is not None and ap in slot.overprotective_aps:
                    slot.g_clients_on_overprotective.add(client)

        return ProtectionResult(
            bins=bins, bin_us=bin_us, b_clients=b_clients, g_clients=g_clients
        )


def analyze_protection(
    report: JigsawReport,
    duration_us: int,
    bin_us: int = 60_000_000,
    practical_timeout_us: int = 60_000_000,
) -> ProtectionResult:
    """Figure 10 from a pipeline report."""
    return run_passes(
        report,
        [
            ProtectionPass(
                duration_us,
                bin_us=bin_us,
                practical_timeout_us=practical_timeout_us,
            )
        ],
    )["protection"]


def _b_client_recently_in_range(
    times: Sequence[int], t: int, timeout_us: int
) -> bool:
    """Was any 802.11b client in range of the AP within the timeout?"""
    from bisect import bisect_right

    index = bisect_right(times, t)
    if index == 0:
        return False
    return t - times[index - 1] <= timeout_us
