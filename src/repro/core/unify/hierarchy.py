"""Hierarchical sharding: pod/building x channel merge trees.

The flat :class:`~repro.core.unify.sharded.ShardedUnifier` scales with
the number of *channels* — three shards for a 1/6/11 deployment no
matter how many radios capture.  At campus scale the fleet grows by
buildings, not channels, so the shard count must scale with the fleet:
:func:`~repro.core.unify.unifier.partition_traces` splits shards by the
``building_id`` locality stamp (radios in different buildings are
RF-isolated — no transmission is audible in two buildings, so the
per-channel interaction argument applies per (building, channel) leaf),
and this module plans and executes the merge over those leaves as a
**tree of k-way merges**:

* a :class:`ShardPlan` lays out the leaves (one per (building, channel)
  component, in deterministic (locality, smallest-channel) order) and
  the intermediate node levels above them — building-local nodes first,
  then fanout-bounded reduction levels up to a single root;
* a :class:`MergeTree` runs each leaf's merge engine (serially, or on a
  process pool with the same fault recovery as the flat coordinator)
  and reduces the per-leaf jframe streams through the plan's nodes.

Bit-identity is by construction, not by luck: every mode — ``Unifier``,
``ShardedUnifier``, ``MergeTree``, the live daemon — partitions through
the same :func:`partition_traces`, so they merge identical leaf
streams; and ``heapq.merge`` is a *stable* k-way merge (ties broken by
stream position), which makes it associative over contiguous stream
ranges — merging leaves through any tree of stable merges that
preserves the global leaf order emits the exact (timestamp, tiebreak)
sequence the flat k-way merge does.  ``tests/test_hierarchy_parity.py``
holds the property across tree shapes, serial/pool execution, fault
injection and the live daemon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ...jtrace.io import RadioTrace
from ..faults import RetryPolicy, ShardHealth, map_shards_with_recovery
from ..sync.bootstrap import BootstrapResult
from ..sync.sharded import resolve_pool_workers
from ..sync.skew import ClockTrack
from .jframe import JFrame
from .sharded import _CompletedStream, _drain_shard, _unify_shard
from .unifier import (
    UnificationResult,
    Unifier,
    UnifyStats,
    UnifyStream,
    _MergeEngine,
    _timestamp_key,
    merge_shard_streams,
    partition_traces,
    trace_locality,
)

#: Default k-way fanout for intermediate merge nodes.  Wide enough that
#: a campus of a dozen buildings reduces in one extra level, narrow
#: enough that no single ``heapq.merge`` heap grows past cache-friendly
#: size when leaves multiply.
DEFAULT_FANOUT = 8


@dataclass(frozen=True)
class ShardLeaf:
    """One leaf of the plan: an independent (building, channel) shard."""

    index: int
    locality: Optional[int]
    channels: Tuple[int, ...]
    n_traces: int


class ShardPlan:
    """The static layout of a hierarchical merge.

    ``leaves[i]`` describes the i-th leaf shard (the trace lists
    themselves are in ``leaf_traces[i]``, in the same order).  ``levels``
    is the reduction schedule: each level is a list of ``(start, end)``
    ranges over the previous level's nodes (level 0 reduces leaves), and
    the last level always holds exactly one range — the root.  Ranges
    are contiguous in the global leaf order, which is what makes the
    tree's stable merges reproduce the flat k-way interleaving.
    """

    def __init__(
        self,
        leaves: List[ShardLeaf],
        leaf_traces: List[List[RadioTrace]],
        levels: List[List[Tuple[int, int]]],
        fanout: int,
    ) -> None:
        self.leaves = leaves
        self.leaf_traces = leaf_traces
        self.levels = levels
        self.fanout = fanout

    @classmethod
    def build(
        cls,
        traces: Sequence[RadioTrace],
        fanout: int = DEFAULT_FANOUT,
        locality: Callable[[RadioTrace], Optional[int]] = trace_locality,
    ) -> "ShardPlan":
        """Plan the merge tree for ``traces``.

        Leaves come from :func:`partition_traces` with the same locality
        key every other execution mode uses.  The first reduction level
        groups each locality's leaves under one building-local node (the
        pod-local merge a distributed deployment would run in-building);
        levels above chunk ``fanout`` nodes at a time until one root
        remains.  Legacy inputs (no locality stamps) get fanout-chunked
        levels directly over the channel shards.
        """
        if fanout < 2:
            raise ValueError(f"fanout must be at least 2, got {fanout}")
        leaf_traces = partition_traces(traces, locality)
        leaves: List[ShardLeaf] = []
        for index, shard in enumerate(leaf_traces):
            keys = {locality(t) for t in shard}
            loc = keys.pop() if len(keys) == 1 else None
            leaves.append(
                ShardLeaf(
                    index=index,
                    locality=loc,
                    channels=tuple(sorted({t.channel for t in shard})),
                    n_traces=len(shard),
                )
            )
        levels: List[List[Tuple[int, int]]] = []
        localities = [leaf.locality for leaf in leaves]
        if leaves and all(loc is not None for loc in localities):
            # Building-local nodes: one contiguous range per locality
            # (partition order is locality-major, so ranges never split).
            first: List[Tuple[int, int]] = []
            start = 0
            for i in range(1, len(leaves) + 1):
                if i == len(leaves) or localities[i] != localities[start]:
                    first.append((start, i))
                    start = i
            levels.append(first)
            width = len(first)
        else:
            width = len(leaves)
        while width > 1:
            level = [
                (start, min(start + fanout, width))
                for start in range(0, width, fanout)
            ]
            levels.append(level)
            width = len(level)
        if not levels and leaves:
            levels.append([(0, len(leaves))])
        return cls(leaves, leaf_traces, levels, fanout)

    @property
    def depth(self) -> int:
        """Number of merge levels above the leaves (1 = flat k-way)."""
        return len(self.levels)

    def describe(self) -> Dict[str, object]:
        """Plan summary for health surfaces and benchmark sections."""
        return {
            "leaves": len(self.leaves),
            "localities": len(
                {leaf.locality for leaf in self.leaves} - {None}
            ),
            "depth": self.depth,
            "fanout": self.fanout,
            "max_leaf_traces": max(
                (leaf.n_traces for leaf in self.leaves), default=0
            ),
        }


class MergeTree:
    """Hierarchical front-end over :class:`Unifier`: plan, then reduce.

    Drop-in for :class:`~repro.core.unify.sharded.ShardedUnifier`
    (``stream_unify`` / ``iter_unify`` / ``unify``, plus the ``health``
    ledger the pipeline folds into ``report.health``) and bit-identical
    to it on the same traces.  ``max_workers`` selects the execution
    mode exactly like the flat coordinator; leaf merges are the pool
    work items, intermediate nodes reduce on the coordinator (a node is
    a stable ``heapq.merge`` — O(total jframes x log fanout) — while the
    leaves carry the engine hot loop, so shipping nodes to workers would
    only move pickled jframes around).

    ``leaf_runner`` is the picklable per-leaf work item submitted to the
    pool; the devtools picklability lint holds it to the same rule as
    every other pool callable (module-level, no lambdas/closures).
    """

    def __init__(
        self,
        unifier: Optional[Unifier] = None,
        max_workers: Optional[int] = None,
        fanout: int = DEFAULT_FANOUT,
        retry_policy: Optional[RetryPolicy] = None,
        shard_timeout_s: Optional[float] = None,
        locality: Callable[[RadioTrace], Optional[int]] = trace_locality,
        leaf_runner: Callable[..., object] = _unify_shard,
    ) -> None:
        self.unifier = unifier or Unifier()
        self.max_workers = max_workers
        self.fanout = fanout
        self.locality = locality
        self.leaf_runner = leaf_runner
        if retry_policy is None:
            retry_policy = RetryPolicy(shard_timeout_s=shard_timeout_s)
        elif shard_timeout_s is not None:
            retry_policy = RetryPolicy(
                max_retries=retry_policy.max_retries,
                backoff_base_s=retry_policy.backoff_base_s,
                backoff_multiplier=retry_policy.backoff_multiplier,
                backoff_cap_s=retry_policy.backoff_cap_s,
                shard_timeout_s=shard_timeout_s,
            )
        self.retry_policy = retry_policy
        #: Pool-fault ledger (and worker-count audit) for the last call.
        self.health = ShardHealth()
        #: The execution mode the last call actually used.
        self.last_engine = "hierarchy-serial"

    # --- internals ---------------------------------------------------------

    def plan(self, traces: Sequence[RadioTrace]) -> ShardPlan:
        return ShardPlan.build(
            traces, fanout=self.fanout, locality=self.locality
        )

    def _reduce(
        self, streams: List[Iterator[JFrame]], plan: ShardPlan
    ) -> Iterator[JFrame]:
        """Run the plan's node levels over the leaf streams."""
        current = streams
        for level in plan.levels:
            current = [
                merge_shard_streams(current[start:end])
                for start, end in level
            ]
        return current[0]

    # --- public API --------------------------------------------------------

    def stream_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnifyStream:
        """A :class:`UnifyStream` over the tree-structured merge.

        Serial mode is fully lazy — every leaf engine and every node
        merge advances only as the consumer drains the root.  Pool mode
        dispatches the leaves eagerly (with the shared shard fault
        recovery) and reduces the returned streams lazily.
        """
        self.health = ShardHealth()
        plan = self.plan(traces)
        if not plan.leaves:
            self.last_engine = "hierarchy-serial"
            return self.unifier.stream_unify(traces, bootstrap)
        workers = resolve_pool_workers(self.max_workers, len(plan.leaves))
        track_order = [t.radio_id for t in traces]
        if workers <= 1:
            self.last_engine = "hierarchy-serial"
            self.health.pool_workers = 0
            self.health.shards += len(plan.leaves)
            engines = [
                _MergeEngine(self.unifier, shard, bootstrap)
                for shard in plan.leaf_traces
            ]
            merged = self._reduce(
                [engine.run() for engine in engines], plan
            )
            return UnifyStream(merged, engines, track_order=track_order)
        self.last_engine = f"hierarchy-pool{workers}"
        self.health.pool_workers = workers
        results = map_shards_with_recovery(
            self.leaf_runner,
            [
                (self.unifier, shard, bootstrap)
                for shard in plan.leaf_traces
            ],
            max_workers=workers,
            policy=self.retry_policy,
            health=self.health,
            label="unify-tree",
        )
        merged = self._reduce(
            [_drain_shard(jframes) for jframes, _, _ in results], plan
        )
        shard_meta: List[Tuple[Dict[int, ClockTrack], UnifyStats]] = [
            (tracks, stats) for _, tracks, stats in results
        ]
        return _CompletedStream(merged, shard_meta, track_order)

    def iter_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> Iterator[JFrame]:
        """Generator of globally time-ordered jframes."""
        return iter(self.stream_unify(traces, bootstrap))

    def unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnificationResult:
        """Batch API: identical result shape (and content) to ``Unifier``."""
        stream = self.stream_unify(traces, bootstrap)
        jframes = list(stream)
        jframes.sort(key=_timestamp_key)
        return UnificationResult(
            jframes=jframes, tracks=stream.tracks, stats=stream.stats
        )
