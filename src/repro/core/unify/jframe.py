"""The jframe: one physical transmission, all its observations.

"Jigsaw processes all traces in time order and unifies duplicate frames,
called instances, into a single data structure called a jframe.  Each
jframe holds a (universal) timestamp, the full contents of the frame and
the identity of the radios that heard each instance." (Section 4.2)
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional

from ...dot11.address import MacAddress
from ...dot11.frame import Frame
from ...jtrace.records import TraceRecord


@dataclass(slots=True)
class Instance:
    """One radio's observation of a transmission.

    ``frame`` caches the parse of a VALID record's snap: every record is
    decoded at most once, when it is popped from the merge queue.

    One :class:`Instance` is created per trace record, so construction is
    on the merge hot path — ``slots=True`` keeps it allocation-cheap (and
    drops the frozen-dataclass ``object.__setattr__`` overhead).
    """

    radio_id: int
    local_us: int
    universal_us: float
    record: TraceRecord
    frame: Optional[Frame] = None


class JFrameKind(enum.Enum):
    VALID = "valid"          # at least one FCS-good capture
    CORRUPT = "corrupt"      # only damaged captures
    PHY_ERROR = "phy_error"  # only physical-error events


@dataclass
class JFrame:
    """One unified transmission on the global timeline.

    ``timestamp_us`` is the *end of reception* in universal time — capture
    hardware stamps a frame once it has fully arrived (Section 3.3's 1 us
    Atheros capture clock does exactly this).  ``start_us`` subtracts the
    airtime back out for analyses that need occupancy intervals.
    """

    timestamp_us: int
    kind: JFrameKind
    channel: int
    instances: List[Instance]
    frame: Optional[Frame] = None          # parsed representative (VALID only)
    frame_len: int = 0
    fcs: int = 0
    rate_mbps: float = 0.0
    duration_us: int = 0
    dispersion_us: float = 0.0
    transmitter: Optional[MacAddress] = None

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def radios(self) -> List[int]:
        return [instance.radio_id for instance in self.instances]

    @property
    def end_us(self) -> int:
        return self.timestamp_us

    @property
    def start_us(self) -> int:
        return self.timestamp_us - self.duration_us

    @property
    def is_valid(self) -> bool:
        return self.kind is JFrameKind.VALID

    def truth_txid(self) -> int:
        """Majority ground-truth transmission id (evaluation only).

        The Jigsaw pipeline never consults this; evaluation code uses it to
        score unification against the simulator's oracle.
        """
        counts = Counter(
            inst.record.truth_txid
            for inst in self.instances
            if inst.record.truth_txid
        )
        if not counts:
            return 0
        return counts.most_common(1)[0][0]

    def __str__(self) -> str:
        desc = str(self.frame) if self.frame is not None else self.kind.value
        return (
            f"JFrame[t={self.timestamp_us} ch{self.channel} x{self.n_instances} "
            f"disp={self.dispersion_us:.1f}us {desc}]"
        )
