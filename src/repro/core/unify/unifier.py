"""Frame unification with continual resynchronization (Section 4.2).

The unifier consumes all radio traces through "a single priority queue
sorted by time with the earliest instance from each trace", groups
instances into jframes by content within a search window, timestamps each
jframe with "the median instance timestamp", and uses every unified unique
frame to resynchronize the contributing radios' clocks — gated on the
group dispersion threshold, with EWMA skew/drift compensation applied
proactively to every subsequent timestamp.

Grouping is implemented with an open-group index (content key -> group)
instead of literal pop-and-push-back, which gives identical grouping
decisions in O(n log n) — each record is pushed and popped exactly once —
satisfying the paper's requirement that merging "execute faster than
real-time ... in a single pass over the data".

Architecture (streaming + sharding)
-----------------------------------

Content keys, open-group queues and clock tracks are all channel-local: a
frame on channel 1 can never group with — or resynchronize against — a
record captured on channel 11.  The merge core therefore runs as one
:class:`_MergeEngine` per *channel shard* (traces partitioned by the
channels their records occupy), and the per-shard jframe streams are
k-way merged by timestamp:

* :meth:`Unifier.iter_unify` / :meth:`Unifier.stream_unify` — the
  streaming API: a generator of globally time-ordered jframes.  Inside a
  shard, finalization lags arrival by at most the search window, so a
  small bounded reorder heap (rather than an end-of-run sort over every
  jframe) yields incrementally ordered output.
* :meth:`Unifier.unify` — the batch API, now a thin wrapper that drains
  the stream into a :class:`UnificationResult`.
* :class:`repro.core.unify.sharded.ShardedUnifier` — the front-end that
  exposes the shard structure explicitly and can merge shards on a
  process pool for multi-core machines.

Because every execution mode runs the same engine over the same shards in
the same deterministic order, batch, streaming, serial-sharded and
parallel-sharded unification produce jframe-for-jframe identical output
(``tests/test_streaming_equivalence.py`` holds this property).
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, fields
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ...dot11.address import MacAddress
from ...dot11.serialize import transmitter_from_corrupt_bytes
from ...jtrace.io import RadioTrace
from ...jtrace.records import RecordKind, TraceRecord
from ..sync.bootstrap import BootstrapResult
from ..sync.refs import _PARSE_CACHE, ReferenceKey, parse_record_frame
from ..sync.skew import ClockTrack
from .jframe import Instance, JFrame, JFrameKind

#: Paper defaults: 10 ms search window, 10 us resync threshold.
DEFAULT_SEARCH_WINDOW_US = 10_000
DEFAULT_RESYNC_THRESHOLD_US = 10.0

#: Attachment windows for content-less instances (corrupt/PHY-error).
DEFAULT_CORRUPT_ATTACH_US = 120.0
DEFAULT_PHY_ATTACH_US = 60.0

_INF = float("inf")


@dataclass
class UnifyStats:
    """Counters describing one unification run (Table 1 inputs)."""

    records_in: int = 0
    records_skipped_unsynchronized: int = 0
    jframes: int = 0
    valid_jframes: int = 0
    corrupt_jframes: int = 0
    phy_error_jframes: int = 0
    instances_unified: int = 0
    resyncs: int = 0

    @property
    def events_per_jframe(self) -> float:
        if self.jframes == 0:
            return 0.0
        return self.instances_unified / self.jframes

    def merge(self, other: "UnifyStats") -> None:
        """Fold another shard's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class UnificationResult:
    jframes: List[JFrame]
    tracks: Dict[int, ClockTrack]
    stats: UnifyStats

    def dispersions_us(self, min_instances: int = 2) -> List[float]:
        """Group dispersion samples (Figure 4's population)."""
        return [
            jf.dispersion_us
            for jf in self.jframes
            if jf.n_instances >= min_instances
        ]


class _Group:
    """An open (not yet finalized) jframe under construction."""

    __slots__ = (
        "first_universal",
        "channel",
        "key",
        "instances",
        "rep_record",
        "rep_frame",
        "transmitter",
        "radios",
        "is_reference",
    )

    def __init__(
        self,
        instance: Instance,
        channel: int,
        key: Optional[ReferenceKey],
        rep_record: Optional[TraceRecord],
        transmitter: Optional[MacAddress],
    ) -> None:
        self.first_universal = instance.universal_us
        self.channel = channel
        self.key = key
        self.instances = [instance]
        self.rep_record = rep_record
        self.rep_frame = None
        self.transmitter = transmitter
        self.radios = {instance.radio_id}
        self.is_reference = False

    def add(self, instance: Instance) -> None:
        self.instances.append(instance)
        self.radios.add(instance.radio_id)


def trace_locality(trace: RadioTrace) -> Optional[int]:
    """The trace's locality key for hierarchical sharding.

    Campus-scale captures stamp each trace with the building its radio is
    mounted in (``building_id`` — written by the simulator's campus
    composition and by the trace-file metadata sidecar).  Radios in
    different buildings are RF-isolated: no transmission is audible in
    two buildings, so their records can never legitimately share a
    jframe, and the merge may shard by (building, channel) instead of by
    channel alone.  Legacy traces carry no stamp and return ``None``.
    """
    return getattr(trace, "building_id", None)


def partition_traces(
    traces: Sequence[RadioTrace],
    locality: Callable[[RadioTrace], Optional[int]] = trace_locality,
) -> List[List[RadioTrace]]:
    """Partition traces into independent merge shards.

    Two traces land in the same shard iff they share (transitively) any
    channel among their records *within the same locality* — the exact
    condition under which their records could interact during
    unification.  Locality comes from ``locality(trace)`` (the
    ``building_id`` metadata stamp by default); if **any** trace lacks a
    locality key the whole input falls back to channel-only sharding, so
    legacy inputs — and mixed fleets where the stamp cannot be trusted —
    behave exactly as before.  Shards are ordered by (locality, smallest
    channel), one deterministic global order every execution mode —
    serial, pool, merge tree, live daemon — enumerates identically; with
    a single locality this reduces to the historical smallest-channel
    order.
    """
    keys = [locality(t) for t in traces]
    if traces and all(k is not None for k in keys):
        shards: List[List[RadioTrace]] = []
        by_key: Dict[int, List[RadioTrace]] = defaultdict(list)
        for key, trace in zip(keys, traces):
            by_key[cast(int, key)].append(trace)
        for key in sorted(by_key):
            shards.extend(_partition_by_channel(by_key[key]))
        return shards
    return _partition_by_channel(traces)


def _partition_by_channel(
    traces: Sequence[RadioTrace],
) -> List[List[RadioTrace]]:
    """Channel-component shards (ordered by smallest channel)."""
    # Union-find over channels.
    parent: Dict[int, int] = {}

    def find(c: int) -> int:
        root = c
        while parent[root] != root:
            root = parent[root]
        while parent[c] != root:
            parent[c], c = root, parent[c]
        return root

    trace_channels: List[frozenset] = []
    for trace in traces:
        channels = {trace.channel}
        declared = getattr(trace, "channel_set", None)
        if declared is not None:
            # File-backed streams carry the writer's channel index in the
            # metadata sidecar; partitioning off it keeps the partition a
            # metadata-only pass instead of forcing a full decode before
            # the merge can even start.
            channels.update(declared)
        else:
            channels.update(r.channel for r in trace.records)
        trace_channels.append(frozenset(channels))
        # Union-by-min makes the final roots order-independent, but the
        # sorted walk keeps every intermediate parent table identical
        # across runs too — the structure is deterministic by inspection,
        # not by argument.
        first = min(channels)
        for c in sorted(channels):
            parent.setdefault(c, c)
            ra, rb = find(first), find(c)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

    shards: Dict[int, List[RadioTrace]] = defaultdict(list)
    for trace, channels in zip(traces, trace_channels):
        shards[find(min(channels))].append(trace)
    return [shards[root] for root in sorted(shards)]


class _TraceCursor:
    """Incremental record access for the merge hot loop.

    Materialized traces index their record list directly.  Streaming
    traces decode on demand through
    :meth:`~repro.jtrace.io.StreamingRadioTrace.ensure_index`, so the
    merge pulls batches as its heap advances instead of draining every
    trace before the first jframe — the seam that lets decode-ahead
    reader threads overlap decoding with the merge.

    ``counted`` tracks whether this cursor's records have been added to
    ``records_in`` yet: materialized traces are counted up front (their
    length is free), streaming traces at exhaustion (their length is
    only known once decoded).
    """

    __slots__ = ("buffer", "ensure", "counted")

    def __init__(self, trace: RadioTrace) -> None:
        ensure = getattr(trace, "ensure_index", None)
        if ensure is None:
            self.buffer: List[TraceRecord] = trace.records
            self.ensure = None
            self.counted = True
        else:
            self.buffer = trace.replay_buffer
            self.ensure = ensure
            self.counted = False

    def get(self, index: int) -> Optional[TraceRecord]:
        buffer = self.buffer
        if index < len(buffer):
            return buffer[index]
        if self.ensure is not None and self.ensure(index):
            return buffer[index]
        return None

    def drained_length(self) -> int:
        """Total record count, decoding the remainder if necessary."""
        if self.ensure is not None:
            index = len(self.buffer)
            while self.ensure(index):
                index = len(self.buffer)
        return len(self.buffer)


class _MergeEngine:
    """Streams one channel shard's records into time-ordered jframes.

    This is the seed single-heap merge algorithm restricted to one shard,
    restructured as a generator: groups are finalized when the merge
    clock passes their search-window deadline and emitted through a small
    reorder heap once no later-finalized group can precede them.  The
    emission watermark trails the merge clock by twice the search window,
    which dominates both the window lag itself and any jitter introduced
    by resynchronization corrections (microseconds against a 10 ms
    window).

    Synchronized streaming traces are consumed *incrementally* through
    :class:`_TraceCursor`: the heap pulls the next record (and, behind
    it, the next decoded batch) only as the merge clock reaches it, so
    decode and merge overlap instead of serializing.
    """

    def __init__(
        self,
        unifier: "Unifier",
        traces: Sequence[RadioTrace],
        bootstrap: BootstrapResult,
    ) -> None:
        self.unifier = unifier
        self.stats = UnifyStats()
        self.tracks: Dict[int, ClockTrack] = {}
        self._cursors: Dict[int, _TraceCursor] = {}
        offsets = bootstrap.offsets_us
        for trace in traces:
            offset = offsets.get(trace.radio_id)
            if offset is None:
                # Quarantined radios contribute nothing; their length is
                # needed for the ledger, which drains them here exactly
                # as the materializing engine did.
                skipped = len(trace)
                self.stats.records_in += skipped
                self.stats.records_skipped_unsynchronized += skipped
                continue
            displaced = self._cursors.get(trace.radio_id)
            if displaced is not None and not displaced.counted:
                # Duplicate radio id: the later trace wins (dict
                # semantics, unchanged), but the displaced records still
                # count as engine input like they always did.
                displaced.counted = True
                self.stats.records_in += displaced.drained_length()
            self.tracks[trace.radio_id] = ClockTrack(
                radio_id=trace.radio_id,
                offset_us=offset,
                alpha=unifier.skew_alpha,
                compensate_skew=unifier.compensate_skew,
            )
            cursor = _TraceCursor(trace)
            if cursor.counted:
                self.stats.records_in += len(cursor.buffer)
            self._cursors[trace.radio_id] = cursor
        # Open-group state (channel-local by construction of the shard).
        self.open_by_key: Dict[ReferenceKey, _Group] = {}
        self.open_by_channel: Dict[int, deque] = defaultdict(deque)
        self.open_order: deque = deque()
        #: Emission watermark: every jframe with ``timestamp_us`` at or
        #: below this has been yielded.  Advances with the reorder-heap
        #: drain; ``inf`` once the shard is fully drained.
        self.watermark_us: float = -_INF

    # --- the merge hot loop ------------------------------------------------

    def run(self) -> Iterator[JFrame]:
        """Yield this shard's jframes in (timestamp, finalization) order."""
        unifier = self.unifier
        tracks = self.tracks
        cursors = self._cursors
        stats = self.stats
        search_window = unifier.search_window_us
        gap_limit = unifier.instance_gap_us
        corrupt_attach = unifier.corrupt_attach_us
        phy_attach = unifier.phy_attach_us
        # Emission watermark: a future-finalized group's timestamp can
        # precede the merge clock by (search window + attachment window +
        # resync jitter).  The attachment windows enter explicitly so the
        # bound holds even when the search window is configured smaller
        # than them; the extra search window of slack dominates resync
        # corrections (instance-gap scale, which itself scales with the
        # window).
        emit_lag = 2.0 * search_window + max(corrupt_attach, phy_attach)

        open_by_key = self.open_by_key
        open_by_channel = self.open_by_channel
        open_order = self.open_order
        finalize_stale = self._finalize_stale
        find_attachable = self._find_attachable
        parse_frame = parse_record_frame
        parse_cache_get = _PARSE_CACHE.get
        kind_valid = RecordKind.VALID
        kind_corrupt = RecordKind.CORRUPT
        heappush, heappop = heapq.heappush, heapq.heappop

        # One entry per radio: (est universal, tiebreak, radio, record,
        # next index, track generation at push time, track, cursor).  The
        # generation lets the pop skip recomputing ``universal_us`` when
        # no resync touched the track since the push — the common case by
        # far.  The trailing track/cursor references sit past the unique
        # tiebreak, so tuple comparison never reaches them; carrying them
        # in the entry saves two per-record dict lookups.
        heap: List[tuple] = []
        counter = itertools.count()
        for radio_id, cursor in cursors.items():
            first = cursor.get(0)
            if first is not None:
                track = tracks[radio_id]
                heappush(
                    heap,
                    (
                        track.universal_us(first.timestamp_us),
                        next(counter),
                        radio_id,
                        first,
                        1,
                        track.generation,
                        track,
                        cursor,
                    ),
                )
            elif not cursor.counted:
                cursor.counted = True

        #: Finalized jframes awaiting ordered emission: (ts, seq, jframe).
        reorder: List[Tuple[int, int, JFrame]] = []
        #: Merge clock at which the oldest open group goes stale.
        oldest_deadline = _INF

        inst_new = Instance.__new__
        while heap:
            est, _, radio_id, record, idx, gen, track, cursor = heappop(heap)
            # _TraceCursor.get, inlined: one attribute walk per record
            # beats a method call at building scale.
            buffer = cursor.buffer
            if idx < len(buffer):
                nxt = buffer[idx]
            else:
                ensure = cursor.ensure
                if ensure is not None and ensure(idx):
                    nxt = buffer[idx]
                else:
                    nxt = None
            if nxt is not None:
                # ClockTrack.universal_us, inlined verbatim (the resync
                # paths still go through the method): one method call per
                # record is real money at 1.5M records.
                local = nxt.timestamp_us
                heappush(
                    heap,
                    (
                        local
                        + track.offset_us
                        + (
                            track.skew_ppm * 1e-6 * (local - track.anchor_local_us)
                            if track.compensate_skew
                            else 0.0
                        ),
                        next(counter),
                        radio_id,
                        nxt,
                        idx + 1,
                        track.generation,
                        track,
                        cursor,
                    ),
                )
            elif not cursor.counted:
                cursor.counted = True
                stats.records_in += idx
            # Recompute with the current (possibly resynced) track state;
            # skip when the push-time estimate is still exact.
            if gen == track.generation:
                universal = est
            else:
                universal = track.universal_us(record.timestamp_us)

            kind = record.kind
            if kind is kind_valid:
                # parse_record_frame's hit path, inlined: a valid record
                # always satisfies its kind/snap preconditions, so a bare
                # cache probe replaces the call for the common repeat
                # (control frames and duplicate receptions).
                cached = parse_cache_get((record.snap, record.frame_len), False)
                frame = cached if cached is not False else parse_frame(record)
            else:
                frame = None
            # Instance(...), with the dataclass-__init__ call layer
            # peeled off: five slot stores per record.
            instance = inst_new(Instance)
            instance.radio_id = radio_id
            instance.local_us = record.timestamp_us
            instance.universal_us = universal
            instance.record = record
            instance.frame = frame

            if universal > oldest_deadline:
                oldest_deadline = finalize_stale(universal, reorder)
                bound = universal - emit_lag
                if bound > self.watermark_us:
                    self.watermark_us = bound
                while reorder and reorder[0][0] <= bound:
                    yield heappop(reorder)[2]

            # --- placement (inlined: once per record) ---------------------
            channel = record.channel
            if kind is kind_valid:
                key = (channel, record.frame_len, record.fcs, record.snap)
                group = open_by_key.get(key)
                if (
                    group is not None
                    and radio_id not in group.radios
                    and universal - group.first_universal <= gap_limit
                ):
                    group.instances.append(instance)
                    group.radios.add(radio_id)
                    continue
                transmitter = None
                if frame is not None:
                    # CTS-to-self carries the sender in RA; a plain
                    # receiver cannot know which it is, so RA doubles as
                    # the hint.
                    transmitter = frame.transmitter or frame.addr1
                # A valid capture may complete a group opened by a corrupt
                # or PHY-error observation of the same transmission.
                upgrade = find_attachable(
                    instance, open_by_channel[channel],
                    corrupt_attach, need_headless=True,
                )
                if upgrade is not None:
                    upgrade.add(instance)
                    upgrade.key = key
                    upgrade.rep_record = record
                    upgrade.rep_frame = frame
                    upgrade.transmitter = transmitter
                    open_by_key[key] = upgrade
                    continue
                group = _Group(instance, channel, key, record, transmitter)
                group.rep_frame = frame
                open_by_key[key] = group
            elif kind is kind_corrupt:
                transmitter = transmitter_from_corrupt_bytes(record.snap)
                existing = find_attachable(
                    instance, open_by_channel[channel],
                    corrupt_attach, transmitter=transmitter,
                )
                if existing is not None:
                    existing.instances.append(instance)
                    existing.radios.add(radio_id)
                    continue
                group = _Group(instance, channel, None, None, transmitter)
            else:  # PHY_ERROR
                # _find_attachable, inlined for its hottest caller (PHY
                # errors are half the fleet's records): the transmitter
                # and headless filters are no-ops here, so the body is
                # just the windowed best-gap scan.  Keep semantics in
                # lockstep with _find_attachable.
                best = None
                best_gap = phy_attach
                for g in reversed(open_by_channel[channel]):
                    gap = universal - g.first_universal
                    if gap > phy_attach:
                        break  # creation order: older only further away
                    if gap < 0.0:
                        gap = -gap
                        if gap > phy_attach:
                            continue
                    if radio_id in g.radios:
                        continue
                    if gap <= best_gap:
                        best = g
                        best_gap = gap
                if best is not None:
                    best.instances.append(instance)
                    best.radios.add(radio_id)
                    continue
                group = _Group(instance, channel, None, None, None)

            open_by_channel[channel].append(group)
            open_order.append(group)
            if oldest_deadline is _INF:
                oldest_deadline = group.first_universal + search_window

        self._finalize_stale(_INF, reorder)
        while reorder:
            yield heappop(reorder)[2]
        self.watermark_us = _INF

    # --- placement helpers -------------------------------------------------

    def _find_attachable(
        self,
        instance: Instance,
        channel_groups: deque,
        window_us: float,
        transmitter: Optional[MacAddress] = None,
        need_headless: bool = False,
    ) -> Optional[_Group]:
        """Scan open groups on this channel for a time/transmitter match.

        Corrupt captures "simply match on the transmitter's address field"
        when it is readable; address-less damage falls back to temporal
        proximity.  ``need_headless`` restricts the search to groups without
        a valid representative (used when a valid capture adopts orphans).
        """
        best: Optional[_Group] = None
        best_gap = window_us
        universal = instance.universal_us
        radio_id = instance.radio_id
        for group in reversed(channel_groups):
            gap = universal - group.first_universal
            if gap > window_us:
                break  # deque is in creation order; older ones only further
            if gap < 0.0:
                gap = -gap
                if gap > window_us:
                    continue
            if radio_id in group.radios:
                continue
            if need_headless and group.rep_record is not None:
                continue
            if transmitter is not None and group.transmitter is not None:
                if transmitter != group.transmitter:
                    continue
            if gap <= best_gap:
                best = group
                best_gap = gap
        return best

    # --- finalization ------------------------------------------------------

    def _finalize_stale(
        self,
        now_universal: float,
        reorder: List[Tuple[int, int, JFrame]],
    ) -> float:
        """Finalize groups older than the search window.

        Returns the merge-clock deadline at which the (new) oldest open
        group goes stale, so the hot loop can gate on a float compare.
        """
        open_order = self.open_order
        open_by_channel = self.open_by_channel
        open_by_key = self.open_by_key
        window = self.unifier.search_window_us
        stats = self.stats
        while open_order and (
            now_universal - open_order[0].first_universal > window
        ):
            group = open_order.popleft()
            channel_queue = open_by_channel[group.channel]
            if channel_queue and channel_queue[0] is group:
                channel_queue.popleft()
            else:  # rare: out-of-order creation across channels
                try:
                    channel_queue.remove(group)
                except ValueError:
                    pass
            if group.key is not None and open_by_key.get(group.key) is group:
                del open_by_key[group.key]
            jframe = self._finalize(group)
            heapq.heappush(
                reorder, (jframe.timestamp_us, stats.jframes, jframe)
            )
        if open_order:
            return open_order[0].first_universal + window
        return _INF

    def _finalize(self, group: _Group) -> JFrame:
        unifier = self.unifier
        stats = self.stats
        # Timing (median, dispersion, resync) uses only FCS-good instances:
        # corrupt and PHY-error attachments identify *which* radios saw the
        # event but their timestamps are not synchronization-grade.
        kind_valid = RecordKind.VALID
        instances = group.instances
        timing_instances = [
            inst for inst in instances if inst.record.kind is kind_valid
        ] or instances
        n_timing = len(timing_instances)
        if n_timing == 1:
            timestamp = timing_instances[0].universal_us
            dispersion = 0.0
        else:
            times = sorted(inst.universal_us for inst in timing_instances)
            mid = n_timing // 2
            if unifier.use_median_timestamp:
                if n_timing % 2:
                    timestamp = times[mid]
                else:
                    timestamp = 0.5 * (times[mid - 1] + times[mid])
            else:
                timestamp = sum(times) / n_timing
            dispersion = times[-1] - times[0]

        rep = group.rep_record
        if rep is not None:
            kind = JFrameKind.VALID
            frame = group.rep_frame
            frame_len, fcs, rate = rep.frame_len, rep.fcs, rep.rate_mbps
            duration = rep.duration_us
        else:
            frame = None
            any_record = instances[0].record
            if any(
                inst.record.kind is RecordKind.CORRUPT for inst in instances
            ):
                kind = JFrameKind.CORRUPT
            else:
                kind = JFrameKind.PHY_ERROR
            frame_len, fcs, rate = (
                any_record.frame_len,
                any_record.fcs,
                any_record.rate_mbps,
            )
            duration = any_record.duration_us

        # Resynchronize contributing clocks — unique frames only, gated on
        # the dispersion threshold (Section 4.2's accuracy/overhead trade).
        rep_frame = group.rep_frame
        if (
            rep is not None
            and rep_frame is not None
            and n_timing >= 2
            and dispersion >= unifier.resync_threshold_us
            and rep_frame.ftype.carries_sequence
            and not rep_frame.retry
        ):
            tracks = self.tracks
            for inst in timing_instances:
                track = tracks.get(inst.radio_id)
                if track is not None:
                    track.resync(inst.local_us, timestamp)
                    stats.resyncs += 1

        stats.jframes += 1
        stats.instances_unified += len(instances)
        if kind is JFrameKind.VALID:
            stats.valid_jframes += 1
        elif kind is JFrameKind.CORRUPT:
            stats.corrupt_jframes += 1
        else:
            stats.phy_error_jframes += 1

        return JFrame(
            timestamp_us=int(round(timestamp)),
            kind=kind,
            channel=group.channel,
            instances=instances,
            frame=frame,
            frame_len=frame_len,
            fcs=fcs,
            rate_mbps=rate,
            duration_us=duration,
            dispersion_us=float(dispersion),
            transmitter=group.transmitter
            if group.transmitter is not None
            else (frame.transmitter if frame is not None else None),
        )


class LiveMergeShard(_MergeEngine):
    """A checkpointable, record-at-a-time variant of the shard merge.

    The batch :class:`_MergeEngine` is a generator pulling records
    through trace cursors — its continuation state (the suspended frame,
    the heap's cursor references) cannot be serialized.  This subclass
    holds the *same* merge state in plain attributes and is driven one
    record at a time from outside, so the whole object pickles and a
    restored instance continues bit-identically.

    The drive protocol is a **blocking-successor discipline**: after the
    engine pops a radio's record off the heap, it demands that radio's
    next record (or its end-of-stream) before anything else happens.
    This makes the processing order a pure function of the per-radio
    record sequences — never of arrival timing — which is what lets a
    daemon killed and restored mid-trace replay into the identical
    state, and what keeps live output jframe-for-jframe identical to a
    batch run over the same records:

    * :meth:`needed` — the radio id whose next record must be supplied,
      or ``None`` when the engine can :meth:`step`;
    * :meth:`supply` — hand over that radio's next record (``None`` at
      end of stream);
    * :meth:`step` — process exactly one heap pop; returns any jframes
      whose emission watermark passed;
    * :meth:`finish` — finalize remaining open groups, drain the rest.

    Heap entries carry only scalars (estimate, push counter, radio id) —
    records and track generations ride in side tables keyed by radio —
    so a pickled engine rebinds nothing on restore.  The push counter
    replicates the batch engine's tie-break exactly: under the
    blocking-successor discipline pushes happen in the same order as the
    batch hot loop's (initial records in trace order, then each popped
    radio's successor immediately after its pop).
    """

    def __init__(
        self,
        unifier: "Unifier",
        radio_ids: Sequence[int],
        offsets_us: Dict[int, float],
    ) -> None:
        # Deliberately does NOT call _MergeEngine.__init__ (no traces to
        # cursor); only the open-group/finalization state is shared.
        self.unifier = unifier
        self.stats = UnifyStats()
        self.tracks = {}
        self.radio_ids = list(radio_ids)
        for radio_id in self.radio_ids:
            self.tracks[radio_id] = ClockTrack(
                radio_id=radio_id,
                offset_us=offsets_us[radio_id],
                alpha=unifier.skew_alpha,
                compensate_skew=unifier.compensate_skew,
            )
        self.open_by_key = {}
        self.open_by_channel = defaultdict(deque)
        self.open_order = deque()
        self.watermark_us = -_INF
        self._emit_lag = 2.0 * unifier.search_window_us + max(
            unifier.corrupt_attach_us, unifier.phy_attach_us
        )
        #: (est universal, push counter, radio id); records/generations
        #: ride in the side tables below so entries stay picklable.
        self._heap: List[Tuple[float, int, int]] = []
        self._pending: Dict[int, TraceRecord] = {}
        self._pending_gen: Dict[int, int] = {}
        self._counter = 0
        #: Radios awaiting their first record, in trace order.
        self._to_prime: deque = deque(self.radio_ids)
        #: Radio whose successor must be supplied before the next step.
        self._await: Optional[int] = None
        #: Popped-but-unprocessed record (est, radio, record, generation).
        self._current: Optional[Tuple[float, int, TraceRecord, int]] = None
        self._done: Dict[int, bool] = {}
        self._reorder: List[Tuple[int, int, JFrame]] = []
        self._oldest_deadline = _INF
        self._finished = False

    # --- drive protocol ----------------------------------------------------

    def needed(self) -> Optional[int]:
        """The radio whose next record is required, or None to step."""
        if self._to_prime:
            return self._to_prime[0]
        return self._await

    def supply(self, radio_id: int, record: Optional[TraceRecord]) -> None:
        """Provide ``radio_id``'s next record; ``None`` ends its stream."""
        expected = self.needed()
        if radio_id != expected:
            raise ValueError(
                f"supply order violation: engine needs radio {expected}, "
                f"got {radio_id}"
            )
        if self._to_prime:
            self._to_prime.popleft()
        else:
            self._await = None
        if record is None:
            self._done[radio_id] = True
            return
        self.stats.records_in += 1
        track = self.tracks[radio_id]
        heapq.heappush(
            self._heap,
            (track.universal_us(record.timestamp_us), self._counter, radio_id),
        )
        self._counter += 1
        self._pending[radio_id] = record
        self._pending_gen[radio_id] = track.generation

    @property
    def exhausted(self) -> bool:
        """True when every supplied stream has ended and drained."""
        return (
            not self._heap
            and self._current is None
            and not self._to_prime
            and self._await is None
        )

    def step(self) -> List[JFrame]:
        """Advance by one heap pop; returns newly emittable jframes.

        A step either pops the earliest pending record (and then demands
        its radio's successor — call :meth:`supply` before stepping
        again) or, once the successor is in, processes the popped record
        through grouping/finalization.  Mirrors the batch hot loop's
        sequencing exactly: the successor's heap estimate is computed
        *before* the popped record can trigger resynchronization.
        """
        if self.needed() is not None:
            raise RuntimeError(
                f"radio {self.needed()} must be supplied before stepping"
            )
        if self._current is None:
            if not self._heap:
                return []
            est, _, radio_id = heapq.heappop(self._heap)
            record = self._pending.pop(radio_id)
            gen = self._pending_gen.pop(radio_id)
            self._current = (est, radio_id, record, gen)
            if not self._done.get(radio_id):
                self._await = radio_id
                return []
            # Stream already ended: nothing to demand, process now.
        est, radio_id, record, gen = self._current
        self._current = None
        return self._process(est, radio_id, record, gen)

    def finish(self) -> List[JFrame]:
        """Finalize every open group and drain the reorder heap."""
        if not self.exhausted:
            raise RuntimeError("finish() before the shard drained")
        self._finished = True
        self._finalize_stale(_INF, self._reorder)
        out: List[JFrame] = []
        while self._reorder:
            out.append(heapq.heappop(self._reorder)[2])
        self.watermark_us = _INF
        return out

    # --- one record through grouping (batch hot-loop semantics) ------------

    def _process(
        self, est: float, radio_id: int, record: TraceRecord, gen: int
    ) -> List[JFrame]:
        unifier = self.unifier
        track = self.tracks[radio_id]
        if gen == track.generation:
            universal = est
        else:
            universal = track.universal_us(record.timestamp_us)

        kind = record.kind
        frame = parse_record_frame(record) if kind is RecordKind.VALID else None
        instance = Instance(
            radio_id=radio_id,
            local_us=record.timestamp_us,
            universal_us=universal,
            record=record,
            frame=frame,
        )

        emitted: List[JFrame] = []
        if universal > self._oldest_deadline:
            self._oldest_deadline = self._finalize_stale(
                universal, self._reorder
            )
            bound = universal - self._emit_lag
            if bound > self.watermark_us:
                self.watermark_us = bound
            reorder = self._reorder
            while reorder and reorder[0][0] <= bound:
                emitted.append(heapq.heappop(reorder)[2])

        channel = record.channel
        if kind is RecordKind.VALID:
            key = (channel, record.frame_len, record.fcs, record.snap)
            group = self.open_by_key.get(key)
            if (
                group is not None
                and radio_id not in group.radios
                and universal - group.first_universal <= unifier.instance_gap_us
            ):
                group.instances.append(instance)
                group.radios.add(radio_id)
                return emitted
            transmitter = None
            if frame is not None:
                transmitter = frame.transmitter or frame.addr1
            upgrade = self._find_attachable(
                instance, self.open_by_channel[channel],
                unifier.corrupt_attach_us, need_headless=True,
            )
            if upgrade is not None:
                upgrade.add(instance)
                upgrade.key = key
                upgrade.rep_record = record
                upgrade.rep_frame = frame
                upgrade.transmitter = transmitter
                self.open_by_key[key] = upgrade
                return emitted
            group = _Group(instance, channel, key, record, transmitter)
            group.rep_frame = frame
            self.open_by_key[key] = group
        elif kind is RecordKind.CORRUPT:
            transmitter = transmitter_from_corrupt_bytes(record.snap)
            existing = self._find_attachable(
                instance, self.open_by_channel[channel],
                unifier.corrupt_attach_us, transmitter=transmitter,
            )
            if existing is not None:
                existing.instances.append(instance)
                existing.radios.add(radio_id)
                return emitted
            group = _Group(instance, channel, None, None, transmitter)
        else:  # PHY_ERROR
            best = self._find_attachable(
                instance, self.open_by_channel[channel], unifier.phy_attach_us
            )
            if best is not None:
                best.instances.append(instance)
                best.radios.add(radio_id)
                return emitted
            group = _Group(instance, channel, None, None, None)

        self.open_by_channel[channel].append(group)
        self.open_order.append(group)
        # Value (not identity) comparison: a pickle round trip rebuilds
        # the float, and ``is _INF`` would silently stop re-arming the
        # staleness deadline on a restored engine.
        if self._oldest_deadline == _INF:
            self._oldest_deadline = (
                group.first_universal + unifier.search_window_us
            )
        return emitted


class UnifyStream:
    """A lazy unification in progress: iterate to drain the jframes.

    ``stats`` and ``tracks`` aggregate across shards; they are complete
    once the stream is exhausted (reading them mid-stream gives the
    progress so far, which is exactly what a live monitor wants).
    """

    def __init__(
        self,
        iterator: Iterator[JFrame],
        engines: Sequence[_MergeEngine],
        track_order: Sequence[int] = (),
    ) -> None:
        self._iterator = iterator
        self._engines = list(engines)
        self._track_order = list(track_order)

    def __iter__(self) -> Iterator[JFrame]:
        return self._iterator

    @property
    def stats(self) -> UnifyStats:
        merged = UnifyStats()
        for engine in self._engines:
            merged.merge(engine.stats)
        return merged

    @property
    def tracks(self) -> Dict[int, ClockTrack]:
        combined: Dict[int, ClockTrack] = {}
        for engine in self._engines:
            combined.update(engine.tracks)
        if self._track_order:
            return {
                rid: combined[rid]
                for rid in self._track_order
                if rid in combined
            }
        return combined

    @property
    def watermark_us(self) -> float:
        """Global emission bound: min over the shards' watermarks.

        Every jframe with ``timestamp_us`` at or below this has been
        yielded by the merged stream; ``-inf`` before the first shard
        drain, ``inf`` once the stream is exhausted.
        """
        if not self._engines:
            return _INF
        return min(engine.watermark_us for engine in self._engines)


def merge_shard_streams(
    streams: Sequence[Iterator[JFrame]],
) -> Iterator[JFrame]:
    """K-way merge per-shard jframe streams into one global timeline.

    Shard streams are each (timestamp, finalization)-ordered; ``heapq.merge``
    breaks timestamp ties by stream position, so the interleaving is
    deterministic given the (sorted-by-channel) shard order.
    """
    if len(streams) == 1:
        return iter(streams[0])
    return heapq.merge(*streams, key=_timestamp_key)


def _timestamp_key(jframe: JFrame) -> int:
    return jframe.timestamp_us


class Unifier:
    """Single-pass trace merger (batch and streaming APIs)."""

    def __init__(
        self,
        search_window_us: int = DEFAULT_SEARCH_WINDOW_US,
        resync_threshold_us: float = DEFAULT_RESYNC_THRESHOLD_US,
        skew_alpha: float = 0.2,
        compensate_skew: bool = True,
        corrupt_attach_us: float = DEFAULT_CORRUPT_ATTACH_US,
        phy_attach_us: float = DEFAULT_PHY_ATTACH_US,
        use_median_timestamp: bool = True,
        instance_gap_us: Optional[float] = None,
    ) -> None:
        if search_window_us <= 0:
            raise ValueError("search window must be positive")
        self.search_window_us = search_window_us
        self.resync_threshold_us = resync_threshold_us
        self.skew_alpha = skew_alpha
        self.compensate_skew = compensate_skew
        self.corrupt_attach_us = corrupt_attach_us
        self.phy_attach_us = phy_attach_us
        self.use_median_timestamp = use_median_timestamp
        # Instances of one transmission cluster within clock error; the
        # paper pops candidates only "until the timestamp of the next
        # instance differs by a significant amount".  Joining a group
        # therefore demands temporal proximity much tighter than the search
        # window — otherwise content-identical frames (ACKs to one station,
        # milliseconds apart) merge across distinct transmissions.  Scaling
        # with the window reproduces the paper's warning that overly large
        # windows become "dangerous".
        self.instance_gap_us = (
            float(instance_gap_us)
            if instance_gap_us is not None
            else max(50.0, search_window_us / 50.0)
        )

    # --- public API --------------------------------------------------------

    def stream_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnifyStream:
        """Begin a lazy unification over channel shards.

        Returns a :class:`UnifyStream`: iterate it for globally
        time-ordered jframes; read ``.stats`` / ``.tracks`` when done.
        """
        shards = partition_traces(traces)
        engines = [
            _MergeEngine(self, shard, bootstrap) for shard in shards
        ]
        merged = merge_shard_streams([engine.run() for engine in engines])
        return UnifyStream(
            merged, engines, track_order=[t.radio_id for t in traces]
        )

    def iter_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> Iterator[JFrame]:
        """Generator of globally time-ordered jframes (streaming API)."""
        return iter(self.stream_unify(traces, bootstrap))

    def unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnificationResult:
        """Merge all traces into a time-ordered list of jframes (batch)."""
        stream = self.stream_unify(traces, bootstrap)
        jframes = list(stream)
        # The stream is ordered by construction; the sort is a stable no-op
        # safety net that keeps the documented invariant unconditional.
        jframes.sort(key=_timestamp_key)
        return UnificationResult(
            jframes=jframes, tracks=stream.tracks, stats=stream.stats
        )
