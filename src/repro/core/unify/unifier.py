"""Frame unification with continual resynchronization (Section 4.2).

The unifier consumes all radio traces through "a single priority queue
sorted by time with the earliest instance from each trace", groups
instances into jframes by content within a search window, timestamps each
jframe with "the median instance timestamp", and uses every unified unique
frame to resynchronize the contributing radios' clocks — gated on the
group dispersion threshold, with EWMA skew/drift compensation applied
proactively to every subsequent timestamp.

Grouping is implemented with an open-group index (content key -> group)
instead of literal pop-and-push-back, which gives identical grouping
decisions in O(n log n) — each record is pushed and popped exactly once —
satisfying the paper's requirement that merging "execute faster than
real-time ... in a single pass over the data".
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...dot11.address import MacAddress
from ...dot11.serialize import transmitter_from_corrupt_bytes
from ...jtrace.io import RadioTrace
from ...jtrace.records import RecordKind, TraceRecord
from ..sync.bootstrap import BootstrapResult
from ..sync.refs import ReferenceKey, content_key, parse_record_frame
from ..sync.skew import ClockTrack
from .jframe import Instance, JFrame, JFrameKind

#: Paper defaults: 10 ms search window, 10 us resync threshold.
DEFAULT_SEARCH_WINDOW_US = 10_000
DEFAULT_RESYNC_THRESHOLD_US = 10.0

#: Attachment windows for content-less instances (corrupt/PHY-error).
DEFAULT_CORRUPT_ATTACH_US = 120.0
DEFAULT_PHY_ATTACH_US = 60.0


@dataclass
class UnifyStats:
    """Counters describing one unification run (Table 1 inputs)."""

    records_in: int = 0
    records_skipped_unsynchronized: int = 0
    jframes: int = 0
    valid_jframes: int = 0
    corrupt_jframes: int = 0
    phy_error_jframes: int = 0
    instances_unified: int = 0
    resyncs: int = 0

    @property
    def events_per_jframe(self) -> float:
        if self.jframes == 0:
            return 0.0
        return self.instances_unified / self.jframes


@dataclass
class UnificationResult:
    jframes: List[JFrame]
    tracks: Dict[int, ClockTrack]
    stats: UnifyStats

    def dispersions_us(self, min_instances: int = 2) -> List[float]:
        """Group dispersion samples (Figure 4's population)."""
        return [
            jf.dispersion_us
            for jf in self.jframes
            if jf.n_instances >= min_instances
        ]


class _Group:
    """An open (not yet finalized) jframe under construction."""

    __slots__ = (
        "first_universal",
        "channel",
        "key",
        "instances",
        "rep_record",
        "rep_frame",
        "transmitter",
        "radios",
        "is_reference",
    )

    def __init__(
        self,
        instance: Instance,
        channel: int,
        key: Optional[ReferenceKey],
        rep_record: Optional[TraceRecord],
        transmitter: Optional[MacAddress],
    ) -> None:
        self.first_universal = instance.universal_us
        self.channel = channel
        self.key = key
        self.instances = [instance]
        self.rep_record = rep_record
        self.rep_frame = None
        self.transmitter = transmitter
        self.radios = {instance.radio_id}
        self.is_reference = False

    def add(self, instance: Instance) -> None:
        self.instances.append(instance)
        self.radios.add(instance.radio_id)


class Unifier:
    """Single-pass trace merger."""

    def __init__(
        self,
        search_window_us: int = DEFAULT_SEARCH_WINDOW_US,
        resync_threshold_us: float = DEFAULT_RESYNC_THRESHOLD_US,
        skew_alpha: float = 0.2,
        compensate_skew: bool = True,
        corrupt_attach_us: float = DEFAULT_CORRUPT_ATTACH_US,
        phy_attach_us: float = DEFAULT_PHY_ATTACH_US,
        use_median_timestamp: bool = True,
        instance_gap_us: Optional[float] = None,
    ) -> None:
        if search_window_us <= 0:
            raise ValueError("search window must be positive")
        self.search_window_us = search_window_us
        self.resync_threshold_us = resync_threshold_us
        self.skew_alpha = skew_alpha
        self.compensate_skew = compensate_skew
        self.corrupt_attach_us = corrupt_attach_us
        self.phy_attach_us = phy_attach_us
        self.use_median_timestamp = use_median_timestamp
        # Instances of one transmission cluster within clock error; the
        # paper pops candidates only "until the timestamp of the next
        # instance differs by a significant amount".  Joining a group
        # therefore demands temporal proximity much tighter than the search
        # window — otherwise content-identical frames (ACKs to one station,
        # milliseconds apart) merge across distinct transmissions.  Scaling
        # with the window reproduces the paper's warning that overly large
        # windows become "dangerous".
        self.instance_gap_us = (
            float(instance_gap_us)
            if instance_gap_us is not None
            else max(50.0, search_window_us / 50.0)
        )

    # --- public API --------------------------------------------------------

    def unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnificationResult:
        """Merge all traces into a time-ordered list of jframes."""
        stats = UnifyStats()
        tracks: Dict[int, ClockTrack] = {}
        streams: Dict[int, Iterator[TraceRecord]] = {}
        for trace in traces:
            stats.records_in += len(trace)
            offset = bootstrap.offsets_us.get(trace.radio_id)
            if offset is None:
                stats.records_skipped_unsynchronized += len(trace)
                continue
            tracks[trace.radio_id] = ClockTrack(
                radio_id=trace.radio_id,
                offset_us=offset,
                alpha=self.skew_alpha,
                compensate_skew=self.compensate_skew,
            )
            streams[trace.radio_id] = iter(trace.records)

        heap: List[Tuple[float, int, int, TraceRecord]] = []
        counter = itertools.count()

        def push_next(radio_id: int) -> None:
            record = next(streams[radio_id], None)
            if record is None:
                return
            est = tracks[radio_id].universal_us(record.timestamp_us)
            heapq.heappush(heap, (est, next(counter), radio_id, record))

        for radio_id in streams:
            push_next(radio_id)

        open_by_key: Dict[ReferenceKey, _Group] = {}
        open_by_channel: Dict[int, deque] = defaultdict(deque)
        open_order: deque = deque()
        jframes: List[JFrame] = []

        while heap:
            _, _, radio_id, record = heapq.heappop(heap)
            push_next(radio_id)
            track = tracks[radio_id]
            # Recompute with the current (possibly resynced) track state.
            universal = track.universal_us(record.timestamp_us)
            frame = (
                parse_record_frame(record)
                if record.kind is RecordKind.VALID
                else None
            )
            instance = Instance(
                radio_id=radio_id,
                local_us=record.timestamp_us,
                universal_us=universal,
                record=record,
                frame=frame,
            )
            self._finalize_stale(
                universal, open_by_key, open_by_channel, open_order,
                jframes, tracks, stats,
            )
            self._place(
                instance, record, open_by_key, open_by_channel, open_order
            )

        self._finalize_stale(
            float("inf"), open_by_key, open_by_channel, open_order,
            jframes, tracks, stats,
        )
        jframes.sort(key=lambda jf: jf.timestamp_us)
        return UnificationResult(jframes=jframes, tracks=tracks, stats=stats)

    # --- placement ------------------------------------------------------------

    def _place(
        self,
        instance: Instance,
        record: TraceRecord,
        open_by_key: Dict[ReferenceKey, _Group],
        open_by_channel: Dict[int, deque],
        open_order: deque,
    ) -> None:
        channel = record.channel
        if record.kind is RecordKind.VALID:
            transmitter = None
            if instance.frame is not None:
                # CTS-to-self carries the sender in RA; a plain receiver
                # cannot know which it is, so RA doubles as the hint.
                transmitter = instance.frame.transmitter or instance.frame.addr1
            # Content identity is per channel: the same bytes on two
            # channels are physically distinct transmissions.
            key = (channel,) + content_key(record)
            group = open_by_key.get(key)
            if group is not None and self._joinable(group, instance):
                group.add(instance)
                return
            # A valid capture may complete a group opened by a corrupt or
            # PHY-error observation of the same transmission.
            upgrade = self._find_attachable(
                instance, record, open_by_channel[channel],
                self.corrupt_attach_us, need_headless=True,
            )
            if upgrade is not None:
                upgrade.add(instance)
                upgrade.key = key
                upgrade.rep_record = record
                upgrade.rep_frame = instance.frame
                upgrade.transmitter = transmitter
                open_by_key[key] = upgrade
                return
            group = _Group(instance, channel, key, record, transmitter)
            group.rep_frame = instance.frame
            open_by_key[key] = group
            open_by_channel[channel].append(group)
            open_order.append(group)
        elif record.kind is RecordKind.CORRUPT:
            transmitter = transmitter_from_corrupt_bytes(record.snap)
            group = self._find_attachable(
                instance, record, open_by_channel[channel],
                self.corrupt_attach_us, transmitter=transmitter,
            )
            if group is not None:
                group.add(instance)
                return
            group = _Group(instance, channel, None, None, transmitter)
            open_by_channel[channel].append(group)
            open_order.append(group)
        else:  # PHY_ERROR
            group = self._find_attachable(
                instance, record, open_by_channel[channel],
                self.phy_attach_us,
            )
            if group is not None:
                group.add(instance)
                return
            group = _Group(instance, channel, None, None, None)
            open_by_channel[channel].append(group)
            open_order.append(group)

    def _joinable(self, group: _Group, instance: Instance) -> bool:
        if instance.radio_id in group.radios:
            return False
        return (
            instance.universal_us - group.first_universal
            <= self.instance_gap_us
        )

    def _find_attachable(
        self,
        instance: Instance,
        record: TraceRecord,
        channel_groups: deque,
        window_us: float,
        transmitter: Optional[MacAddress] = None,
        need_headless: bool = False,
    ) -> Optional[_Group]:
        """Scan open groups on this channel for a time/transmitter match.

        Corrupt captures "simply match on the transmitter's address field"
        when it is readable; address-less damage falls back to temporal
        proximity.  ``need_headless`` restricts the search to groups without
        a valid representative (used when a valid capture adopts orphans).
        """
        best: Optional[_Group] = None
        best_gap = window_us
        for group in reversed(channel_groups):
            gap = instance.universal_us - group.first_universal
            if gap > window_us:
                break  # deque is in creation order; older ones only further
            if abs(gap) > window_us:
                continue
            gap = abs(gap)
            if instance.radio_id in group.radios:
                continue
            if need_headless and group.rep_record is not None:
                continue
            if transmitter is not None and group.transmitter is not None:
                if transmitter != group.transmitter:
                    continue
            if gap <= best_gap:
                best = group
                best_gap = gap
        return best

    # --- finalization ------------------------------------------------------------

    def _finalize_stale(
        self,
        now_universal: float,
        open_by_key: Dict[ReferenceKey, _Group],
        open_by_channel: Dict[int, deque],
        open_order: deque,
        jframes: List[JFrame],
        tracks: Dict[int, ClockTrack],
        stats: UnifyStats,
    ) -> None:
        while open_order and (
            now_universal - open_order[0].first_universal > self.search_window_us
        ):
            group = open_order.popleft()
            channel_queue = open_by_channel[group.channel]
            if channel_queue and channel_queue[0] is group:
                channel_queue.popleft()
            else:  # rare: out-of-order creation across channels
                try:
                    channel_queue.remove(group)
                except ValueError:
                    pass
            if group.key is not None and open_by_key.get(group.key) is group:
                del open_by_key[group.key]
            jframes.append(self._finalize(group, tracks, stats))

    def _finalize(
        self,
        group: _Group,
        tracks: Dict[int, ClockTrack],
        stats: UnifyStats,
    ) -> JFrame:
        # Timing (median, dispersion, resync) uses only FCS-good instances:
        # corrupt and PHY-error attachments identify *which* radios saw the
        # event but their timestamps are not synchronization-grade.
        timing_instances = [
            inst
            for inst in group.instances
            if inst.record.kind is RecordKind.VALID
        ] or group.instances
        times = sorted(inst.universal_us for inst in timing_instances)
        if self.use_median_timestamp:
            mid = len(times) // 2
            if len(times) % 2:
                timestamp = times[mid]
            else:
                timestamp = 0.5 * (times[mid - 1] + times[mid])
        else:
            timestamp = sum(times) / len(times)
        dispersion = times[-1] - times[0]

        rep = group.rep_record
        if rep is not None:
            kind = JFrameKind.VALID
            frame = group.rep_frame
            frame_len, fcs, rate = rep.frame_len, rep.fcs, rep.rate_mbps
            duration = rep.duration_us
        else:
            frame = None
            any_record = group.instances[0].record
            if any(
                inst.record.kind is RecordKind.CORRUPT
                for inst in group.instances
            ):
                kind = JFrameKind.CORRUPT
            else:
                kind = JFrameKind.PHY_ERROR
            frame_len, fcs, rate = (
                any_record.frame_len,
                any_record.fcs,
                any_record.rate_mbps,
            )
            duration = any_record.duration_us

        # Resynchronize contributing clocks — unique frames only, gated on
        # the dispersion threshold (Section 4.2's accuracy/overhead trade).
        rep_frame = group.rep_frame
        rep_is_unique = (
            rep_frame is not None
            and rep_frame.ftype.carries_sequence
            and not rep_frame.retry
        )
        if (
            rep is not None
            and rep_is_unique
            and len(timing_instances) >= 2
            and dispersion >= self.resync_threshold_us
        ):
            for inst in timing_instances:
                track = tracks.get(inst.radio_id)
                if track is not None:
                    track.resync(inst.local_us, timestamp)
                    stats.resyncs += 1

        stats.jframes += 1
        stats.instances_unified += len(group.instances)
        if kind is JFrameKind.VALID:
            stats.valid_jframes += 1
        elif kind is JFrameKind.CORRUPT:
            stats.corrupt_jframes += 1
        else:
            stats.phy_error_jframes += 1

        return JFrame(
            timestamp_us=int(round(timestamp)),
            kind=kind,
            channel=group.channel,
            instances=group.instances,
            frame=frame,
            frame_len=frame_len,
            fcs=fcs,
            rate_mbps=rate,
            duration_us=duration,
            dispersion_us=float(dispersion),
            transmitter=group.transmitter
            if group.transmitter is not None
            else (frame.transmitter if frame is not None else None),
        )
