"""Sharded unification: per-channel parallel merge (Section 4's scaling).

"Trace merging should execute faster than real-time and scale well as a
function of the number of radios."  Channel shards never interact — content
keys, open-group queues and clock tracks are all channel-local — so the
merge parallelizes perfectly across them: each shard is merged by its own
:class:`~repro.core.unify.unifier._MergeEngine` (serially, or on a
``concurrent.futures`` process pool with pickled record batches) and the
per-shard jframe streams are k-way merged by timestamp.

Every execution mode runs the same engine over the same deterministic
shard order, so serial, streaming and process-pool unification produce
jframe-for-jframe identical output to :meth:`Unifier.unify`
(``tests/test_streaming_equivalence.py``).

Both modes expose the same :class:`~repro.core.unify.unifier.UnifyStream`
contract the pipeline's analysis passes are fed from: serial mode is
fully lazy, and pool mode — which must materialize per-shard jframe
lists in the workers — releases each shard entry as the k-way merge
drains it, so a ``materialize=False`` pipeline run over a pool-backed
unifier does not hold the merged timeline twice.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...jtrace.io import RadioTrace
from ..faults import RetryPolicy, ShardHealth, map_shards_with_recovery
from ..sync.bootstrap import BootstrapResult
from ..sync.sharded import resolve_pool_workers
from ..sync.skew import ClockTrack
from .jframe import JFrame
from .unifier import (
    UnificationResult,
    Unifier,
    UnifyStats,
    UnifyStream,
    _MergeEngine,
    _timestamp_key,
    merge_shard_streams,
    partition_traces,
)

#: Result of unifying one shard in a worker process.
_ShardResult = Tuple[List[JFrame], Dict[int, ClockTrack], UnifyStats]


def _unify_shard(
    unifier: Unifier,
    traces: Sequence[RadioTrace],
    bootstrap: BootstrapResult,
) -> _ShardResult:
    """Worker entry point: merge one shard to completion (picklable I/O)."""
    engine = _MergeEngine(unifier, traces, bootstrap)
    jframes = list(engine.run())
    return jframes, engine.tracks, engine.stats


def _drain_shard(jframes: List[JFrame]) -> Iterator[JFrame]:
    """Yield a shard's jframes, releasing each list slot as it is merged.

    Pool mode receives whole shard lists back from the workers; feeding
    the k-way merge through this generator means consumers that do not
    retain jframes (``materialize=False`` pipeline runs with streaming
    passes) only ever hold the unconsumed suffix.
    """
    for index in range(len(jframes)):
        jframe = jframes[index]
        jframes[index] = None
        yield jframe


class ShardedUnifier:
    """Channel-sharded front-end over :class:`Unifier`.

    ``max_workers`` selects the execution mode:

    * ``None`` (default) — auto: a process pool when the machine has more
      than one CPU *and* there is more than one shard, else serial;
    * ``0`` or ``1`` — always serial, in-process;
    * ``n > 1`` — a process pool of at most ``n`` workers.

    Serial mode streams shards lazily (constant memory beyond the open
    window); pool mode materializes per-shard jframe lists in the workers
    and k-way merges them on receipt.
    """

    def __init__(
        self,
        unifier: Optional[Unifier] = None,
        max_workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        shard_timeout_s: Optional[float] = None,
    ) -> None:
        self.unifier = unifier or Unifier()
        self.max_workers = max_workers
        if retry_policy is None:
            retry_policy = RetryPolicy(shard_timeout_s=shard_timeout_s)
        elif shard_timeout_s is not None:
            retry_policy = RetryPolicy(
                max_retries=retry_policy.max_retries,
                backoff_base_s=retry_policy.backoff_base_s,
                backoff_multiplier=retry_policy.backoff_multiplier,
                backoff_cap_s=retry_policy.backoff_cap_s,
                shard_timeout_s=shard_timeout_s,
            )
        self.retry_policy = retry_policy
        #: Pool-fault ledger for the most recent unification call.
        self.health = ShardHealth()
        #: The execution mode the most recent call actually used —
        #: ``"sharded-serial"`` or ``"sharded-pool<n>"``.  Benchmarks
        #: record this instead of guessing from ``max_workers`` (an
        #: explicit pool request can still resolve serial on a 1-core
        #: box or a single-shard input).
        self.last_engine = "sharded-serial"

    # --- internals ---------------------------------------------------------

    def _pool_budget(self) -> int:
        """Workers available before shard count is known (<=1 means serial)."""
        if self.max_workers is None:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def _worker_count(self, n_shards: int) -> int:
        # One policy for both sharded stages: bootstrap collection and
        # unification resolve their serial/pool split identically.
        return resolve_pool_workers(self.max_workers, n_shards)

    def _run_pool(
        self,
        shards: List[List[RadioTrace]],
        bootstrap: BootstrapResult,
        workers: int,
    ) -> List[_ShardResult]:
        # Collect in shard order — the merge interleaving must not depend
        # on completion order.  Worker death / missed deadlines retry and
        # degrade to serial in-process merges per ``retry_policy``; the
        # engine is deterministic, so a shard merged after a crash (or
        # serially) is jframe-for-jframe what the first attempt would
        # have produced.
        return map_shards_with_recovery(
            _unify_shard,
            [(self.unifier, shard, bootstrap) for shard in shards],
            max_workers=workers,
            policy=self.retry_policy,
            health=self.health,
            label="unify",
        )

    # --- public API --------------------------------------------------------

    def stream_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnifyStream:
        """A :class:`UnifyStream` over the sharded merge.

        Serial mode is fully lazy; pool mode dispatches the shards eagerly
        (the workers run to completion) and streams the merged result.
        """
        self.health = ShardHealth()
        self.last_engine = "sharded-serial"
        if self._pool_budget() <= 1:
            # Serial mode is exactly the Unifier's own streaming path
            # (which partitions internally — no duplicate shard scan).
            return self.unifier.stream_unify(traces, bootstrap)
        shards = partition_traces(traces)
        workers = self._worker_count(len(shards))
        if workers <= 1:  # a single shard: nothing to parallelize
            return self.unifier.stream_unify(traces, bootstrap)
        self.last_engine = f"sharded-pool{workers}"
        self.health.pool_workers = workers
        results = self._run_pool(shards, bootstrap, workers)
        merged = merge_shard_streams(
            [_drain_shard(jframes) for jframes, _, _ in results]
        )
        return _CompletedStream(
            merged,
            [(tracks, stats) for _, tracks, stats in results],
            [t.radio_id for t in traces],
        )

    def iter_unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> Iterator[JFrame]:
        """Generator of globally time-ordered jframes."""
        return iter(self.stream_unify(traces, bootstrap))

    def unify(
        self, traces: Sequence[RadioTrace], bootstrap: BootstrapResult
    ) -> UnificationResult:
        """Batch API: identical result shape (and content) to ``Unifier``."""
        stream = self.stream_unify(traces, bootstrap)
        jframes = list(stream)
        jframes.sort(key=_timestamp_key)
        return UnificationResult(
            jframes=jframes, tracks=stream.tracks, stats=stream.stats
        )


class _CompletedStream(UnifyStream):
    """UnifyStream over already-computed shard results (pool mode).

    Holds only the per-shard (tracks, stats) metadata; the jframe lists
    themselves are owned by the drain generators feeding the merge.
    """

    def __init__(
        self,
        iterator: Iterator[JFrame],
        shard_meta: Sequence[Tuple[Dict[int, ClockTrack], UnifyStats]],
        track_order: Sequence[int],
    ) -> None:
        super().__init__(iterator, engines=(), track_order=track_order)
        self._shard_meta = list(shard_meta)

    @property
    def stats(self) -> UnifyStats:
        merged = UnifyStats()
        for _, stats in self._shard_meta:
            merged.merge(stats)
        return merged

    @property
    def tracks(self) -> Dict[int, ClockTrack]:
        combined: Dict[int, ClockTrack] = {}
        for tracks, _ in self._shard_meta:
            combined.update(tracks)
        return {
            rid: combined[rid]
            for rid in self._track_order
            if rid in combined
        }
