"""Unification: merging all traces into a single jframe timeline."""

from .hierarchy import DEFAULT_FANOUT, MergeTree, ShardLeaf, ShardPlan
from .jframe import Instance, JFrame, JFrameKind
from .sharded import ShardedUnifier
from .unifier import (
    DEFAULT_RESYNC_THRESHOLD_US,
    DEFAULT_SEARCH_WINDOW_US,
    UnificationResult,
    Unifier,
    UnifyStats,
    UnifyStream,
    partition_traces,
    trace_locality,
)

__all__ = [
    "Instance",
    "JFrame",
    "JFrameKind",
    "DEFAULT_FANOUT",
    "DEFAULT_RESYNC_THRESHOLD_US",
    "DEFAULT_SEARCH_WINDOW_US",
    "MergeTree",
    "ShardLeaf",
    "ShardPlan",
    "ShardedUnifier",
    "UnificationResult",
    "Unifier",
    "UnifyStats",
    "UnifyStream",
    "partition_traces",
    "trace_locality",
]
