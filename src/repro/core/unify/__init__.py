"""Unification: merging all traces into a single jframe timeline."""

from .jframe import Instance, JFrame, JFrameKind
from .sharded import ShardedUnifier
from .unifier import (
    DEFAULT_RESYNC_THRESHOLD_US,
    DEFAULT_SEARCH_WINDOW_US,
    UnificationResult,
    Unifier,
    UnifyStats,
    UnifyStream,
    partition_traces,
)

__all__ = [
    "Instance",
    "JFrame",
    "JFrameKind",
    "DEFAULT_RESYNC_THRESHOLD_US",
    "DEFAULT_SEARCH_WINDOW_US",
    "ShardedUnifier",
    "UnificationResult",
    "Unifier",
    "UnifyStats",
    "UnifyStream",
    "partition_traces",
]
