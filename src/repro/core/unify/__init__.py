"""Unification: merging all traces into a single jframe timeline."""

from .jframe import Instance, JFrame, JFrameKind
from .unifier import (
    DEFAULT_RESYNC_THRESHOLD_US,
    DEFAULT_SEARCH_WINDOW_US,
    UnificationResult,
    Unifier,
    UnifyStats,
)

__all__ = [
    "Instance",
    "JFrame",
    "JFrameKind",
    "DEFAULT_RESYNC_THRESHOLD_US",
    "DEFAULT_SEARCH_WINDOW_US",
    "UnificationResult",
    "Unifier",
    "UnifyStats",
]
