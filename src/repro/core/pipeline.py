"""The full Jigsaw pipeline: traces in, multi-layer reconstruction out.

One call wires together everything Sections 4 and 5 describe::

    pipeline = JigsawPipeline()
    report = pipeline.run(radio_traces, clock_groups=groups)

``report`` then feeds the Section 6/7 analyses (coverage, interference,
protection mode, TCP loss) in :mod:`repro.core.analysis`.

Execution is *one-pass pipelined*: the unifier's jframe stream feeds the
attempt assembler incrementally, sealed attempts feed the exchange FSM,
and closed exchanges feed the flow collector — all four reconstruction
layers advance together over a single traversal of the merged timeline
instead of running as full-list barrier phases.  The report still carries
the complete per-layer lists (the Section 6/7 analyses consume them), but
no stage waits for an earlier stage to finish.

``unifier`` may be a plain :class:`Unifier` or a
:class:`~repro.core.unify.sharded.ShardedUnifier` — anything exposing
``stream_unify`` — so multi-core machines can parallelize the merge
without touching the pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..jtrace.io import RadioTrace
from .link.attempt import AttemptAssembler, AttemptStats, TransmissionAttempt
from .link.exchange import ExchangeAssembler, ExchangeStats, FrameExchange
from .sync.bootstrap import (
    BootstrapResult,
    bootstrap_synchronization,
)
from .sync.skew import ClockTrack
from .transport.flows import FlowCollector, TcpFlow
from .transport.inference import InferenceStats, TransportInference
from .unify.jframe import JFrame
from .unify.unifier import UnificationResult, Unifier


@dataclass
class JigsawReport:
    """Everything the pipeline reconstructed, plus per-stage statistics."""

    bootstrap: BootstrapResult
    unification: UnificationResult
    attempts: List[TransmissionAttempt]
    attempt_stats: AttemptStats
    exchanges: List[FrameExchange]
    exchange_stats: ExchangeStats
    flows: List[TcpFlow]
    transport_stats: InferenceStats
    elapsed_seconds: float

    @property
    def jframes(self) -> List[JFrame]:
        return self.unification.jframes

    @property
    def tracks(self) -> Dict[int, ClockTrack]:
        return self.unification.tracks

    def completed_flows(self) -> List[TcpFlow]:
        """Flows with a completed handshake (Section 7.4's population)."""
        return [flow for flow in self.flows if flow.handshake_complete]

    def summary(self) -> str:
        """A Table 1-style textual digest."""
        stats = self.unification.stats
        lines = [
            f"records in:            {stats.records_in:,}",
            f"jframes:               {stats.jframes:,}",
            f"events per jframe:     {stats.events_per_jframe:.2f}",
            f"valid jframes:         {stats.valid_jframes:,}",
            f"error jframes:         {stats.corrupt_jframes + stats.phy_error_jframes:,}",
            f"transmission attempts: {self.attempt_stats.attempts:,}",
            f"frame exchanges:       {self.exchange_stats.exchanges:,}",
            f"tcp flows:             {len(self.flows):,}",
            f"completed handshakes:  {self.transport_stats.handshakes_completed:,}",
            f"pipeline time:         {self.elapsed_seconds:.2f}s",
        ]
        return "\n".join(lines)


class JigsawPipeline:
    """traces -> bootstrap -> unify -> link -> transport."""

    def __init__(
        self,
        unifier: Optional[Unifier] = None,
        bootstrap_window_us: int = 1_000_000,
        auto_widen_bootstrap: bool = True,
    ) -> None:
        self.unifier = unifier or Unifier()
        self.bootstrap_window_us = bootstrap_window_us
        self.auto_widen_bootstrap = auto_widen_bootstrap

    def run(
        self,
        traces: Sequence[RadioTrace],
        clock_groups: Sequence[Sequence[int]] = (),
        bootstrap: Optional[BootstrapResult] = None,
    ) -> JigsawReport:
        """Run the full reconstruction.

        ``clock_groups`` is the infrastructure metadata (radios sharing a
        capture clock) used for cross-channel bridging; pass a precomputed
        ``bootstrap`` to skip that phase (ablations do).
        """
        started = time.perf_counter()
        # ``sorted_by_local_time`` returns the trace itself when records
        # are already ordered (the common case), so this no longer copies
        # every record list.
        ordered = [trace.sorted_by_local_time() for trace in traces]
        if bootstrap is None:
            bootstrap = bootstrap_synchronization(
                ordered,
                clock_groups=clock_groups,
                window_us=self.bootstrap_window_us,
                auto_widen=self.auto_widen_bootstrap,
            )

        # One pass: jframes stream out of the merge and straight through
        # attempt grouping, the exchange FSM and flow binning.
        stream = self.unifier.stream_unify(ordered, bootstrap)
        attempt_assembler = AttemptAssembler()
        exchange_assembler = ExchangeAssembler()
        flow_collector = FlowCollector()
        jframes: List[JFrame] = []
        attempts: List[TransmissionAttempt] = []
        exchanges: List[FrameExchange] = []

        def _advance(new_attempts: List[TransmissionAttempt]) -> None:
            for attempt in new_attempts:
                attempts.append(attempt)
                for exchange in exchange_assembler.feed(attempt):
                    exchanges.append(exchange)
                    flow_collector.feed(exchange)

        for jframe in stream:
            jframes.append(jframe)
            _advance(attempt_assembler.feed(jframe))
        _advance(attempt_assembler.finish())
        for exchange in exchange_assembler.finish():
            exchanges.append(exchange)
            flow_collector.feed(exchange)
        exchanges.sort(key=lambda e: e.start_us)

        unification = UnificationResult(
            jframes=jframes, tracks=stream.tracks, stats=stream.stats
        )
        flows = flow_collector.finish()
        transport = TransportInference()
        transport_stats = transport.run(flows)

        return JigsawReport(
            bootstrap=bootstrap,
            unification=unification,
            attempts=attempts,
            attempt_stats=attempt_assembler.stats,
            exchanges=exchanges,
            exchange_stats=exchange_assembler.stats,
            flows=flows,
            transport_stats=transport_stats,
            elapsed_seconds=time.perf_counter() - started,
        )
