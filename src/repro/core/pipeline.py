"""The full Jigsaw pipeline: traces in, multi-layer reconstruction out.

One call wires together everything Sections 4 and 5 describe::

    pipeline = JigsawPipeline()
    report = pipeline.run(radio_traces, clock_groups=groups)

``report`` then feeds the Section 6/7 analyses (coverage, interference,
protection mode, TCP loss) in :mod:`repro.core.analysis`.

Execution is *one-pass pipelined*: the unifier's jframe stream feeds the
attempt assembler incrementally, sealed attempts feed the exchange FSM,
and closed exchanges feed the flow collector — all four reconstruction
layers advance together over a single traversal of the merged timeline
instead of running as full-list barrier phases.

Analyses tap that same traversal through the **pass API**
(:mod:`repro.core.passes`)::

    from repro.core.analysis import ActivityPass, SummaryPass

    report = pipeline.run(
        traces,
        clock_groups=groups,
        passes=[ActivityPass(duration_us, bin_us), SummaryPass(duration_us)],
    )
    timeline = report.passes["activity"]

Each registered :class:`~repro.core.passes.PipelinePass` receives every
jframe/attempt/exchange/flow as the loop produces it and surrenders its
result into ``report.passes``.  Report materialization itself is just the
built-in :class:`~repro.core.passes.MaterializePass`; disable it with
``materialize=False`` (or use :meth:`JigsawPipeline.run_streaming`) to
run analyses in bounded memory over arbitrarily long traces — the report
then carries statistics, flows and pass results but empty per-layer
lists.

``unifier`` may be a plain :class:`Unifier` or a
:class:`~repro.core.unify.sharded.ShardedUnifier` — anything exposing
``stream_unify`` — so multi-core machines can parallelize the merge
without touching the pipeline (passes are fed from the merged stream in
the parent process either way).

The bootstrap prepass is likewise channel-sharded
(:class:`~repro.core.sync.sharded.ShardedBootstrap`, serial or pool via
``bootstrap_workers``) and fused with ingest: each trace's records are
consumed exactly once for the examination window — widening rounds feed
only the delta — and file-backed
:class:`~repro.jtrace.io.StreamingRadioTrace` inputs decode just that
prefix before unification replays the buffered read.  Every trace is
read once per run, not twice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..jtrace.io import RadioTrace, StreamingRadioTrace
from .faults import HealthReport, ShardHealth
from .link.attempt import AttemptAssembler, AttemptStats, TransmissionAttempt
from .link.exchange import ExchangeAssembler, ExchangeStats, FrameExchange
from .passes import (
    MaterializePass,
    PassContext,
    PipelinePass,
    SealedWindow,
    check_pass_names,
)
from .sync.bootstrap import BootstrapResult
from .sync.sharded import ShardedBootstrap
from .sync.skew import ClockTrack
from .transport.flows import FlowCollector, TcpFlow
from .transport.inference import InferenceStats, TransportInference
from .unify.jframe import JFrame
from .unify.unifier import UnificationResult, Unifier


@dataclass
class JigsawReport:
    """Everything the pipeline reconstructed, plus per-stage statistics.

    ``passes`` holds the result of every analysis pass registered on the
    run, keyed by pass name.  ``materialized`` records whether the
    per-layer lists were retained; a ``materialize=False`` report carries
    empty ``jframes``/``attempts``/``exchanges`` (flows — bounded by
    connection count, and required by transport inference — are always
    kept).
    """

    bootstrap: BootstrapResult
    unification: UnificationResult
    attempts: List[TransmissionAttempt]
    attempt_stats: AttemptStats
    exchanges: List[FrameExchange]
    exchange_stats: ExchangeStats
    flows: List[TcpFlow]
    transport_stats: InferenceStats
    elapsed_seconds: float
    passes: Dict[str, Any] = field(default_factory=dict)
    materialized: bool = True
    #: Run-level degradation ledger: ingest decode damage, quarantined
    #: radios, shard retries/serial fallbacks.  ``health.degraded`` is
    #: False exactly when the run saw pristine inputs and healthy workers.
    health: HealthReport = field(default_factory=HealthReport)

    @property
    def jframes(self) -> List[JFrame]:
        return self.unification.jframes

    @property
    def tracks(self) -> Dict[int, ClockTrack]:
        return self.unification.tracks

    def pass_result(self, name: str) -> Any:
        """The result of a registered analysis pass, by name."""
        try:
            return self.passes[name]
        except KeyError:
            raise KeyError(
                f"no pass named {name!r} ran on this report "
                f"(available: {sorted(self.passes)})"
            ) from None

    def completed_flows(self) -> List[TcpFlow]:
        """Flows with a completed handshake (Section 7.4's population)."""
        return [flow for flow in self.flows if flow.handshake_complete]

    def summary(self) -> str:
        """A Table 1-style textual digest."""
        stats = self.unification.stats
        lines = [
            f"records in:            {stats.records_in:,}",
            f"jframes:               {stats.jframes:,}",
            f"events per jframe:     {stats.events_per_jframe:.2f}",
            f"valid jframes:         {stats.valid_jframes:,}",
            f"error jframes:         {stats.corrupt_jframes + stats.phy_error_jframes:,}",
            f"transmission attempts: {self.attempt_stats.attempts:,}",
            f"frame exchanges:       {self.exchange_stats.exchanges:,}",
            f"tcp flows:             {len(self.flows):,}",
            f"completed handshakes:  {self.transport_stats.handshakes_completed:,}",
            f"pipeline time:         {self.elapsed_seconds:.2f}s",
        ]
        if self.health.degraded:
            lines.append(f"degraded:              {self.health.summary()}")
        return "\n".join(lines)


class ReconstructionDrive:
    """The downstream half of the one-pass loop, extracted and reusable.

    Feeds each unified jframe through attempt grouping, the exchange
    FSM, flow binning and every registered pass — exactly the traversal
    ``JigsawPipeline.run`` always performed inline.  Pulling it into an
    object serves two callers:

    * the batch pipeline drives it to exhaustion over a finite merge
      stream and then calls :meth:`finish_streams`;
    * the service daemon (:mod:`repro.service`) drives it incrementally
      forever, reads :attr:`watermark_us` to seal windowed pass output
      mid-stream, and pickles the whole drive — assemblers, collector,
      pass accumulators — into its periodic checkpoints (every piece of
      held state serializes, see the assemblers' ``__getstate__``).

    Hook delivery order is part of the cross-mode bit-identity contract
    and is unchanged: jframe hooks fire before the jframe's attempts,
    attempt hooks before the exchanges they close, exchange hooks in
    ``start_us`` order, flow hooks after transport inference.
    """

    def __init__(
        self,
        passes: Sequence[PipelinePass] = (),
        materialize: bool = True,
    ) -> None:
        check_pass_names(passes)
        self.passes: List[PipelinePass] = list(passes)
        self.materializer = MaterializePass() if materialize else None
        self._active: List[PipelinePass] = list(self.passes)
        if self.materializer is not None:
            self._active.append(self.materializer)
        self.attempt_assembler = AttemptAssembler()
        self.exchange_assembler = ExchangeAssembler()
        self.flow_collector = FlowCollector()
        self.transport_stats: Optional[InferenceStats] = None

    @property
    def watermark_us(self) -> float:
        """Conservative downstream watermark (the exchange bound).

        Every jframe, attempt and exchange at or before this timestamp
        has been delivered to every hook, so windowed pass output up to
        here is final.
        """
        return self.exchange_assembler.watermark_us

    def feed(self, jframe: JFrame) -> None:
        """Push one merged jframe through every downstream layer."""
        for p in self._active:
            p.on_jframe(jframe)
        self._advance(self.attempt_assembler.feed(jframe))

    def _advance(self, new_attempts: List[TransmissionAttempt]) -> None:
        for attempt in new_attempts:
            for p in self._active:
                p.on_attempt(attempt)
            # The exchange assembler's reorder buffer emits in
            # start_us order, so no end-of-run sort barrier is needed.
            for exchange in self.exchange_assembler.feed(attempt):
                for p in self._active:
                    p.on_exchange(exchange)
                self.flow_collector.feed(exchange)

    def seal_ready(self) -> List[SealedWindow]:
        """Collect freshly sealed windows from every registered pass."""
        watermark = self.watermark_us
        sealed: List[SealedWindow] = []
        for p in self.passes:
            sealed.extend(p.seal_ready(watermark))
        return sealed

    def finish_streams(self, trim_exchange_refs: bool = False) -> List[TcpFlow]:
        """Flush the assemblers, run transport inference, fire flow hooks.

        Returns the reconstructed flows; per-layer statistics stay
        readable on the assemblers and :attr:`transport_stats`.
        """
        self._advance(self.attempt_assembler.finish())
        for exchange in self.exchange_assembler.finish():
            for p in self._active:
                p.on_exchange(exchange)
            self.flow_collector.feed(exchange)
        flows = self.flow_collector.finish()
        transport = TransportInference()
        self.transport_stats = transport.run(flows)
        for flow in flows:
            for p in self._active:
                p.on_flow(flow)
        if trim_exchange_refs:
            # Inference and the on_flow hooks have consumed the exchange
            # back-references; severing them lets the data jframes go the
            # way of the rest of the unmaterialized timeline.
            for flow in flows:
                flow.trim_exchange_refs()
        return flows


class JigsawPipeline:
    """traces -> bootstrap -> unify -> link -> transport (+ passes)."""

    def __init__(
        self,
        unifier: Optional[Unifier] = None,
        bootstrap_window_us: int = 1_000_000,
        auto_widen_bootstrap: bool = True,
        bootstrap_workers: Optional[int] = 1,
    ) -> None:
        self.unifier = unifier or Unifier()
        self.bootstrap_window_us = bootstrap_window_us
        self.auto_widen_bootstrap = auto_widen_bootstrap
        # The prepass runs channel-sharded with single-read ingest.
        # Like the merge (which defaults to a plain serial ``Unifier``),
        # pools are opt-in: ``1`` (default) runs in-process — collection
        # is a ~100 ms stage on a building trace, far below pool spawn
        # cost — ``n > 1`` caps a process pool, ``None`` auto-sizes one
        # to the machine.
        self.bootstrap_workers = bootstrap_workers

    def run(
        self,
        traces: Sequence[RadioTrace],
        clock_groups: Sequence[Sequence[int]] = (),
        bootstrap: Optional[BootstrapResult] = None,
        passes: Sequence[PipelinePass] = (),
        materialize: bool = True,
        trim_exchange_refs: Optional[bool] = None,
    ) -> JigsawReport:
        """Run the full reconstruction.

        ``clock_groups`` is the infrastructure metadata (radios sharing a
        capture clock) used for cross-channel bridging; pass a precomputed
        ``bootstrap`` to skip that phase (ablations do).  Otherwise the
        prepass runs through the channel-sharded coordinator with
        single-read ingest: each trace's records are consumed exactly
        once for the bootstrap window (widening rounds feed only the
        delta), and :class:`~repro.jtrace.io.StreamingRadioTrace` inputs
        decode just that prefix before unification replays the buffer —
        no second read of the trace.

        ``passes`` are :class:`~repro.core.passes.PipelinePass` instances
        driven inside the one-pass loop; each result lands in
        ``report.passes[pass.name]``.  ``materialize=False`` drops the
        built-in materialization pass, bounding memory for long traces.
        ``trim_exchange_refs`` severs observation -> exchange
        back-references once transport inference has folded its verdicts
        into the flows, so the returned report's flows stop retaining the
        data-subset jframe graph; the default (``None``) trims exactly
        when ``materialize=False`` — a materialized report holds every
        exchange anyway.
        """
        started = time.perf_counter()
        check_pass_names(passes)
        if trim_exchange_refs is None:
            trim_exchange_refs = not materialize
        # ``sorted_by_local_time`` returns the trace itself when records
        # are already ordered (the common case), so this no longer copies
        # every record list.  Streaming traces validate ordering during
        # their (single) decode instead — sorting them here would force a
        # full drain before bootstrap could overlap with ingest.
        ordered = [
            trace
            if isinstance(trace, StreamingRadioTrace)
            else trace.sorted_by_local_time()
            for trace in traces
        ]
        health = HealthReport()
        if bootstrap is None:
            # Built per run so reconfiguring the public attributes
            # (window, widening, workers) between runs keeps working.
            coordinator = ShardedBootstrap(
                max_workers=self.bootstrap_workers,
                window_us=self.bootstrap_window_us,
                auto_widen=self.auto_widen_bootstrap,
            )
            bootstrap = coordinator.bootstrap(ordered, clock_groups=clock_groups)
            health.bootstrap_shards.merge(coordinator.health)
        health.sync.quarantined = dict(bootstrap.quarantined)
        health.sync.islands = [list(i) for i in bootstrap.islands]
        health.sync.rejoined = list(bootstrap.rejoined)
        health.sync.widen_rounds = bootstrap.widen_rounds

        # One pass: jframes stream out of the merge and straight through
        # attempt grouping, the exchange FSM, flow binning and every
        # registered analysis pass (the drive — shared verbatim with the
        # service daemon's incremental loop).
        stream = self.unifier.stream_unify(ordered, bootstrap)
        drive = ReconstructionDrive(passes, materialize=materialize)
        for jframe in stream:
            drive.feed(jframe)
        flows = drive.finish_streams(trim_exchange_refs=trim_exchange_refs)

        materializer = drive.materializer
        unification = UnificationResult(
            jframes=materializer.jframes if materializer is not None else [],
            tracks=stream.tracks,
            stats=stream.stats,
        )
        # Ingest damage counters are complete only now — streaming traces
        # fill their ``decode_health`` as the merge drains them.
        for trace in ordered:
            decode_health = getattr(trace, "decode_health", None)
            if decode_health is not None:
                health.ingest.merge(decode_health)
        unify_health = getattr(self.unifier, "health", None)
        if isinstance(unify_health, ShardHealth):
            health.unify_shards.merge(unify_health)

        context = PassContext(
            bootstrap=bootstrap,
            tracks=unification.tracks,
            unify_stats=unification.stats,
            attempt_stats=drive.attempt_assembler.stats,
            exchange_stats=drive.exchange_assembler.stats,
            transport_stats=drive.transport_stats,
            traces=ordered,
            n_flows=len(flows),
        )
        results = {p.name: p.finish(context) for p in passes}
        if materializer is not None:
            materializer.finish(context)

        return JigsawReport(
            bootstrap=bootstrap,
            unification=unification,
            attempts=materializer.attempts if materializer is not None else [],
            attempt_stats=drive.attempt_assembler.stats,
            exchanges=materializer.exchanges if materializer is not None else [],
            exchange_stats=drive.exchange_assembler.stats,
            flows=flows,
            transport_stats=drive.transport_stats,
            elapsed_seconds=time.perf_counter() - started,
            passes=results,
            materialized=materialize,
            health=health,
        )

    def run_streaming(
        self,
        traces: Sequence[RadioTrace],
        passes: Sequence[PipelinePass],
        clock_groups: Sequence[Sequence[int]] = (),
        bootstrap: Optional[BootstrapResult] = None,
    ) -> JigsawReport:
        """Bounded-memory entry point: analyses run inline, lists dropped.

        Equivalent to ``run(..., passes=passes, materialize=False)`` —
        the returned report carries statistics, flows and
        ``report.passes`` results, but no jframe/attempt/exchange lists.
        """
        return self.run(
            traces,
            clock_groups=clock_groups,
            bootstrap=bootstrap,
            passes=passes,
            materialize=False,
        )
