"""Composable analysis passes over the one-pass reconstruction pipeline.

The Section 6/7 analyses historically consumed a fully materialized
:class:`~repro.core.pipeline.JigsawReport` — every jframe, attempt,
exchange and flow held in memory at once.  The pipeline itself, however,
reconstructs all four layers in a single pipelined pass, so an analysis
that only ever *folds* over those streams never needed the lists.

A :class:`PipelinePass` taps that pass directly:

* :meth:`PipelinePass.on_jframe` — every unified jframe, in global
  timestamp order;
* :meth:`PipelinePass.on_attempt` — every sealed transmission attempt,
  in creation (data-frame) order;
* :meth:`PipelinePass.on_exchange` — every frame exchange, in
  ``start_us`` order (the assembler's bounded reorder buffer guarantees
  in-order delivery);
* :meth:`PipelinePass.on_flow` — every reconstructed TCP flow, after
  transport inference, ordered by first observation;
* :meth:`PipelinePass.finish` — called once with a :class:`PassContext`
  of run-level state; its return value becomes the pass's result on
  ``report.passes[pass.name]``.

``JigsawPipeline.run(traces, passes=[...])`` drives registered passes
inside the one-pass loop.  Report materialization itself is just the
built-in :class:`MaterializePass`; pass ``materialize=False`` (or call
``run_streaming``) to drop it and run analyses in bounded memory over
arbitrarily long traces.

:func:`run_passes` replays an already-materialized report through the
same hooks, so the classic function-style entry points
(``activity_timeline(report, ...)`` and friends) are thin wrappers over
their pass implementations — one implementation, two consumption styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # import-light at runtime: passes sits below these layers
    from .link.attempt import TransmissionAttempt
    from .link.exchange import FrameExchange
    from .transport.flows import TcpFlow
    from .unify.jframe import JFrame


@dataclass(frozen=True)
class SealedWindow:
    """One windowed pass result, sealed and ready for publication.

    A *windowed* pass folds its hook events into fixed-width time
    windows.  Once the pipeline's emission watermark passes a window's
    end, no future jframe/attempt/exchange can land in it, so the pass
    surrenders the window through :meth:`PipelinePass.seal_ready` — the
    service daemon publishes it immediately instead of waiting for
    ``finish()``.  ``window_id`` is the window's index on the universal
    timeline (``start_us // width``), which makes re-publications after
    a checkpoint restore deduplicable: the same window always seals with
    the same id and the same payload, no matter when it is sealed.
    """

    pass_name: str
    window_id: int
    start_us: int
    end_us: int
    payload: Any

    @property
    def key(self) -> "tuple[str, int]":
        """Dedup key for at-least-once publication sinks."""
        return (self.pass_name, self.window_id)


@dataclass
class PassContext:
    """Run-level state handed to :meth:`PipelinePass.finish`.

    Everything here is available in both execution styles: populated by
    the pipeline at the end of a streaming run, or derived from a
    materialized report when replaying (:func:`run_passes`).  Fields are
    deliberately loosely typed to keep this module import-light (it sits
    below both the pipeline and the analysis package).
    """

    bootstrap: Any = None
    tracks: Dict[int, Any] = field(default_factory=dict)
    unify_stats: Any = None
    attempt_stats: Any = None
    exchange_stats: Any = None
    transport_stats: Any = None
    #: The input radio traces (as handed to the pipeline).  Passes that
    #: summarize raw capture volume (Table 1) read these; streaming
    #: passes that must stay O(1) in trace length simply don't.
    traces: Sequence[Any] = ()
    n_flows: int = 0

    @classmethod
    def from_report(cls, report: Any, traces: Sequence[Any] = ()) -> "PassContext":
        """Build the context a pipeline run would have produced."""
        return cls(
            bootstrap=report.bootstrap,
            tracks=report.tracks,
            unify_stats=report.unification.stats,
            attempt_stats=report.attempt_stats,
            exchange_stats=report.exchange_stats,
            transport_stats=report.transport_stats,
            traces=traces,
            n_flows=len(report.flows),
        )


class PipelinePass:
    """Base class for streaming analysis passes.

    Subclasses override only the hooks they need; every hook defaults to
    a no-op.  A pass instance is single-use: it accumulates state across
    the hooks and surrenders its result from :meth:`finish`.
    """

    #: Key under which the result lands in ``report.passes``.
    name: str = "pass"

    def on_jframe(self, jframe: JFrame) -> None:
        """One unified jframe, in global timestamp order."""

    def on_attempt(self, attempt: TransmissionAttempt) -> None:
        """One sealed transmission attempt, in creation order."""

    def on_exchange(self, exchange: FrameExchange) -> None:
        """One closed frame exchange, in ``start_us`` order.

        Caveat: in a live pipeline run this fires *before* transport
        inference, which may later upgrade ``exchange.delivered`` (and
        ``delivery_inferred_from_transport``) in place — a replay over a
        materialized report sees the post-inference state instead.  A
        pass that depends on final delivery verdicts should read them
        from flows in :meth:`on_flow`/:meth:`finish`, not here.
        """

    def on_flow(self, flow: TcpFlow) -> None:
        """One reconstructed TCP flow, after transport inference."""

    def finish(self, context: Optional[PassContext]) -> Any:
        """Finalize and return this pass's result."""
        return None

    # --- windowed emission (service mode) --------------------------------

    def seal_ready(self, watermark_us: float) -> List[SealedWindow]:
        """Windows no future event can change, given the emission watermark.

        The service daemon calls this after every feed step with the
        conservative downstream watermark (the exchange assembler's
        emission bound — everything earlier has been delivered to every
        hook).  A windowed pass returns the finished windows, oldest
        first, and must never return the same window twice on one
        instance; non-windowed passes inherit this no-op.  Sealing must
        be a pure function of the events fed so far — the crash/resume
        parity suite holds that a window sealed after a checkpoint
        restore is bit-identical to the uninterrupted run's.
        """
        return []

    # --- checkpoint state protocol (service mode) -------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Picklable accumulator state for a service checkpoint.

        The default captures the instance dict, which suits passes whose
        state is plain data (counters, lists, dicts of dataclasses).  A
        pass holding unpicklable resources (file handles, sockets)
        overrides this pair to exclude and re-acquire them.
        """
        return dict(self.__dict__)

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore accumulator state captured by :meth:`snapshot_state`."""
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle through the snapshot protocol (checkpoint codec hook)."""
        return self.snapshot_state()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.restore_state(state)


class MaterializePass(PipelinePass):
    """The built-in pass that retains the per-layer lists.

    Report materialization is itself just another fold over the streams —
    the one whose accumulator is O(trace).  The pipeline registers it by
    default (``materialize=True``) and skips it for bounded-memory runs.
    """

    name = "materialize"

    def __init__(self) -> None:
        self.jframes: List[JFrame] = []
        self.attempts: List[TransmissionAttempt] = []
        self.exchanges: List[FrameExchange] = []

    def on_jframe(self, jframe: JFrame) -> None:
        self.jframes.append(jframe)

    def on_attempt(self, attempt: TransmissionAttempt) -> None:
        self.attempts.append(attempt)

    def on_exchange(self, exchange: FrameExchange) -> None:
        self.exchanges.append(exchange)

    def finish(self, context: Optional[PassContext]) -> None:
        return None


def check_pass_names(passes: Iterable[PipelinePass]) -> None:
    """Reject duplicate pass names early (results are keyed by name)."""
    seen: Dict[str, PipelinePass] = {}
    for p in passes:
        if p.name in seen:
            raise ValueError(
                f"duplicate pass name {p.name!r}: results are keyed by "
                f"name — give one of the passes a distinct .name"
            )
        seen[p.name] = p


def run_passes(
    report: Any,
    passes: Sequence[PipelinePass],
    traces: Sequence[Any] = (),
) -> Dict[str, Any]:
    """Replay a materialized report through analysis passes.

    Feeds every jframe, attempt, exchange and flow of ``report`` through
    the hooks (each list is already in the order the live pipeline would
    have delivered it), then finishes each pass with a context derived
    from the report.  Returns ``{pass.name: result}``.

    This is what the function-style analysis entry points do internally,
    which keeps the batch and streaming paths behaviourally identical by
    construction.
    """
    if not getattr(report, "materialized", True):
        raise ValueError(
            "report was produced with materialize=False and carries no "
            "jframe/attempt/exchange lists to replay; register the passes "
            "on the pipeline run instead (JigsawPipeline.run(..., passes=...))"
        )
    check_pass_names(passes)
    for jframe in report.jframes:
        for p in passes:
            p.on_jframe(jframe)
    for attempt in report.attempts:
        for p in passes:
            p.on_attempt(attempt)
    for exchange in report.exchanges:
        for p in passes:
            p.on_exchange(exchange)
    for flow in report.flows:
        for p in passes:
            p.on_flow(flow)
    context = PassContext.from_report(report, traces=traces)
    return {p.name: p.finish(context) for p in passes}
