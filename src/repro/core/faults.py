"""Shared fault-recovery policy for the sharded coordinators.

Both process-pool coordinators — :class:`~repro.core.sync.sharded.ShardedBootstrap`
and :class:`~repro.core.unify.sharded.ShardedUnifier` — face the same
failure modes: a worker process dies (``BrokenProcessPool``), a shard
hangs past its deadline, or a worker raises a deterministic exception.
The recovery strategy is identical for both, so it lives here once:

1. retry the failed shards in a fresh pool, with capped exponential
   backoff between rounds (a dead worker often means transient memory
   pressure — give the host a beat);
2. after ``max_retries`` pool attempts, degrade the shard to serial
   in-process execution — slower, but a hung or crashing pool must never
   abort a day-scale reconstruction;
3. deterministic worker exceptions (the function itself raised) are
   *not* retried — they would fail identically every round — and
   propagate to the caller.

Everything that happened is tallied in a :class:`ShardHealth`, which the
pipeline aggregates into the run-level :class:`HealthReport` surfaced on
``report.health``.

Layering note: ``core`` imports :class:`~repro.jtrace.io.DecodeHealth`
from ``jtrace`` (the substrate), never the reverse.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    cast,
)

from ..jtrace.io import DecodeHealth

logger = logging.getLogger(__name__)

#: Per-shard result type of :func:`map_shards_with_recovery`.
ShardResultT = TypeVar("ShardResultT")


@dataclass(frozen=True)
class RetryPolicy:
    """How a coordinator reacts to worker death or a missed deadline.

    ``max_retries`` counts *pool* attempts beyond the first: a shard is
    submitted to a pool at most ``1 + max_retries`` times before it is
    degraded to serial in-process execution.  ``shard_timeout_s`` is the
    per-shard deadline (``None`` disables deadlines — the historical
    behavior).  Backoff before retry round ``k`` (1-based) is
    ``min(backoff_base_s * backoff_multiplier**(k-1), backoff_cap_s)``.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 1.0
    shard_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError(
                f"shard_timeout_s must be positive or None, got "
                f"{self.shard_timeout_s}"
            )

    def backoff_s(self, retry_round: int) -> float:
        """Seconds to sleep before retry round ``retry_round`` (1-based)."""
        return min(
            self.backoff_base_s * self.backoff_multiplier ** (retry_round - 1),
            self.backoff_cap_s,
        )


@dataclass
class ShardHealth:
    """What one coordinator's pool recovery observed on one run.

    ``pool_workers`` is the worker count the coordinator actually sized
    its pool to (0 = the stage ran serially in-process) — the audit trail
    for "did this run really use the pool, and how wide".  Unlike the
    fault tallies it is a *size*, not a count of events, so ``merge``
    keeps the maximum instead of summing.
    """

    shards: int = 0
    pool_retries: int = 0
    worker_crashes: int = 0
    shard_timeouts: int = 0
    shards_degraded_serial: int = 0
    pool_workers: int = 0

    def merge(self, other: "ShardHealth") -> None:
        for f in fields(self):
            if f.name == "pool_workers":
                self.pool_workers = max(self.pool_workers, other.pool_workers)
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )

    @property
    def degraded(self) -> bool:
        return bool(
            self.pool_retries
            or self.worker_crashes
            or self.shard_timeouts
            or self.shards_degraded_serial
        )

    def summary(self) -> str:
        return (
            f"shards={self.shards} workers={self.pool_workers} "
            f"retries={self.pool_retries} "
            f"crashes={self.worker_crashes} timeouts={self.shard_timeouts} "
            f"degraded_serial={self.shards_degraded_serial}"
        )


@dataclass
class SyncHealth:
    """Degraded-mode synchronization outcome for one bootstrap."""

    quarantined: Dict[int, str] = field(default_factory=dict)
    islands: List[List[int]] = field(default_factory=list)
    rejoined: List[int] = field(default_factory=list)
    widen_rounds: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def summary(self) -> str:
        return (
            f"quarantined={len(self.quarantined)} "
            f"islands={len(self.islands)} rejoined={len(self.rejoined)} "
            f"widen_rounds={self.widen_rounds}"
        )


@dataclass
class HealthReport:
    """Run-level degradation ledger, surfaced on ``report.health``.

    One section per layer that can degrade: ingest decode, clock
    synchronization, and the two sharded pool coordinators.  A report
    whose ``degraded`` is False certifies the run saw pristine inputs and
    healthy workers — exactly the conditions under which the output is
    bit-identical to the strict pipeline's.
    """

    ingest: DecodeHealth = field(default_factory=DecodeHealth)
    sync: SyncHealth = field(default_factory=SyncHealth)
    bootstrap_shards: ShardHealth = field(default_factory=ShardHealth)
    unify_shards: ShardHealth = field(default_factory=ShardHealth)

    @property
    def degraded(self) -> bool:
        return (
            not self.ingest.clean
            or self.sync.degraded
            or self.bootstrap_shards.degraded
            or self.unify_shards.degraded
        )

    def summary(self) -> str:
        return (
            f"ingest[{self.ingest.summary()}] sync[{self.sync.summary()}] "
            f"bootstrap[{self.bootstrap_shards.summary()}] "
            f"unify[{self.unify_shards.summary()}]"
        )


class PoolHandle:
    """A caller-owned, reusable process pool for repeated shard maps.

    :func:`map_shards_with_recovery` normally builds and tears down a
    pool per call.  Coordinators that map shards repeatedly — the
    bootstrap auto-widen loop re-collects every round — pass a handle so
    the worker processes stay **resident** across calls and each round
    ships only its incremental payload instead of paying a pool spawn.
    A pool fault invalidates the handle (the broken pool is abandoned);
    the next acquisition transparently builds a fresh pool.  Callers own
    the lifetime: ``close()`` when the loop is done.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0

    def acquire(self, max_workers: int) -> ProcessPoolExecutor:
        """The resident pool, (re)built at ``max_workers`` if needed."""
        if self._pool is None or self._workers != max_workers:
            self.close()
            self._pool = ProcessPoolExecutor(max_workers=max_workers)
            self._workers = max_workers
        return self._pool

    def discard_broken(self) -> None:
        """Forget the pool after a fault (caller already shut it down)."""
        self._pool = None
        self._workers = 0

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._workers = 0


def map_shards_with_recovery(
    fn: Callable[..., ShardResultT],
    args_list: Sequence[Tuple[Any, ...]],
    *,
    max_workers: int,
    policy: Optional[RetryPolicy] = None,
    health: Optional[ShardHealth] = None,
    label: str = "shard",
    sleep: Callable[[float], None] = time.sleep,
    handle: Optional[PoolHandle] = None,
) -> List[ShardResultT]:
    """Run ``fn(*args)`` per shard in a process pool, surviving worker faults.

    Results come back in ``args_list`` order.  Pool-level faults — a
    worker process dying (:class:`BrokenProcessPool`) or a shard missing
    its ``policy.shard_timeout_s`` deadline — abandon the current pool,
    salvage every shard that already finished, and retry the rest in a
    fresh pool after backoff.  Shards still failing after
    ``policy.max_retries`` retries run serially in-process (``fn`` called
    directly), so a persistently broken pool degrades throughput, never
    correctness.  Exceptions raised *by fn itself* are deterministic and
    propagate immediately.

    ``sleep`` is injectable so tests exercise backoff without waiting.

    ``handle`` (optional) lends a caller-owned :class:`PoolHandle` whose
    resident pool serves the first attempt, left alive on success so the
    caller's next map reuses the warm workers.  Fault recovery is
    unchanged: a broken resident pool is abandoned (and discarded from
    the handle) and retry rounds run in fresh throwaway pools.
    """
    if policy is None:
        policy = RetryPolicy()
    if health is None:
        health = ShardHealth()
    health.shards += len(args_list)

    results: List[Optional[ShardResultT]] = [None] * len(args_list)
    pending: List[int] = list(range(len(args_list)))
    attempts = [0] * len(args_list)
    retry_round = 0

    while pending:
        # Shards out of pool budget degrade to serial in-process calls.
        exhausted = [i for i in pending if attempts[i] > policy.max_retries]
        if exhausted:
            health.shards_degraded_serial += len(exhausted)
            logger.warning(
                "%s recovery: running %d shard(s) serially in-process "
                "after %d failed pool attempt(s) each",
                label, len(exhausted), policy.max_retries + 1,
            )
            for i in exhausted:
                results[i] = fn(*args_list[i])
            pending = [i for i in pending if attempts[i] <= policy.max_retries]
            continue

        if retry_round:
            health.pool_retries += len(pending)
            backoff = policy.backoff_s(retry_round)
            logger.warning(
                "%s recovery: retrying %d shard(s) in a fresh pool "
                "(round %d, backoff %.3fs)",
                label, len(pending), retry_round, backoff,
            )
            sleep(backoff)

        borrowed = handle is not None and retry_round == 0
        if borrowed:
            assert handle is not None
            pool = handle.acquire(max_workers)
        else:
            pool = ProcessPoolExecutor(max_workers=max_workers)
        abandoned = False
        try:
            futures = {i: pool.submit(fn, *args_list[i]) for i in pending}
            for i in pending:
                attempts[i] += 1
            done: List[int] = []
            for i in pending:
                try:
                    results[i] = futures[i].result(
                        timeout=policy.shard_timeout_s
                    )
                    done.append(i)
                except FuturesTimeoutError:
                    health.shard_timeouts += 1
                    abandoned = True
                    break
                except BrokenProcessPool:
                    health.worker_crashes += 1
                    abandoned = True
                    break
            if abandoned:
                # Salvage shards whose futures completed before the fault;
                # everything else goes back on the queue for the next round.
                for i in pending:
                    if i in done:
                        continue
                    future = futures[i]
                    if future.done() and not future.cancelled():
                        try:
                            results[i] = future.result(timeout=0)
                            done.append(i)
                        except (
                            FuturesTimeoutError,
                            BrokenProcessPool,
                        ):
                            # A future that reports done but whose result
                            # died with the pool is not salvageable; it
                            # stays pending for the retry round, which the
                            # ledger already counts — note it and move on.
                            logger.debug(
                                "%s recovery: shard %d unsalvageable from "
                                "the broken pool; queued for retry",
                                label, i,
                            )
                pending = [i for i in pending if i not in done]
                retry_round += 1
            else:
                pending = []
        finally:
            # Never ``wait=True`` here: a hung worker would hang the
            # coordinator too, which is exactly what the deadline exists
            # to prevent.  A healthy borrowed pool stays alive for the
            # caller's next round; a faulted one is torn down and
            # discarded from its handle.
            if not borrowed:
                pool.shutdown(wait=False, cancel_futures=True)
            elif abandoned:
                assert handle is not None
                pool.shutdown(wait=False, cancel_futures=True)
                handle.discard_broken()

    # Every index left the pending list only by being filled in, so the
    # Optional placeholder type is provably all-ShardResultT here.
    return cast(List[ShardResultT], results)
