"""TCP flow reconstruction from frame exchanges (Section 5.2).

"Our transport-layer analysis takes frame exchanges as input and
reconstructs individual TCP flows based on the network and transport
headers."  Each data-bearing exchange whose payload parses as a TCP segment
becomes a :class:`SegmentObservation` attached to the flow identified by
its canonical 4-tuple; the per-flow analyses (handshake detection, the
ACK-coverage oracle, loss classification, RTT estimation) live in
:mod:`repro.core.transport.inference`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...net.packets import IpPacket, TcpSegment, try_parse_packet
from ..link.exchange import FrameExchange


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional TCP 4-tuple (the lower endpoint first)."""

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int

    @classmethod
    def from_packet(cls, packet: IpPacket, seg: TcpSegment) -> Tuple["FlowKey", bool]:
        """The flow key plus whether this packet travels a -> b."""
        src = (packet.src, seg.sport)
        dst = (packet.dst, seg.dport)
        if src <= dst:
            return cls(src[0], src[1], dst[0], dst[1]), True
        return cls(dst[0], dst[1], src[0], src[1]), False

    def __str__(self) -> str:
        from ...net.packets import format_ip

        return (
            f"{format_ip(self.ip_a)}:{self.port_a} <-> "
            f"{format_ip(self.ip_b)}:{self.port_b}"
        )


@dataclass
class SegmentObservation:
    """One TCP segment as seen on the air (one frame exchange).

    ``exchange`` back-references the frame exchange that carried the
    segment — and, through it, the data jframe and every capture
    instance.  Transport inference reads (and upgrades) it; afterwards a
    bounded-memory pipeline run severs the reference
    (:meth:`TcpFlow.trim_exchange_refs`) so long-lived flow objects stop
    retaining the data-subset jframe graph.  ``None`` therefore means
    "trimmed", not "unknown".
    """

    time_us: int
    exchange: Optional[FrameExchange]
    packet: IpPacket
    seg: TcpSegment
    from_a: bool            # direction within the canonical flow
    to_wireless: bool       # True when the frame went AP -> client (FromDS)

    @property
    def is_data(self) -> bool:
        return self.seg.payload_len > 0

    @property
    def seq_end(self) -> int:
        return self.seg.seq_end


@dataclass
class TcpFlow:
    """One reconstructed TCP connection."""

    key: FlowKey
    observations: List[SegmentObservation] = field(default_factory=list)
    # Filled by inference:
    handshake_complete: bool = False
    syn_time_us: Optional[int] = None
    synack_time_us: Optional[int] = None
    established_time_us: Optional[int] = None
    loss_events: list = field(default_factory=list)
    inferred_hidden_segments: int = 0
    rtt_samples_us: List[float] = field(default_factory=list)

    @property
    def n_segments(self) -> int:
        return len(self.observations)

    @property
    def data_observations(self) -> List[SegmentObservation]:
        return [obs for obs in self.observations if obs.is_data]

    @property
    def data_bytes_observed(self) -> int:
        return sum(obs.seg.payload_len for obs in self.data_observations)

    @property
    def median_rtt_us(self) -> Optional[float]:
        if not self.rtt_samples_us:
            return None
        ordered = sorted(self.rtt_samples_us)
        return ordered[len(ordered) // 2]

    def trim_exchange_refs(self) -> None:
        """Sever observation -> exchange back-references.

        A flow outlives the streaming pipeline's per-layer objects, and
        each observation's exchange pins its data jframe (and all capture
        instances) in memory — the remaining O(data-subset) term of a
        ``materialize=False`` run.  Transport inference has already
        folded everything it needs from the exchanges into the flow
        (delivery verdicts, loss events, RTT samples), so bounded-memory
        runs call this once inference is done.
        """
        for obs in self.observations:
            obs.exchange = None


class FlowCollector:
    """Incremental flow binning: feed exchanges, finish into sorted flows.

    Input order does not matter — :meth:`finish` time-sorts every flow's
    observations — so the one-pass pipeline can feed exchanges in closure
    order straight off the assembler FSM.
    """

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, TcpFlow] = {}

    def feed(self, exchange: FrameExchange) -> None:
        """Bin one exchange's TCP segment (if it carries one)."""
        jframe = exchange.data_jframe
        if jframe is None or jframe.frame is None:
            return
        frame = jframe.frame
        if not frame.ftype.is_data or not frame.body:
            return
        packet = try_parse_packet(frame.body)
        if not isinstance(packet, IpPacket) or not isinstance(
            packet.payload, TcpSegment
        ):
            return
        seg = packet.payload
        key, from_a = FlowKey.from_packet(packet, seg)
        flow = self._flows.setdefault(key, TcpFlow(key=key))
        flow.observations.append(
            SegmentObservation(
                time_us=exchange.start_us,
                exchange=exchange,
                packet=packet,
                seg=seg,
                from_a=from_a,
                to_wireless=frame.from_ds,
            )
        )

    def finish(self) -> List[TcpFlow]:
        """Time-order every flow and return them by first observation."""
        flows = self._flows
        for flow in flows.values():
            flow.observations.sort(key=lambda obs: obs.time_us)
        return sorted(flows.values(), key=lambda f: f.observations[0].time_us)


def collect_flows(exchanges: Sequence[FrameExchange]) -> List[TcpFlow]:
    """Bin data-bearing exchanges into flows by canonical 4-tuple."""
    collector = FlowCollector()
    for exchange in exchanges:
        collector.feed(exchange)
    return collector.finish()
