"""Transport-layer reconstruction and inference."""

from .flows import FlowKey, SegmentObservation, TcpFlow, collect_flows
from .inference import (
    InferenceStats,
    LossCause,
    TcpLossEvent,
    TransportInference,
)

__all__ = [
    "FlowKey",
    "SegmentObservation",
    "TcpFlow",
    "collect_flows",
    "InferenceStats",
    "LossCause",
    "TcpLossEvent",
    "TransportInference",
]
