"""Transport-layer reconstruction and inference."""

from .flows import (
    FlowCollector,
    FlowKey,
    SegmentObservation,
    TcpFlow,
    collect_flows,
)
from .inference import (
    InferenceStats,
    LossCause,
    TcpLossEvent,
    TransportInference,
)

__all__ = [
    "FlowCollector",
    "FlowKey",
    "SegmentObservation",
    "TcpFlow",
    "collect_flows",
    "InferenceStats",
    "LossCause",
    "TcpLossEvent",
    "TransportInference",
]
