"""Transport-layer inference (Section 5.2).

Three jobs, all built on the same observation: TCP's cumulative ACK is an
oracle for what actually crossed the link.

1. **Delivery disambiguation** — a frame exchange with no observed 802.11
   ACK is ambiguous at the link layer; "observing a covering TCP ACK proves
   that the link-layer frame containing the associated data was actually
   delivered", so those exchanges get upgraded to delivered.
2. **Monitor-omission detection** — "if we observe a TCP acknowledgment
   that covers an TCP sequence hole, we can infer that the packet was
   correctly delivered" even though no monitor captured it.
3. **Loss classification** — every TCP-level retransmission marks a loss;
   examining the frame exchanges of the lost copy separates 802.11 losses
   from losses in the wired network (the Figure 11 decomposition), in the
   spirit of Jaiswal et al.'s passive analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...tcp.endpoint import seq_leq, seq_lt
from .flows import SegmentObservation, TcpFlow


class LossCause(enum.Enum):
    WIRELESS = "wireless"    # the 802.11 hop dropped it
    WIRED = "wired"          # delivered over the air, lost beyond (or
    #                          never reached the air on the way down)
    UNKNOWN = "unknown"      # evidence insufficient
    SPURIOUS = "spurious"    # no loss at all: the covering ACK crossed the
    #                          air before the retransmission — a delay-
    #                          induced (Karn/RTO) spurious retransmission


@dataclass
class TcpLossEvent:
    """One segment loss, as seen by TCP."""

    seq: int
    time_us: int
    from_a: bool
    cause: LossCause
    retransmission_time_us: int


@dataclass
class InferenceStats:
    flows: int = 0
    handshakes_completed: int = 0
    exchanges_upgraded_by_ack_coverage: int = 0
    hidden_segments_inferred: int = 0
    loss_events: int = 0
    wireless_losses: int = 0
    wired_losses: int = 0
    unknown_losses: int = 0
    spurious_retransmissions: int = 0


class TransportInference:
    """Runs all Section 5.2 analyses over a set of reconstructed flows."""

    def __init__(self) -> None:
        self.stats = InferenceStats()

    def run(self, flows: Sequence[TcpFlow]) -> InferenceStats:
        for flow in flows:
            self.stats.flows += 1
            self._detect_handshake(flow)
            self._apply_ack_coverage(flow)
            self._detect_hidden_segments(flow)
            self._classify_losses(flow)
            self._estimate_rtt(flow)
        return self.stats

    # --- handshake -----------------------------------------------------------

    def _detect_handshake(self, flow: TcpFlow) -> None:
        """SYN / SYN-ACK / covering ACK — used to keep only real
        connections ("eliminating port scans and connection failures",
        Section 7.4)."""
        syn: Optional[SegmentObservation] = None
        synack: Optional[SegmentObservation] = None
        for obs in flow.observations:
            seg = obs.seg
            if seg.is_syn and not seg.is_ack and syn is None:
                syn = obs
            elif seg.is_syn and seg.is_ack and syn is not None and synack is None:
                if obs.from_a != syn.from_a:
                    synack = obs
            elif (
                synack is not None
                and seg.is_ack
                and obs.from_a == syn.from_a
                and seq_leq(synack.seg.seq_end, seg.ack)
            ):
                flow.handshake_complete = True
                flow.syn_time_us = syn.time_us
                flow.synack_time_us = synack.time_us
                flow.established_time_us = obs.time_us
                self.stats.handshakes_completed += 1
                return

    # --- ACK-coverage oracle ------------------------------------------------------

    def _apply_ack_coverage(self, flow: TcpFlow) -> None:
        """Upgrade ambiguous exchanges whose data a TCP ACK later covered.

        An exchange stays ambiguous only if the segment was retransmitted
        at the TCP layer before any covering ACK — then the covering ACK
        proves only that *some* copy arrived, not this one.
        """
        for direction in (True, False):
            data = [o for o in flow.observations if o.from_a == direction and o.is_data]
            acks = [
                o
                for o in flow.observations
                if o.from_a != direction and o.seg.is_ack
            ]
            if not data or not acks:
                continue
            for i, obs in enumerate(data):
                if obs.exchange.delivered is not None:
                    continue
                covering = next(
                    (
                        a
                        for a in acks
                        if a.time_us > obs.time_us
                        and seq_leq(obs.seq_end, a.seg.ack)
                    ),
                    None,
                )
                if covering is None:
                    continue
                # Was this seq retransmitted between obs and the ACK?
                retransmitted = any(
                    later.seg.seq == obs.seg.seq
                    and obs.time_us < later.time_us < covering.time_us
                    for later in data[i + 1:]
                )
                if not retransmitted:
                    obs.exchange.delivered = True
                    obs.exchange.delivery_inferred_from_transport = True
                    self.stats.exchanges_upgraded_by_ack_coverage += 1

    # --- monitor omissions ----------------------------------------------------------

    def _detect_hidden_segments(self, flow: TcpFlow) -> None:
        """Count sequence ranges that were ACKed but never observed."""
        for direction in (True, False):
            data = sorted(
                (o for o in flow.observations if o.from_a == direction and o.is_data),
                key=lambda o: (o.seg.seq & 0xFFFFFFFF),
            )
            acks = [
                o
                for o in flow.observations
                if o.from_a != direction and o.seg.is_ack
            ]
            if not data or not acks:
                continue
            max_ack = max((a.seg.ack for a in acks), default=0)
            covered: List[Tuple[int, int]] = []
            for obs in data:
                covered.append((obs.seg.seq, obs.seq_end))
            covered.sort()
            # Walk the covered ranges looking for holes below max_ack.
            holes = 0
            for (s1, e1), (s2, _) in zip(covered, covered[1:]):
                if seq_lt(e1, s2) and seq_leq(s2, max_ack):
                    holes += 1
            flow.inferred_hidden_segments += holes
            self.stats.hidden_segments_inferred += holes

    # --- loss classification -----------------------------------------------------------

    def _classify_losses(self, flow: TcpFlow) -> None:
        """Every TCP retransmission marks a loss; find out whose fault.

        * Earlier copy observed, link exchange failed or stayed ambiguous
          with no covering ACK -> wireless loss.
        * Earlier copy observed, link exchange delivered (ACK seen or
          transport-inferred) -> the drop happened in the wired network.
        * Earlier copy never observed at all: a downlink segment never made
          it to the AP (wired); an uplink segment was sent by the client's
          TCP but died on the (monitored) air -> wireless.
        """
        for direction in (True, False):
            data = [o for o in flow.observations if o.from_a == direction and o.is_data]
            reverse_acks = [
                o
                for o in flow.observations
                if o.from_a != direction and o.seg.is_ack
            ]
            by_seq: Dict[int, List[SegmentObservation]] = {}
            for obs in data:
                by_seq.setdefault(obs.seg.seq, []).append(obs)
            highest_end: Optional[int] = None
            for obs in data:
                if highest_end is not None and seq_lt(obs.seg.seq, highest_end):
                    # Sequence regression: this is a retransmission.
                    copies = by_seq[obs.seg.seq]
                    prior = [c for c in copies if c.time_us < obs.time_us]
                    if prior:
                        original = prior[-1]
                        cause = self._cause_of_loss(
                            original, obs, reverse_acks
                        )
                        event_time = original.time_us
                    else:
                        # The original never appeared in the trace.
                        cause = (
                            LossCause.WIRED
                            if obs.to_wireless
                            else LossCause.WIRELESS
                        )
                        event_time = obs.time_us
                    self._record_loss(flow, obs, cause, event_time)
                if highest_end is None or seq_lt(highest_end, obs.seq_end):
                    highest_end = obs.seq_end

    def _cause_of_loss(
        self,
        original: SegmentObservation,
        retransmission: SegmentObservation,
        reverse_acks: List[SegmentObservation],
    ) -> LossCause:
        """Attribute one TCP loss by examining both directions' exchanges.

        The forward exchange failing is the easy case.  When the data
        *did* cross the air yet TCP still retransmitted, the loss moved to
        the acknowledgment path — so inspect the frame exchanges of the
        reverse ACKs covering this segment:

        * a covering reverse ACK observed whose own exchange failed on the
          air -> a wireless loss (of the ACK);
        * a covering reverse ACK that crossed the air fine -> the drop
          happened in the wired network;
        * no covering reverse ACK observed at all -> for uplink data the
          segment most plausibly died in the wired network beyond the AP;
          for downlink data the evidence is insufficient.
        """
        delivered = original.exchange.delivered
        if delivered is False:
            return LossCause.WIRELESS
        covering = [
            a
            for a in reverse_acks
            if original.time_us < a.time_us < retransmission.time_us
            and seq_leq(original.seq_end, a.seg.ack)
        ]
        if covering:
            if any(a.exchange.delivered is True for a in covering):
                # The acknowledgment did cross the air before the sender
                # retransmitted: nothing was lost on the wireless hop, and
                # a same-instant wired drop of a delivered ACK is far less
                # likely than an RTO racing jam-delayed delivery.  This is
                # a spurious retransmission, not a loss.
                return LossCause.SPURIOUS
            if all(a.exchange.delivered is False for a in covering):
                return LossCause.WIRELESS
            return LossCause.UNKNOWN
        # No covering reverse ACK was ever on the air before the sender
        # retransmitted.  For uplink data that crossed the air, the segment
        # (or its ACK) died in the wired network beyond the AP.  For
        # downlink data the receiver's TCP never acknowledged over the air
        # — the segment or its acknowledgment was lost on the wireless hop.
        if not original.to_wireless:
            return (
                LossCause.WIRED if delivered is True else LossCause.UNKNOWN
            )
        return LossCause.WIRELESS

    def _record_loss(
        self,
        flow: TcpFlow,
        retransmission: SegmentObservation,
        cause: LossCause,
        event_time_us: int,
    ) -> None:
        if cause is LossCause.SPURIOUS:
            # Not a loss: the retransmission raced a delayed delivery.
            self.stats.spurious_retransmissions += 1
            return
        flow.loss_events.append(
            TcpLossEvent(
                seq=retransmission.seg.seq,
                time_us=event_time_us,
                from_a=retransmission.from_a,
                cause=cause,
                retransmission_time_us=retransmission.time_us,
            )
        )
        self.stats.loss_events += 1
        if cause is LossCause.WIRELESS:
            self.stats.wireless_losses += 1
        elif cause is LossCause.WIRED:
            self.stats.wired_losses += 1
        else:
            self.stats.unknown_losses += 1

    # --- RTT -----------------------------------------------------------------------------

    def _estimate_rtt(self, flow: TcpFlow) -> None:
        """Data-to-covering-ACK delay samples (Jaiswal-style).

        Only never-retransmitted segments give unambiguous samples (Karn's
        rule, applied in reverse by the passive observer).
        """
        if flow.syn_time_us is not None and flow.synack_time_us is not None:
            flow.rtt_samples_us.append(
                float(flow.synack_time_us - flow.syn_time_us)
            )
        for direction in (True, False):
            data = [o for o in flow.observations if o.from_a == direction and o.is_data]
            acks = [
                o
                for o in flow.observations
                if o.from_a != direction and o.seg.is_ack
            ]
            seq_counts: Dict[int, int] = {}
            for obs in data:
                seq_counts[obs.seg.seq] = seq_counts.get(obs.seg.seq, 0) + 1
            for obs in data:
                if seq_counts[obs.seg.seq] > 1:
                    continue
                covering = next(
                    (
                        a
                        for a in acks
                        if a.time_us > obs.time_us
                        and seq_leq(obs.seq_end, a.seg.ack)
                    ),
                    None,
                )
                if covering is not None:
                    flow.rtt_samples_us.append(
                        float(covering.time_us - obs.time_us)
                    )
