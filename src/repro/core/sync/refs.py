"""Reference-frame identification.

"Not all 802.11 frames are good references for synchronization.  For
example, ACK frames to the same destination are always identical, some
stations always use zero sequence numbers on probe frames, and frame
retransmissions cannot be distinguished from one another.  Thus, Jigsaw
only uses 'unique' frames for all synchronization activities.  Generally,
these are DATA frames that do not have the retransmit bit set." (Sec. 4.1)

A reference *key* identifies a single physical transmission by content:
two radios holding records with equal keys heard the same frame at the same
instant, which is what makes the pair a synchronization constraint.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ...dot11.frame import Frame
from ...dot11.serialize import FrameParseError, frame_from_capture
from ...jtrace.records import RecordKind, TraceRecord

#: Content identity of one captured frame: (length, FCS, snapped bytes).
ReferenceKey = Tuple[int, int, bytes]


#: Decoded-frame cache keyed by capture content.  Control frames (ACK, CTS)
#: repeat byte-identical constantly, and every duplicate reception of a
#: frame shares its bytes — the hit rate in a building trace is high.
#: Frames are immutable, so sharing decoded objects is safe.  The hit
#: path is a bare dict lookup — no recency bookkeeping, because the
#: limit is a safety bound that real traces never reach (a building run
#: populates ~23k of the 262k slots); if it is reached, entries age out
#: one at a time in insertion order instead of discarding the whole
#: cache at once.
_PARSE_CACHE: Dict[Tuple[bytes, int], Optional[Frame]] = {}
_PARSE_CACHE_LIMIT = 1 << 18


def parse_record_frame(record: TraceRecord) -> Optional[Frame]:
    """Best-effort decode of a capture record into a frame.

    Valid records parse unless truncation removed the header (it cannot —
    the snap always covers it).  Corrupt records usually fail and return
    ``None``; the pipeline then falls back to transmitter-address matching.
    """
    if not record.kind.has_frame or not record.snap:
        return None
    cache = _PARSE_CACHE
    key = (record.snap, record.frame_len)
    cached = cache.get(key, False)
    if cached is not False:
        return cached
    if record.frame_len <= len(record.snap):
        data = record.snap[:-4]  # full capture: strip the FCS trailer
    else:
        data = record.snap       # truncated: no FCS present in the snap
    try:
        frame: Optional[Frame] = frame_from_capture(data)
    except FrameParseError:
        frame = None
    if len(cache) >= _PARSE_CACHE_LIMIT:
        del cache[next(iter(cache))]  # oldest inserted
    cache[key] = frame
    return frame


def reference_key(record: TraceRecord) -> Optional[ReferenceKey]:
    """The synchronization reference key for a record, if it qualifies.

    Requirements: a VALID capture of a sequence-carrying frame whose retry
    bit is clear.  Returns ``None`` otherwise.
    """
    if record.kind is not RecordKind.VALID:
        return None
    frame = parse_record_frame(record)
    if frame is None:
        return None
    if not frame.ftype.carries_sequence or frame.retry:
        return None
    return (record.frame_len, record.fcs, record.snap)


def content_key(record: TraceRecord) -> ReferenceKey:
    """Plain content identity (no uniqueness filter) for unification."""
    return (record.frame_len, record.fcs, record.snap)
