"""Channel-sharded, ingest-overlapped bootstrap (Section 4.1 at scale).

``bootstrap_synchronization`` is a single-threaded full-prepass: every
widening round re-reads every trace's examination window from the start,
and nothing else can run until it finishes.  Jigsaw's own design makes
the prepass embarrassingly parallel — a frame on channel 1 is never heard
by a radio parked on channel 11, so reference-set collection shards
cleanly by channel, with cross-channel bridging happening only through
shared capture clocks (``clock_groups``) in the final BFS.

:class:`ShardedBootstrap` is the coordinator:

* traces are grouped into per-channel shards, each collected by its own
  :class:`~repro.core.sync.bootstrap._BootstrapShard` — serially or on a
  ``concurrent.futures`` process pool (mirroring
  :class:`~repro.core.unify.sharded.ShardedUnifier`'s serial/pool
  design, and sharing its worker-count policy via
  :func:`resolve_pool_workers`);
* collection is **single-read**: each trace's records are consumed
  incrementally, exactly once — the window cutoff is one bisect per
  trace, and the auto-widen loop feeds only the records between the old
  and the new limit instead of re-scanning from the start.  Traces
  backed by a replay-aware reader
  (:class:`~repro.jtrace.io.StreamingRadioTrace`) decode only the
  prefix the window needs; the buffered records are later replayed into
  unification without a second read of the file;
* the bridge phase unions the shard payloads (order-independent by
  construction — see :func:`~repro.core.sync.bootstrap.union_shard_payloads`)
  and runs the covering-family selection and offset BFS globally, with
  ``clock_groups`` providing the only cross-channel edges.

Execution mode never changes the answer: serial and pool collection are
bit-identical to :func:`~repro.core.sync.bootstrap.bootstrap_synchronization`
(``tests/test_bootstrap_parity.py`` holds the property).
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...jtrace.io import RadioTrace, StreamingRadioTrace
from ...jtrace.records import TraceRecord
from ..faults import (
    PoolHandle,
    RetryPolicy,
    ShardHealth,
    map_shards_with_recovery,
)
from .bootstrap import (
    ArrivalIndex,
    BootstrapResult,
    DEFAULT_BOOTSTRAP_WINDOW_US,
    DEFAULT_STABILITY_TOLERANCE_US,
    ShardPayload,
    SyncPartitionError,
    _BootstrapShard,
    _resolve_offsets,
    _select_covering_family,
    _shared_sets,
    log_quarantine_warning,
    resolve_island_mode,
    resolve_locality_map,
    union_shard_payloads,
)
from .refs import ReferenceKey


def resolve_pool_workers(max_workers: Optional[int], n_shards: int) -> int:
    """Worker count for a sharded stage; <= 1 means run serially.

    ``None`` auto-sizes to the CPU count; ``0``/``1`` force serial;
    ``n > 1`` caps the pool.  Never more workers than shards, and never
    more than the machine has cores: an explicit request for 32 workers
    on a 4-core runner gets 4.  The CPU cap never demotes an explicit
    pool request to serial (floor of two) — pool semantics (process
    isolation, crash recovery) are part of the contract callers opt
    into, not just a throughput knob, and the fault suites rely on a
    2-worker pool being a real pool even on a 1-core box.  This is the
    one policy both sharded stages (bootstrap here, unification in
    :class:`~repro.core.unify.sharded.ShardedUnifier` and the merge
    tree in :class:`~repro.core.unify.hierarchy.MergeTree`) resolve
    through; the chosen count is surfaced on
    :attr:`~repro.core.faults.ShardHealth.pool_workers` so every pool
    run is auditable from ``report.health``.

    ``0`` and ``1`` are documented serial modes; anything below is a
    caller bug (a negative pool size has no meaning), rejected loudly
    rather than silently clamped to serial.
    """
    if max_workers is not None and max_workers < 0:
        raise ValueError(
            f"max_workers must be None (auto), 0/1 (serial) or a positive "
            f"pool size; got {max_workers}"
        )
    if n_shards <= 1:
        return 1
    cpus = os.cpu_count() or 1
    if max_workers is None:
        budget = cpus
    else:
        budget = min(max(1, max_workers), max(2, cpus))
    return min(budget, n_shards)


def _window_cutoff(
    trace: RadioTrace, window_us: int, lo: int
) -> Tuple[Sequence[TraceRecord], int]:
    """Records of ``trace`` and the index one past its examination window.

    One bisect on the (local-time-ordered) records instead of a
    per-record compare; streaming traces decode just far enough to
    answer, buffering what they read for later replay.
    """
    first = trace.first_timestamp_us
    if first is None:
        return (), 0
    limit = first + window_us
    if isinstance(trace, StreamingRadioTrace):
        return trace.buffered_until(limit)
    records = trace.records
    if lo < len(records) and records[-1].timestamp_us <= limit:
        return records, len(records)
    return records, bisect_right(
        records, limit, lo=lo, key=lambda r: r.timestamp_us
    )


def _collect_shard_prefixes(
    prefixes: Sequence[Tuple[int, int, int, Sequence[TraceRecord]]],
) -> ShardPayload:
    """Pool worker entry point: collect one shard's (pickled) prefixes.

    ``prefixes`` holds ``(trace position, radio id, index base, window
    records)`` tuples — the base re-anchors the shipped slice at its
    absolute record index, so the arrival order recorded per reference
    set is identical to serial collection even across widening rounds,
    and the payload unions with other shards' in any order.
    """
    shard = _BootstrapShard()
    for trace_pos, radio_id, base, records in prefixes:
        shard.feed_slice(
            records, 0, len(records), trace_pos, radio_id, index_base=base
        )
    return shard.finish()


class ShardedBootstrap:
    """Channel-sharded front-end over the bootstrap prepass.

    ``max_workers`` selects the execution mode exactly like
    :class:`~repro.core.unify.sharded.ShardedUnifier`:

    * ``None`` (default) — auto: a process pool when the machine has more
      than one CPU *and* there is more than one channel shard, else
      serial;
    * ``0`` or ``1`` — always serial, in-process;
    * ``n > 1`` — a process pool of at most ``n`` workers.

    Serial mode is fully incremental (single read, widening feeds only
    new records); pool mode keeps the worker pool resident across
    auto-widen rounds and ships each round only the delta since the
    previous window — the incremental pool widening protocol.  Campus
    inputs (traces stamped with ``building_id``) shard into
    (building, channel) leaves whose payloads are bridged
    building-locally before the global covering-family selection, and
    default to ``island_mode="local"`` — each building synchronizes on
    its own island timeline instead of being quarantined off building
    0's (see :func:`~repro.core.sync.bootstrap.bootstrap_synchronization`
    for the mode semantics).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        window_us: int = DEFAULT_BOOTSTRAP_WINDOW_US,
        auto_widen: bool = True,
        max_window_us: int = 16_000_000,
        retry_policy: Optional[RetryPolicy] = None,
        shard_timeout_s: Optional[float] = None,
        stability_tolerance_us: float = DEFAULT_STABILITY_TOLERANCE_US,
        island_mode: Optional[str] = None,
    ) -> None:
        if window_us <= 0:
            raise ValueError("bootstrap window must be positive")
        if island_mode not in (None, "quarantine", "local"):
            raise ValueError(f"unknown island_mode {island_mode!r}")
        #: Island policy; ``None`` resolves per input fleet (see
        #: :func:`~repro.core.sync.bootstrap.resolve_island_mode`).
        self.island_mode = island_mode
        self.max_workers = max_workers
        self.window_us = window_us
        self.auto_widen = auto_widen
        self.max_window_us = max_window_us
        if retry_policy is None:
            retry_policy = RetryPolicy(shard_timeout_s=shard_timeout_s)
        elif shard_timeout_s is not None:
            retry_policy = RetryPolicy(
                max_retries=retry_policy.max_retries,
                backoff_base_s=retry_policy.backoff_base_s,
                backoff_multiplier=retry_policy.backoff_multiplier,
                backoff_cap_s=retry_policy.backoff_cap_s,
                shard_timeout_s=shard_timeout_s,
            )
        self.retry_policy = retry_policy
        self.stability_tolerance_us = stability_tolerance_us
        #: Pool-fault ledger for the most recent :meth:`bootstrap` call.
        self.health = ShardHealth()

    # --- internals ---------------------------------------------------------

    @staticmethod
    def _shard_groups(
        traces: Sequence[RadioTrace],
    ) -> Tuple[List[List[int]], List[Optional[int]]]:
        """Trace positions grouped into (building, home channel) leaves.

        Sharding is a parallelism structure, not a correctness one — the
        union + global bridge produce identical output for *any* trace
        partition — so grouping keys off metadata only (the trace's home
        channel plus its ``building_id`` locality stamp, no record scan)
        and channel-hopping traces simply ride in their home shard.
        Campus inputs therefore get ``buildings x channels`` leaves for
        the pool to spread over instead of one fat shard per channel;
        when any trace lacks a building stamp the grouping falls back to
        channel-only, mirroring
        :func:`~repro.core.unify.unifier.partition_traces`.  Returns the
        groups in (building, channel) order plus each group's building
        (all ``None`` on the legacy path).
        """
        keys = [getattr(trace, "building_id", None) for trace in traces]
        use_locality = bool(traces) and all(k is not None for k in keys)
        by_leaf: Dict[Tuple[int, int], List[int]] = {}
        for pos, trace in enumerate(traces):
            building = keys[pos] if use_locality else 0
            by_leaf.setdefault((building, trace.channel), []).append(pos)
        leaves = sorted(by_leaf)
        return (
            [by_leaf[leaf] for leaf in leaves],
            [leaf[0] if use_locality else None for leaf in leaves],
        )

    @staticmethod
    def _bridge_payloads(
        payloads: Sequence[ShardPayload],
        leaf_buildings: Sequence[Optional[int]],
    ) -> Tuple[
        Dict[ReferenceKey, Dict[int, int]],
        Dict[ReferenceKey, ArrivalIndex],
        int,
    ]:
        """Union leaf payloads — building-locally first, then globally.

        The union is order-independent by construction (absolute arrival
        indices, per-radio-disjoint members), so the two-stage fold is
        bit-identical to one flat union; the staging mirrors the merge
        tree's shape and is what a distributed deployment would run
        building-locally before shipping one payload per building to the
        coordinator.  ``payloads`` may hold several widening rounds'
        worth of deltas — round ``r``'s payload for leaf ``i`` sits at
        ``r * n_leaves + i``.
        """
        n_leaves = len(leaf_buildings)
        if not n_leaves or leaf_buildings[0] is None:
            return union_shard_payloads(payloads)
        per_building: Dict[int, List[ShardPayload]] = {}
        for index, payload in enumerate(payloads):
            building = leaf_buildings[index % n_leaves]
            assert building is not None
            per_building.setdefault(building, []).append(payload)
        return union_shard_payloads(
            union_shard_payloads(per_building[building])
            for building in sorted(per_building)
        )

    def _feed_serial(
        self,
        traces: Sequence[RadioTrace],
        groups: Sequence[Sequence[int]],
        shards: Sequence[_BootstrapShard],
        positions: List[int],
        window_us: int,
    ) -> None:
        """Feed every trace's unconsumed window records into its shard."""
        for group, shard in zip(groups, shards):
            for pos in group:
                trace = traces[pos]
                lo = positions[pos]
                records, hi = _window_cutoff(trace, window_us, lo)
                if hi > lo:
                    shard.feed_slice(records, lo, hi, pos, trace.radio_id)
                    positions[pos] = hi

    def _collect_pool(
        self,
        traces: Sequence[RadioTrace],
        groups: Sequence[Sequence[int]],
        positions: List[int],
        window_us: int,
        workers: int,
        handle: Optional[PoolHandle] = None,
    ) -> List[ShardPayload]:
        """Ship each shard's new window records to a pool, in shard order.

        This is the incremental pool widening protocol: the worker pool
        stays **resident** across auto-widen rounds (via ``handle``), and
        each round ships only the delta — the records between the old
        and new window limits — never re-shipping the shard.  A fresh
        per-round :class:`~repro.core.sync.bootstrap._BootstrapShard`
        over just the delta *is* the delta payload: payload unions are
        order-independent with absolute arrival indices, so accumulated
        round payloads reproduce a full re-ship bit for bit
        (``tests/test_hierarchy_parity.py`` holds the property).
        Worker death and missed deadlines are retried / degraded to
        serial per ``retry_policy`` — results come back in shard order
        either way (the union is order-blind anyway; this keeps logs and
        debugging deterministic too).
        """
        shard_prefixes: List[List[Tuple[int, int, int, List[TraceRecord]]]] = []
        for group in groups:
            prefixes: List[Tuple[int, int, int, List[TraceRecord]]] = []
            for pos in group:
                trace = traces[pos]
                lo = positions[pos]
                records, hi = _window_cutoff(trace, window_us, lo)
                if hi > lo:
                    prefixes.append(
                        (pos, trace.radio_id, lo, list(records[lo:hi]))
                    )
                    positions[pos] = hi
            shard_prefixes.append(prefixes)
        return map_shards_with_recovery(
            _collect_shard_prefixes,
            [(prefixes,) for prefixes in shard_prefixes],
            max_workers=workers,
            policy=self.retry_policy,
            health=self.health,
            label="bootstrap",
            handle=handle,
        )

    # --- public API --------------------------------------------------------

    def bootstrap(
        self,
        traces: Sequence[RadioTrace],
        clock_groups: Iterable[Sequence[int]] = (),
        strict: bool = False,
    ) -> BootstrapResult:
        """Compute bootstrap offsets with sharded, single-read collection.

        Bit-identical to
        :func:`~repro.core.sync.bootstrap.bootstrap_synchronization` on
        the same input.  ``strict=True`` raises
        :class:`~repro.core.sync.bootstrap.SyncPartitionError` when the
        reference graph stays partitioned after widening (the Section 6
        pod-reduction failure mode).
        """
        radios = [trace.radio_id for trace in traces]
        island_mode = self.island_mode
        if island_mode is None:
            island_mode = resolve_island_mode(traces)
        locality_of = (
            resolve_locality_map(traces) if island_mode == "local" else None
        )
        groups, leaf_buildings = self._shard_groups(traces)
        workers = resolve_pool_workers(self.max_workers, len(groups))
        clock_groups = [list(g) for g in clock_groups]
        positions = [0] * len(traces)
        window = self.window_us
        self.health = ShardHealth()
        self.health.pool_workers = workers if workers > 1 else 0
        widen_rounds = 0
        ever_unreachable: Set[int] = set()

        serial_shards: List[_BootstrapShard] = []
        pool_payloads: List[ShardPayload] = []
        handle: Optional[PoolHandle] = None
        if workers <= 1:
            serial_shards = [_BootstrapShard() for _ in groups]
        else:
            handle = PoolHandle()

        try:
            while True:
                if workers <= 1:
                    self._feed_serial(
                        traces, groups, serial_shards, positions, window
                    )
                    payloads: List[ShardPayload] = [
                        shard.finish() for shard in serial_shards
                    ]
                else:
                    pool_payloads.extend(
                        self._collect_pool(
                            traces, groups, positions, window, workers,
                            handle,
                        )
                    )
                    payloads = pool_payloads
                sets, order, seen = self._bridge_payloads(
                    payloads, leaf_buildings
                )
                shared = _shared_sets(sets)
                family = _select_covering_family(shared, radios, order)
                offsets, unreachable, quarantined, islands = _resolve_offsets(
                    radios, family, clock_groups,
                    self.stability_tolerance_us,
                    island_mode=island_mode, locality_of=locality_of,
                )
                if (
                    not unreachable
                    or not self.auto_widen
                    or window >= self.max_window_us
                ):
                    if unreachable and strict:
                        raise SyncPartitionError(unreachable)
                    log_quarantine_warning(quarantined, "ShardedBootstrap")
                    return BootstrapResult(
                        offsets_us=offsets,
                        unreachable=unreachable,
                        reference_sets_used=len(family),
                        reference_frames_seen=seen,
                        window_us=window,
                        quarantined=quarantined,
                        islands=islands,
                        rejoined=[
                            r for r in radios
                            if r in ever_unreachable and r in offsets
                        ],
                        widen_rounds=widen_rounds,
                    )
                ever_unreachable.update(unreachable)
                widen_rounds += 1
                window = min(window * 2, self.max_window_us)
        finally:
            if handle is not None:
                handle.close()
