"""Per-radio clock tracking during unification (Section 4.2).

Each radio's trace gets a :class:`ClockTrack`: the bootstrap offset, an
anchor point re-set at every resynchronization, and an EWMA skew estimate.
"Jigsaw pro-actively adjusts the local timestamp of each instance to
compensate for the clock skew on the radio receiving it ... [and uses] an
exponentially weighted moving average of past skew measurements to predict
future skew on a per-instance basis."
"""

from __future__ import annotations

from dataclasses import dataclass

#: EWMA weight for new skew measurements.
DEFAULT_SKEW_ALPHA = 0.2

#: Minimum local-time gap between resyncs for a skew measurement to be
#: meaningful; shorter gaps give noise-dominated slope estimates.
MIN_SKEW_BASELINE_US = 10_000

#: Sanity bound on skew estimates (the standard's 100 PPM, with margin).
MAX_TRACKED_SKEW_PPM = 500.0


@dataclass(slots=True)
class ClockTrack:
    """Maps one radio's local timestamps onto universal time.

    ``slots=True`` because the merge hot loop reads four of these fields
    per record pushed: slot loads shave a dict probe off each.
    """

    radio_id: int
    offset_us: float                 # universal - local at the anchor
    anchor_local_us: float = 0.0     # local time of the last resync
    skew_ppm: float = 0.0            # EWMA skew estimate
    alpha: float = DEFAULT_SKEW_ALPHA
    compensate_skew: bool = True
    resync_count: int = 0
    skew_samples: int = 0
    #: Bumped on every mutation of the mapping.  A caller that cached a
    #: ``universal_us`` result (the merge heap does, at push time) can
    #: compare generations on pop and skip the recomputation when no
    #: resync touched this track in between.
    generation: int = 0

    def universal_us(self, local_us: float) -> float:
        """Predicted universal time for a local timestamp."""
        elapsed = local_us - self.anchor_local_us
        correction = self.skew_ppm * 1e-6 * elapsed if self.compensate_skew else 0.0
        return local_us + self.offset_us + correction

    def resync(self, local_us: float, universal_us: float) -> float:
        """Re-anchor this clock so ``local_us`` maps to ``universal_us``.

        Returns the correction that was applied (universal minus the prior
        prediction) — the per-trace adjustment of Figure 3.  Also folds a
        new skew measurement into the EWMA when the baseline since the last
        resync is long enough to be meaningful.
        """
        predicted = self.universal_us(local_us)
        correction = universal_us - predicted
        baseline = local_us - self.anchor_local_us
        if baseline >= MIN_SKEW_BASELINE_US:
            # Observed slope error over the baseline, in PPM, on top of the
            # compensation already being applied.
            measured = self.skew_ppm + (correction / baseline) * 1e6
            measured = max(-MAX_TRACKED_SKEW_PPM, min(MAX_TRACKED_SKEW_PPM, measured))
            if self.skew_samples == 0:
                self.skew_ppm = measured
            else:
                self.skew_ppm += self.alpha * (measured - self.skew_ppm)
            self.skew_samples += 1
        self.anchor_local_us = local_us
        self.offset_us = universal_us - local_us
        self.resync_count += 1
        self.generation += 1
        return correction
