"""Bootstrap synchronization (Section 4.1).

Establishes a single universal time standard across all radios before
unification begins:

1. examine the first ~second of each trace for *reference frames* —
   unique frames heard by two or more radios;
2. group receptions of the same frame into sets ``E_k`` of
   ``(radio, local timestamp)`` pairs;
3. greedily select a covering family ``G`` of the largest sets;
4. breadth-first-search the radio graph induced by ``G`` from radio ``r1``,
   propagating clock offsets ``T_i`` along edges (each shared frame gives
   ``T_j = T_i + y_i - y_j``);
5. bridge across channels through monitors whose two radios share one
   capture clock (``T_i = T_j`` exactly), since a frame on channel 1 is
   never heard by a radio parked on channel 11.

Radios unreachable from ``r1`` are reported as a partition — the failure
mode the paper hits when reducing to 10 pods (Section 6).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...jtrace.io import RadioTrace
from .refs import ReferenceKey, reference_key

#: Default bootstrap examination window ("the first second of data").
DEFAULT_BOOTSTRAP_WINDOW_US = 1_000_000


class SyncPartitionError(RuntimeError):
    """The reference graph does not connect all radios."""

    def __init__(self, unreachable: Sequence[int]) -> None:
        self.unreachable = list(unreachable)
        super().__init__(
            f"{len(self.unreachable)} radios unreachable during bootstrap: "
            f"{self.unreachable[:8]}{'...' if len(self.unreachable) > 8 else ''}"
        )


@dataclass
class BootstrapResult:
    """Offsets placing every reachable radio on the universal timeline.

    ``offsets_us[r]`` is ``T_r``: universal = local + T_r at bootstrap time.
    """

    offsets_us: Dict[int, float]
    unreachable: List[int] = field(default_factory=list)
    reference_sets_used: int = 0
    reference_frames_seen: int = 0
    window_us: int = DEFAULT_BOOTSTRAP_WINDOW_US

    @property
    def fully_synchronized(self) -> bool:
        return not self.unreachable


def _collect_reference_sets(
    traces: Sequence[RadioTrace], window_us: int
) -> Tuple[Dict[ReferenceKey, Dict[int, int]], int]:
    """Map reference key -> {radio_id: local timestamp} within the window."""
    sets: Dict[ReferenceKey, Dict[int, int]] = defaultdict(dict)
    seen = 0
    for trace in traces:
        first = trace.first_timestamp_us
        if first is None:
            continue
        for record in trace.records:
            if record.timestamp_us - first > window_us:
                break
            key = reference_key(record)
            if key is None:
                continue
            seen += 1
            # A radio hears one transmission once; keep the earliest.
            sets[key].setdefault(trace.radio_id, record.timestamp_us)
    shared = {k: v for k, v in sets.items() if len(v) >= 2}
    return shared, seen


def _select_covering_family(
    shared: Dict[ReferenceKey, Dict[int, int]], radios: Sequence[int]
) -> List[Dict[int, int]]:
    """Pick, per uncovered radio, its largest E_k; stop at full coverage."""
    by_radio: Dict[int, List[ReferenceKey]] = defaultdict(list)
    for key, members in shared.items():
        for radio in members:
            by_radio[radio].append(key)
    covered: Set[int] = set()
    chosen: List[Dict[int, int]] = []
    chosen_keys: Set[ReferenceKey] = set()
    for radio in radios:
        if radio in covered:
            continue
        candidates = by_radio.get(radio)
        if not candidates:
            continue
        best = max(candidates, key=lambda k: len(shared[k]))
        if best not in chosen_keys:
            chosen_keys.add(best)
            chosen.append(shared[best])
            covered.update(shared[best])
    return chosen


def bootstrap_synchronization(
    traces: Sequence[RadioTrace],
    clock_groups: Iterable[Sequence[int]] = (),
    window_us: int = DEFAULT_BOOTSTRAP_WINDOW_US,
    auto_widen: bool = True,
    max_window_us: int = 16_000_000,
) -> BootstrapResult:
    """Compute bootstrap offsets ``T_i`` for every radio.

    ``clock_groups`` lists radios that share one physical capture clock
    (the two radios of one monitor) — infrastructure metadata the real
    deployment has from its driver configuration.  When ``auto_widen`` is
    set and the graph partitions, the examination window doubles (up to
    ``max_window_us``) before giving up, as the paper suggests.
    """
    radios = [trace.radio_id for trace in traces]
    current_window = window_us
    while True:
        shared, seen = _collect_reference_sets(traces, current_window)
        family = _select_covering_family(shared, radios)
        offsets, unreachable = _bfs_offsets(radios, family, clock_groups)
        if not unreachable or not auto_widen or current_window >= max_window_us:
            return BootstrapResult(
                offsets_us=offsets,
                unreachable=unreachable,
                reference_sets_used=len(family),
                reference_frames_seen=seen,
                window_us=current_window,
            )
        current_window = min(current_window * 2, max_window_us)


def _bfs_offsets(
    radios: Sequence[int],
    family: Sequence[Dict[int, int]],
    clock_groups: Iterable[Sequence[int]],
) -> Tuple[Dict[int, float], List[int]]:
    # Edge list: radio -> [(other, delta)] with T_other = T_radio + delta.
    adjacency: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    for members in family:
        items = list(members.items())
        anchor_radio, anchor_ts = items[0]
        for radio, ts in items[1:]:
            delta = float(anchor_ts - ts)   # T_radio = T_anchor + y_anchor - y_radio
            adjacency[anchor_radio].append((radio, delta))
            adjacency[radio].append((anchor_radio, -delta))
    for group in clock_groups:
        group = list(group)
        for a, b in zip(group, group[1:]):
            adjacency[a].append((b, 0.0))
            adjacency[b].append((a, 0.0))

    if not radios:
        return {}, []
    offsets: Dict[int, float] = {radios[0]: 0.0}
    queue = deque([radios[0]])
    while queue:
        radio = queue.popleft()
        base = offsets[radio]
        for other, delta in adjacency.get(radio, ()):
            if other not in offsets:
                offsets[other] = base + delta
                queue.append(other)
    unreachable = [r for r in radios if r not in offsets]
    return offsets, unreachable
