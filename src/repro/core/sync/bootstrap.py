"""Bootstrap synchronization (Section 4.1).

Establishes a single universal time standard across all radios before
unification begins:

1. examine the first ~second of each trace for *reference frames* —
   unique frames heard by two or more radios;
2. group receptions of the same frame into sets ``E_k`` of
   ``(radio, local timestamp)`` pairs;
3. greedily select a covering family ``G`` of the largest sets;
4. breadth-first-search the radio graph induced by ``G`` from radio ``r1``,
   propagating clock offsets ``T_i`` along edges (each shared frame gives
   ``T_j = T_i + y_i - y_j``);
5. bridge across channels through monitors whose two radios share one
   capture clock (``T_i = T_j`` exactly), since a frame on channel 1 is
   never heard by a radio parked on channel 11.

Radios unreachable from ``r1`` are reported as a partition — the failure
mode the paper hits when reducing to 10 pods (Section 6).  Callers that
cannot proceed partitioned pass ``strict=True`` to get a
:class:`SyncPartitionError` instead of a partitioned result.

Collection architecture
-----------------------

Reference-set collection is *incremental and shardable*: a
:class:`_BootstrapShard` consumes records one (or a slice) at a time via
``feed()``/``feed_slice()`` and surrenders its accumulated sets from
``finish()``.  Because a frame on channel 1 is never heard by a radio
parked on channel 11, shards split cleanly by channel; the union of shard
payloads — members are disjoint per radio, arrival order is recorded as
absolute ``(trace position, record index)`` pairs — reproduces the
single-threaded collection exactly, in any merge order.
:mod:`repro.core.sync.sharded` provides the coordinator
(:class:`~repro.core.sync.sharded.ShardedBootstrap`) that runs shards
serially or on a process pool and overlaps collection with trace ingest.

Every downstream step (:func:`_select_covering_family`,
:func:`_bfs_offsets`) is deterministic given the set *values*: tie-breaks
between equal-size reference sets use the recorded arrival order — never
dict insertion order — so serial, sharded and pool execution produce
bit-identical offsets.
"""

from __future__ import annotations

import logging
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...jtrace.io import RadioTrace
from ...jtrace.records import TraceRecord
from .refs import ReferenceKey, reference_key

logger = logging.getLogger(__name__)

#: Default bootstrap examination window ("the first second of data").
DEFAULT_BOOTSTRAP_WINDOW_US = 1_000_000

#: Default clock-fit stability tolerance.  Legitimate skew across even the
#: widest (16 s) examination window at 100 ppm drifts offsets by ~1.6 ms;
#: a radio whose redundant reference edges disagree by more than this is
#: not drifting — its clock stepped (reboot, firmware jump) inside the
#: window, and trusting any single fit for it would smear the timeline.
DEFAULT_STABILITY_TOLERANCE_US = 50_000.0

#: Quarantine reason strings (values of ``BootstrapResult.quarantined``).
QUARANTINE_NO_REFERENCES = "no-references"
QUARANTINE_UNSTABLE_CLOCK = "unstable-clock-fit"

#: Absolute arrival coordinate of a reference set's first sighting:
#: ``(position of the trace in the input sequence, record index)``.  Being
#: absolute — not a collection-order counter — it is identical whether the
#: records were consumed serially, shard-by-shard, or in widening
#: increments.
ArrivalIndex = Tuple[int, int]

#: One shard's collected payload: every reference set seen (singletons
#: included — a set may reach two members only after a cross-shard union),
#: its first-arrival index, and the count of qualifying records.
ShardPayload = Tuple[Dict[ReferenceKey, Dict[int, int]], Dict[ReferenceKey, ArrivalIndex], int]


class SyncPartitionError(RuntimeError):
    """The reference graph does not connect all radios."""

    def __init__(self, unreachable: Sequence[int]) -> None:
        self.unreachable = list(unreachable)
        super().__init__(
            f"{len(self.unreachable)} radios unreachable during bootstrap: "
            f"{self.unreachable[:8]}{'...' if len(self.unreachable) > 8 else ''}"
        )


@dataclass
class BootstrapResult:
    """Offsets placing every reachable radio on the universal timeline.

    ``offsets_us[r]`` is ``T_r``: universal = local + T_r at bootstrap time.

    Degraded-mode fields (all empty on a fully-connected bootstrap):
    ``quarantined`` maps each radio left off the timeline to *why* —
    ``"no-references"`` (it shares no usable frame with anyone),
    ``"sync-island:<k>"`` (it synchronized fine, but only within a
    reference-graph island disconnected from the primary one), or
    ``"unstable-clock-fit"`` (its redundant reference edges disagree
    beyond the stability tolerance — a stepped clock).  ``islands`` lists
    the connected components of the reference graph in discovery order
    (the primary island first is *not* guaranteed; it is the largest).
    ``rejoined`` lists radios that were unreachable in an earlier
    auto-widen round but gained references when the window grew —
    the late-rejoin path.  ``unreachable`` remains the plain list of
    radios without offsets (the union of all quarantine reasons),
    preserving its historical meaning.
    """

    offsets_us: Dict[int, float]
    unreachable: List[int] = field(default_factory=list)
    reference_sets_used: int = 0
    reference_frames_seen: int = 0
    window_us: int = DEFAULT_BOOTSTRAP_WINDOW_US
    quarantined: Dict[int, str] = field(default_factory=dict)
    islands: List[List[int]] = field(default_factory=list)
    rejoined: List[int] = field(default_factory=list)
    widen_rounds: int = 0

    @property
    def fully_synchronized(self) -> bool:
        return not self.unreachable

    def to_state(self) -> dict:
        """A plain-data (JSON-able) snapshot of the offset ledger.

        The service checkpoint codec stores bootstrap state through this
        explicit schema rather than opaque object pickling, so the
        on-disk checkpoint format stays inspectable and versionable:
        radio ids become string keys (JSON objects key by string), and
        :meth:`from_state` restores them exactly.
        """
        return {
            "offsets_us": {str(r): t for r, t in self.offsets_us.items()},
            "unreachable": list(self.unreachable),
            "reference_sets_used": self.reference_sets_used,
            "reference_frames_seen": self.reference_frames_seen,
            "window_us": self.window_us,
            "quarantined": {str(r): why for r, why in self.quarantined.items()},
            "islands": [list(island) for island in self.islands],
            "rejoined": list(self.rejoined),
            "widen_rounds": self.widen_rounds,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BootstrapResult":
        """Rebuild a result from :meth:`to_state` output (exact inverse)."""
        return cls(
            offsets_us={int(r): t for r, t in state["offsets_us"].items()},
            unreachable=list(state["unreachable"]),
            reference_sets_used=state["reference_sets_used"],
            reference_frames_seen=state["reference_frames_seen"],
            window_us=state["window_us"],
            quarantined={int(r): why for r, why in state["quarantined"].items()},
            islands=[list(island) for island in state["islands"]],
            rejoined=list(state["rejoined"]),
            widen_rounds=state["widen_rounds"],
        )


class _BootstrapShard:
    """Incremental reference-set collector for one channel shard.

    Consumes records via :meth:`feed` (or the batch fast path
    :meth:`feed_slice`) and accumulates ``E_k`` member sets keyed by
    reference content.  The caller owns window gating — a shard never
    rejects a record — which is what lets the auto-widen loop continue
    feeding exactly the records between the old and new window limits
    instead of re-reading from the start.
    """

    __slots__ = ("_sets", "_order", "_seen")

    def __init__(self) -> None:
        self._sets: Dict[ReferenceKey, Dict[int, int]] = {}
        self._order: Dict[ReferenceKey, ArrivalIndex] = {}
        self._seen = 0

    def feed(
        self,
        record: TraceRecord,
        radio_id: int,
        trace_pos: int = 0,
        record_idx: int = 0,
    ) -> None:
        """Collect one record of radio ``radio_id``, if it qualifies."""
        self.feed_slice(
            (record,), 0, 1, trace_pos, radio_id, index_base=record_idx
        )

    def feed_slice(
        self,
        records: Sequence[TraceRecord],
        lo: int,
        hi: int,
        trace_pos: int,
        radio_id: int,
        index_base: int = 0,
    ) -> None:
        """Batch fast path: collect ``records[lo:hi]`` of one trace.

        The caller has already resolved the window cutoff (one bisect per
        trace per widen round), so this loop carries no per-record window
        compare — the hot path of the prepass.  ``radio_id`` is the
        *owning trace's* radio — the attribution the merge engine also
        uses — not the record's own field, so a mislabeled record cannot
        smuggle a foreign radio into the offset graph.  ``index_base``
        re-anchors a shipped sub-slice at its absolute record index
        (pool workers receive ``records[lo:hi]`` as a fresh list
        starting at 0).
        """
        sets = self._sets
        order = self._order
        ref_key = reference_key
        seen = 0
        for idx in range(lo, hi):
            record = records[idx]
            key = ref_key(record)
            if key is None:
                continue
            seen += 1
            members = sets.get(key)
            if members is None:
                sets[key] = {radio_id: record.timestamp_us}
                order[key] = (trace_pos, index_base + idx)
            else:
                # A radio hears one transmission once; keep the earliest.
                members.setdefault(radio_id, record.timestamp_us)
                # A widening round can sight a key at an earlier
                # (trace, record) coordinate than the round that created
                # it; arrival order is the global minimum so incremental
                # feeding matches a from-scratch collection.
                arrival = (trace_pos, index_base + idx)
                if arrival < order[key]:
                    order[key] = arrival
        self._seen += seen

    def finish(self) -> ShardPayload:
        """This shard's accumulated payload (shareable, not consumed)."""
        return self._sets, self._order, self._seen


def union_shard_payloads(
    payloads: Iterable[ShardPayload],
) -> Tuple[Dict[ReferenceKey, Dict[int, int]], Dict[ReferenceKey, ArrivalIndex], int]:
    """Union shard payloads into one global collection.

    Order-independent by construction: a radio's records live in exactly
    one shard, so member dicts merge disjointly; arrival indices are
    absolute, so a cross-shard content collision keeps the globally
    earliest sighting regardless of merge order.
    """
    sets: Dict[ReferenceKey, Dict[int, int]] = {}
    order: Dict[ReferenceKey, ArrivalIndex] = {}
    seen = 0
    merged: Set[ReferenceKey] = set()
    for shard_sets, shard_order, shard_seen in payloads:
        seen += shard_seen
        for key, members in shard_sets.items():
            existing = sets.get(key)
            if existing is None:
                sets[key] = members
                order[key] = shard_order[key]
            elif existing is not members:
                # Cross-shard content collision (rare): merge into a copy
                # so the shard's own accumulator is never mutated.
                if key not in merged:
                    existing = dict(existing)
                    sets[key] = existing
                    merged.add(key)
                for radio, ts in members.items():
                    existing.setdefault(radio, ts)
                if shard_order[key] < order[key]:
                    order[key] = shard_order[key]
    return sets, order, seen


def _collect_reference_sets(
    traces: Sequence[RadioTrace], window_us: int
) -> Tuple[Dict[ReferenceKey, Dict[int, int]], Dict[ReferenceKey, ArrivalIndex], int]:
    """Map reference key -> {radio_id: local timestamp} within the window.

    The single-threaded reference implementation: one shard fed every
    trace in order.  Returns all sets (callers filter to the shared ones)
    plus the arrival-order index used for deterministic tie-breaking.
    """
    shard = _BootstrapShard()
    for trace_pos, trace in enumerate(traces):
        first = trace.first_timestamp_us
        if first is None:
            continue
        records = trace.records
        limit = first + window_us
        hi = 0
        for record in records:
            if record.timestamp_us > limit:
                break
            hi += 1
        shard.feed_slice(records, 0, hi, trace_pos, trace.radio_id)
    return shard.finish()


def _shared_sets(
    sets: Dict[ReferenceKey, Dict[int, int]],
) -> Dict[ReferenceKey, Dict[int, int]]:
    """Only the sets heard by two or more radios synchronize anything."""
    return {k: v for k, v in sets.items() if len(v) >= 2}


def _select_covering_family(
    shared: Dict[ReferenceKey, Dict[int, int]],
    radios: Sequence[int],
    order: Optional[Dict[ReferenceKey, ArrivalIndex]] = None,
) -> List[Dict[int, int]]:
    """Pick, per uncovered radio, its largest E_k; stop at full coverage.

    Tie-breaking between equal-size reference sets is by earliest arrival
    (``order``), which is a property of the data — not of dict insertion
    order — so the same family is chosen no matter how the sets were
    collected or merged.
    """
    if order is None:  # arbitrary but fixed: keys are plain value tuples
        order = {key: (0, i) for i, key in enumerate(sorted(shared))}
    by_radio: Dict[int, List[ReferenceKey]] = defaultdict(list)
    for key, members in shared.items():
        for radio in members:
            by_radio[radio].append(key)
    covered: Set[int] = set()
    chosen: List[Dict[int, int]] = []
    chosen_keys: Set[ReferenceKey] = set()
    for radio in radios:
        if radio in covered:
            continue
        candidates = by_radio.get(radio)
        if not candidates:
            continue
        best = min(candidates, key=lambda k: (-len(shared[k]), order[k]))
        if best not in chosen_keys:
            chosen_keys.add(best)
            chosen.append(shared[best])
            covered.update(shared[best])
    return chosen


def bootstrap_synchronization(
    traces: Sequence[RadioTrace],
    clock_groups: Iterable[Sequence[int]] = (),
    window_us: int = DEFAULT_BOOTSTRAP_WINDOW_US,
    auto_widen: bool = True,
    max_window_us: int = 16_000_000,
    strict: bool = False,
    stability_tolerance_us: float = DEFAULT_STABILITY_TOLERANCE_US,
    island_mode: Optional[str] = None,
) -> BootstrapResult:
    """Compute bootstrap offsets ``T_i`` for every radio (single-threaded).

    ``clock_groups`` lists radios that share one physical capture clock
    (the two radios of one monitor) — infrastructure metadata the real
    deployment has from its driver configuration.  When ``auto_widen`` is
    set and the graph partitions, the examination window doubles (up to
    ``max_window_us``) before giving up, as the paper suggests.  With
    ``strict=True`` a still-partitioned graph raises
    :class:`SyncPartitionError` (the Section 6 pod-reduction failure)
    instead of returning a partial result.

    Non-strict partitions resolve per ``island_mode``.  ``"quarantine"``
    is degraded mode: the largest reference-graph island becomes the
    primary timeline and every other radio is quarantined with a reason
    (``BootstrapResult.quarantined``).  ``"local"`` expects one island
    per *locality* (``building_id`` stamp): each locality's primary
    island synchronizes on its own local timeline (its root at
    ``T = 0``), while radios fragmented off their locality's primary
    island remain unreachable — auto-widen still heals intra-building
    partitions, which are failures in any mode.  This is campus
    semantics: RF-isolated buildings can never share references, and
    cross-island timestamp alignment is physically meaningless (no frame
    spans islands, so the merge never compares timestamps across
    them).  The default (``None``)
    picks ``"local"`` exactly when every trace carries a ``building_id``
    locality stamp — the stamp is the caller's declaration that the
    fleet spans isolated localities — and ``"quarantine"`` otherwise.
    In both modes radios whose clock fit is internally inconsistent
    beyond ``stability_tolerance_us`` are evicted as
    ``unstable-clock-fit``.  Radios that were unreachable in an early
    auto-widen round but gained references when the window grew are
    reported in ``rejoined``.

    This is the reference implementation the channel-sharded coordinator
    (:class:`~repro.core.sync.sharded.ShardedBootstrap`) is held
    bit-identical to; prefer the coordinator for large fleets — it makes
    a single pass over each trace even when the window widens.
    """
    radios = [trace.radio_id for trace in traces]
    if island_mode is None:
        island_mode = resolve_island_mode(traces)
    locality_of = resolve_locality_map(traces) if island_mode == "local" else None
    current_window = window_us
    widen_rounds = 0
    ever_unreachable: Set[int] = set()
    while True:
        sets, order, seen = _collect_reference_sets(traces, current_window)
        shared = _shared_sets(sets)
        family = _select_covering_family(shared, radios, order)
        offsets, unreachable, quarantined, islands = _resolve_offsets(
            radios, family, clock_groups, stability_tolerance_us,
            island_mode=island_mode, locality_of=locality_of,
        )
        if not unreachable or not auto_widen or current_window >= max_window_us:
            if unreachable and strict:
                raise SyncPartitionError(unreachable)
            log_quarantine_warning(quarantined, "bootstrap_synchronization")
            return BootstrapResult(
                offsets_us=offsets,
                unreachable=unreachable,
                reference_sets_used=len(family),
                reference_frames_seen=seen,
                window_us=current_window,
                quarantined=quarantined,
                islands=islands,
                rejoined=[
                    r for r in radios
                    if r in ever_unreachable and r in offsets
                ],
                widen_rounds=widen_rounds,
            )
        ever_unreachable.update(unreachable)
        widen_rounds += 1
        current_window = min(current_window * 2, max_window_us)


def resolve_island_mode(traces: Sequence[RadioTrace]) -> str:
    """The default island policy for a fleet: campus inputs sync locally.

    ``"local"`` when every trace carries a ``building_id`` locality stamp
    (the campus composition's declaration that the fleet spans
    RF-isolated buildings, each its own expected reference island),
    ``"quarantine"`` otherwise (one building — a partition is a failure,
    degraded mode keeps only the largest island's timeline).  Both
    bootstrap implementations share this rule so they stay bit-identical
    on the same input.
    """
    if traces and all(
        getattr(trace, "building_id", None) is not None for trace in traces
    ):
        return "local"
    return "quarantine"


def resolve_locality_map(
    traces: Sequence[RadioTrace],
) -> Optional[Dict[int, int]]:
    """radio id -> locality stamp, or ``None`` when any stamp is missing."""
    stamps = {
        trace.radio_id: getattr(trace, "building_id", None) for trace in traces
    }
    if not stamps or any(value is None for value in stamps.values()):
        return None
    return stamps  # type: ignore[return-value]


def _build_adjacency(
    radios: Sequence[int],
    family: Sequence[Dict[int, int]],
    clock_groups: Iterable[Sequence[int]],
) -> Dict[int, List[Tuple[int, float]]]:
    # Edge list: radio -> [(other, delta)] with T_other = T_radio + delta.
    # Members are anchored in trace order (the order radios appear in the
    # input sequence) — the deterministic equivalent of the collection
    # insertion order, valid for any shard merge order.
    position = {radio: pos for pos, radio in enumerate(radios)}
    adjacency: Dict[int, List[Tuple[int, float]]] = defaultdict(list)
    for members in family:
        items = sorted(members.items(), key=lambda kv: position[kv[0]])
        anchor_radio, anchor_ts = items[0]
        for radio, ts in items[1:]:
            delta = float(anchor_ts - ts)   # T_radio = T_anchor + y_anchor - y_radio
            adjacency[anchor_radio].append((radio, delta))
            adjacency[radio].append((anchor_radio, -delta))
    for group in clock_groups:
        group = list(group)
        for a, b in zip(group, group[1:]):
            adjacency[a].append((b, 0.0))
            adjacency[b].append((a, 0.0))
    return adjacency


def _offsets_from(
    start: int, adjacency: Dict[int, List[Tuple[int, float]]]
) -> Dict[int, float]:
    """BFS offset propagation from ``start`` (``T_start = 0``)."""
    offsets: Dict[int, float] = {start: 0.0}
    queue = deque([start])
    while queue:
        radio = queue.popleft()
        base = offsets[radio]
        for other, delta in adjacency.get(radio, ()):
            if other not in offsets:
                offsets[other] = base + delta
                queue.append(other)
    return offsets


def _island_partition(
    radios: Sequence[int], adjacency: Dict[int, List[Tuple[int, float]]]
) -> List[List[int]]:
    """Connected components of the reference graph, in discovery order.

    Components are seeded by scanning ``radios`` in trace order and each
    component lists its members in BFS discovery order, so the partition
    is deterministic for any shard merge order (the adjacency lists are
    themselves trace-order anchored).
    """
    islands: List[List[int]] = []
    assigned: Set[int] = set()
    for seed in radios:
        if seed in assigned:
            continue
        members = [seed]
        assigned.add(seed)
        queue = deque([seed])
        while queue:
            radio = queue.popleft()
            for other, _delta in adjacency.get(radio, ()):
                if other not in assigned:
                    assigned.add(other)
                    members.append(other)
                    queue.append(other)
        islands.append(members)
    return islands


def _unstable_radios(
    offsets: Dict[int, float],
    adjacency: Dict[int, List[Tuple[int, float]]],
    tolerance_us: float,
) -> Set[int]:
    """Radios whose redundant reference edges contradict their BFS fit.

    The BFS uses a spanning tree of the reference graph; every non-tree
    edge is a consistency check for free: for an edge ``a -> (b, delta)``
    the fit predicts ``offsets[b] - offsets[a] == delta`` up to legitimate
    skew.  A residual beyond ``tolerance_us`` means at least one endpoint's
    clock stepped inside the window.  A radio is condemned only when the
    violations are *its* pattern, not a neighbor's: it must have at least
    one violated edge and violations on at least half its edges.
    """
    degree: Dict[int, int] = defaultdict(int)
    violations: Dict[int, int] = defaultdict(int)
    for radio, edges in adjacency.items():
        if radio not in offsets:
            continue
        for other, delta in edges:
            if other not in offsets:
                continue
            degree[radio] += 1
            residual = offsets[other] - offsets[radio] - delta
            if abs(residual) > tolerance_us:
                violations[radio] += 1
    return {
        radio
        for radio, bad in violations.items()
        if bad >= 1 and 2 * bad >= degree[radio]
    }


def _resolve_offsets(
    radios: Sequence[int],
    family: Sequence[Dict[int, int]],
    clock_groups: Iterable[Sequence[int]],
    stability_tolerance_us: float = DEFAULT_STABILITY_TOLERANCE_US,
    island_mode: str = "quarantine",
    locality_of: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, float], List[int], Dict[int, str], List[List[int]]]:
    """Offset resolution over the reference-graph islands.

    ``island_mode="quarantine"`` (degraded mode): instead of hard-failing
    on a partition, synchronize the *largest* island of the reference
    graph (ties go to the earliest-discovered island, which for a
    connected graph — or the historical tests' equal splits — reproduces
    the old BFS-from-``radios[0]`` result exactly) and quarantine
    everyone else with a reason.  ``island_mode="local"`` (campus mode):
    one timeline per declared *locality* — each locality's primary
    island (the one holding the plurality of its radios; ties to the
    earliest discovered) synchronizes rooted at its earliest-discovered
    member, while radios fragmented off their locality's primary island
    stay unreachable (so auto-widen keeps working on intra-locality
    partitions, which are still failures) and are quarantined with a
    reason if the window cannot heal them.  Without a ``locality_of``
    map, local mode treats every multi-radio island as its own locality.
    In both modes radios whose clock fit is unstable (see
    :func:`_unstable_radios`) are evicted and the resolution re-run once
    without them, so one rebooting radio cannot drag its island's
    timeline around.

    Returns ``(offsets, unreachable, quarantined, islands)``.
    """
    if island_mode not in ("quarantine", "local"):
        raise ValueError(f"unknown island_mode {island_mode!r}")
    if not radios:
        return {}, [], {}, []
    clock_groups = [list(g) for g in clock_groups]

    def local_roots(islands: List[List[int]]) -> List[int]:
        """Indexes of the islands local mode synchronizes."""
        if locality_of is None:
            return [i for i, members in enumerate(islands) if len(members) > 1]
        # Primary island per locality: plurality of the locality's
        # radios, ties to the earliest-discovered island.
        votes: Dict[int, Dict[int, int]] = {}
        for index, members in enumerate(islands):
            for radio in members:
                tally = votes.setdefault(locality_of[radio], {})
                tally[index] = tally.get(index, 0) + 1
        primaries = {
            max(tally, key=lambda i: (tally[i], -i))
            for tally in votes.values()
        }
        return sorted(primaries)

    def resolve(
        active: Sequence[int],
        active_family: Sequence[Dict[int, int]],
        active_clock_groups: Iterable[Sequence[int]],
    ) -> Tuple[Dict[int, float], List[List[int]], Dict[int, List[Tuple[int, float]]]]:
        adjacency = _build_adjacency(active, active_family, active_clock_groups)
        islands = _island_partition(active, adjacency)
        offsets: Dict[int, float] = {}
        if island_mode == "local":
            for index in local_roots(islands):
                offsets.update(_offsets_from(islands[index][0], adjacency))
        else:
            primary = max(
                range(len(islands)), key=lambda i: (len(islands[i]), -i)
            )
            offsets = _offsets_from(islands[primary][0], adjacency)
        return offsets, islands, adjacency

    offsets, islands, adjacency = resolve(radios, family, clock_groups)

    unstable = _unstable_radios(offsets, adjacency, stability_tolerance_us)
    if unstable:
        # Re-resolve once without the unstable radios.  The family is
        # re-filtered — not edge-pruned — so two stable radios joined only
        # through an unstable anchor's reference set stay connected (the
        # set still covers both; only the bad clock's sample is dropped).
        active = [r for r in radios if r not in unstable]
        active_family = []
        for members in family:
            kept = {r: ts for r, ts in members.items() if r not in unstable}
            if len(kept) >= 2:
                active_family.append(kept)
        active_groups = [
            [r for r in group if r not in unstable] for group in clock_groups
        ]
        offsets, islands, _ = resolve(active, active_family, active_groups)

    island_of: Dict[int, int] = {}
    for k, members in enumerate(islands):
        for radio in members:
            island_of[radio] = k
    quarantined: Dict[int, str] = {}
    for radio in radios:
        if radio in offsets:
            continue
        if radio in unstable:
            quarantined[radio] = QUARANTINE_UNSTABLE_CLOCK
        elif len(islands[island_of[radio]]) == 1:
            quarantined[radio] = QUARANTINE_NO_REFERENCES
        else:
            quarantined[radio] = f"sync-island:{island_of[radio]}"
    unreachable = [r for r in radios if r not in offsets]
    return offsets, unreachable, quarantined, islands


def _bfs_offsets(
    radios: Sequence[int],
    family: Sequence[Dict[int, int]],
    clock_groups: Iterable[Sequence[int]],
) -> Tuple[Dict[int, float], List[int]]:
    """Historical single-BFS resolution (from ``radios[0]``, no islands)."""
    if not radios:
        return {}, []
    adjacency = _build_adjacency(radios, family, clock_groups)
    offsets = _offsets_from(radios[0], adjacency)
    unreachable = [r for r in radios if r not in offsets]
    return offsets, unreachable


def log_quarantine_warning(
    quarantined: Dict[int, str], source: str
) -> None:
    """One-line operator-facing warning when radios were left behind."""
    if not quarantined:
        return
    preview = ", ".join(
        f"{radio}:{reason}" for radio, reason in list(quarantined.items())[:6]
    )
    more = "..." if len(quarantined) > 6 else ""
    logger.warning(
        "%s: %d radio(s) quarantined off the primary timeline [%s%s]",
        source, len(quarantined), preview, more,
    )
