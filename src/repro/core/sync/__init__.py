"""Synchronization: reference frames, bootstrap, clock tracking."""

from .bootstrap import (
    BootstrapResult,
    DEFAULT_BOOTSTRAP_WINDOW_US,
    SyncPartitionError,
    bootstrap_synchronization,
)
from .refs import ReferenceKey, content_key, parse_record_frame, reference_key
from .skew import ClockTrack, DEFAULT_SKEW_ALPHA

__all__ = [
    "BootstrapResult",
    "DEFAULT_BOOTSTRAP_WINDOW_US",
    "SyncPartitionError",
    "bootstrap_synchronization",
    "ReferenceKey",
    "content_key",
    "parse_record_frame",
    "reference_key",
    "ClockTrack",
    "DEFAULT_SKEW_ALPHA",
]
