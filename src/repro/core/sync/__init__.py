"""Synchronization: reference frames, bootstrap, clock tracking."""

from .bootstrap import (
    BootstrapResult,
    DEFAULT_BOOTSTRAP_WINDOW_US,
    DEFAULT_STABILITY_TOLERANCE_US,
    QUARANTINE_NO_REFERENCES,
    QUARANTINE_UNSTABLE_CLOCK,
    SyncPartitionError,
    bootstrap_synchronization,
    resolve_island_mode,
    union_shard_payloads,
)
from .refs import ReferenceKey, content_key, parse_record_frame, reference_key
from .sharded import ShardedBootstrap, resolve_pool_workers
from .skew import ClockTrack, DEFAULT_SKEW_ALPHA

__all__ = [
    "BootstrapResult",
    "DEFAULT_BOOTSTRAP_WINDOW_US",
    "DEFAULT_STABILITY_TOLERANCE_US",
    "QUARANTINE_NO_REFERENCES",
    "QUARANTINE_UNSTABLE_CLOCK",
    "ShardedBootstrap",
    "SyncPartitionError",
    "bootstrap_synchronization",
    "resolve_island_mode",
    "resolve_pool_workers",
    "union_shard_payloads",
    "ReferenceKey",
    "content_key",
    "parse_record_frame",
    "reference_key",
    "ClockTrack",
    "DEFAULT_SKEW_ALPHA",
]
