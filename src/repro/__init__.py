"""repro — a full reproduction of Jigsaw (SIGCOMM 2006).

Jigsaw merges traces from 150+ passive 802.11 radio monitors into a single
microsecond-synchronized global trace and reconstructs link- and
transport-layer conversations from it.  This package implements both the
Jigsaw algorithms (:mod:`repro.core`) and the substrates they need — an
802.11b/g MAC/PHY simulator, a building-scale scenario generator, imperfect
monitor clocks, and a jigdump-style trace format — so that the paper's
entire pipeline and evaluation can run on a laptop.

Quickstart::

    from repro.sim import ScenarioConfig, run_scenario
    from repro.core import JigsawPipeline

    artifacts = run_scenario(ScenarioConfig.small(seed=7))
    report = JigsawPipeline().run(artifacts.radio_traces)
    print(report.summary())
"""

__version__ = "1.0.0"
