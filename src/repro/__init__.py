"""repro — a full reproduction of Jigsaw (SIGCOMM 2006).

Jigsaw merges traces from 150+ passive 802.11 radio monitors into a single
microsecond-synchronized global trace and reconstructs link- and
transport-layer conversations from it.  This package implements both the
Jigsaw algorithms (:mod:`repro.core`) and the substrates they need — an
802.11b/g MAC/PHY simulator, a building-scale scenario generator, imperfect
monitor clocks, and a jigdump-style trace format — so that the paper's
entire pipeline and evaluation can run on a laptop.

Quickstart::

    from repro.sim import ScenarioConfig, run_scenario
    from repro.core import JigsawPipeline

    artifacts = run_scenario(ScenarioConfig.small(seed=7))
    report = JigsawPipeline().run(artifacts.radio_traces)
    print(report.summary())
"""

from .core import (
    HealthReport,
    JFrame,
    JigsawPipeline,
    JigsawReport,
    MaterializePass,
    PassContext,
    PipelinePass,
    RetryPolicy,
    run_passes,
)
from .jtrace import RadioTrace, RecordKind, StreamingRadioTrace, TraceRecord

__version__ = "1.0.0"

# The headline API, re-exported so the quickstart's imports resolve from
# the package root.  The package ships a ``py.typed`` marker (PEP 561):
# downstream type checkers see these names with their full annotations.
__all__ = [
    "HealthReport",
    "JFrame",
    "JigsawPipeline",
    "JigsawReport",
    "MaterializePass",
    "PassContext",
    "PipelinePass",
    "RadioTrace",
    "RecordKind",
    "RetryPolicy",
    "StreamingRadioTrace",
    "TraceRecord",
    "run_passes",
    "__version__",
]
