"""Experiment F7 — Figure 7: coverage vs number of sensor pods.

Paper: shrinking 39 -> 30 -> 20 pods (156 -> 120 -> 80 radios) keeps AP
coverage high (~94%) while client coverage collapses 92% -> 71% -> 68%;
"reducing to 10 pods creates partitions in the synchronization bootstrap
trees, preventing complete trace unification."  We reproduce both the
coverage trend and the 10-pod partition failure.
"""

from __future__ import annotations

from typing import Sequence

from ..core.analysis.coverage import PodReductionResult, pod_reduction_coverage
from .common import ExperimentRun, get_building_run

#: The paper's configurations plus the partitioning one.
PAPER_POD_COUNTS = (39, 30, 20, 10)


def run_fig7(
    run: ExperimentRun = None,
    pod_counts: Sequence[int] = PAPER_POD_COUNTS,
) -> PodReductionResult:
    run = run or get_building_run()
    return pod_reduction_coverage(run.artifacts, pod_counts)


def main() -> None:
    result = run_fig7()
    print("=== Figure 7: coverage vs pod count ===")
    print(result.format_table())
    print()
    print("paper shape checks:")
    print("  AP coverage stays high as pods shrink; client coverage drops")
    print("  (paper: APs ~94% throughout; clients 92% -> 71% -> 68%)")
    print("  10 pods: bootstrap partitions (paper: 'creates partitions in")
    print("  the synchronization bootstrap trees')")


if __name__ == "__main__":
    main()
