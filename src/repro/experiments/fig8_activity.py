"""Experiment F8 — Figure 8: diurnal activity and traffic mix.

Paper: one-minute bins over a day show (a) active clients/APs following a
diurnal curve — busy 10am-5pm, a floor of always-on devices overnight —
and (b) bursty data traffic against constant beacon traffic and prominent
ARP broadcast traffic.  Our compressed day maps those bins onto fractions
of the simulated duration; the airtime analysis also checks the Section
7.1 claim that broadcasts eat ~10% of any monitor's channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.analysis.activity import (
    ActivityTimeline,
    activity_timeline,
    broadcast_airtime_share,
)
from .common import ExperimentRun, get_building_run

#: Bins per "day" — the compressed analogue of the paper's minutes.
BINS_PER_DAY = 24


@dataclass
class Fig8Result:
    timeline: ActivityTimeline
    airtime_share: Dict[int, float]

    def busiest_over_quietest_clients(self) -> float:
        series = [b.n_active_clients for b in self.timeline.bins]
        low = min(series)
        high = max(series)
        return high / max(1, low)


def run_fig8(run: ExperimentRun = None) -> Fig8Result:
    run = run or get_building_run()
    bin_us = max(1, run.duration_us // BINS_PER_DAY)
    timeline = activity_timeline(run.report, run.duration_us, bin_us=bin_us)
    share = broadcast_airtime_share(run.report, run.duration_us)
    return Fig8Result(timeline=timeline, airtime_share=share)


def main() -> None:
    result = run_fig8()
    print("=== Figure 8: activity time series ===")
    print(result.timeline.format_table())
    print()
    print("broadcast airtime share per channel "
          "(paper: ~10% of any monitor's channel):")
    for channel, share in result.airtime_share.items():
        print(f"  ch{channel}: {100 * share:.1f}%")


if __name__ == "__main__":
    main()
