"""Experiment F11 — Figure 11: TCP loss rate decomposition.

Paper: across flows that complete a handshake, splitting each TCP loss
into its wireless or wired origin shows "as expected — that the wireless
component of TCP loss is dominant."
"""

from __future__ import annotations

from ..core.analysis.tcploss import TcpLossResult, analyze_tcp_loss
from .common import ExperimentRun, get_building_run


def run_fig11(run: ExperimentRun = None) -> TcpLossResult:
    run = run or get_building_run()
    return analyze_tcp_loss(run.report)


def main() -> None:
    result = run_fig11()
    print("=== Figure 11: TCP loss decomposition ===")
    print(result.format_table())
    print()
    print("per-flow total loss-rate CDF:")
    xs = result.loss_rate_cdf()
    for q in (50, 75, 90, 99):
        if xs:
            idx = min(len(xs) - 1, int(q / 100 * len(xs)))
            print(f"  p{q}: {xs[idx]:.3f}")


if __name__ == "__main__":
    main()
