"""Experiment T1 — Table 1: trace summary characteristics.

Paper values for the 24-hour trace: 2.7 B raw events, >47% physical/CRC
errors, 1.58 B events unified into 530 M jframes (2.97 events/jframe),
1,026 client MACs.  Absolute counts scale with trace length and building
size; the *shape* checks are the error share being substantial and the
events-per-jframe ratio around three ("on average the monitoring platform
makes three observations of every observed transmission").
"""

from __future__ import annotations

from ..core.analysis.summary import TraceSummary, summarize
from .common import ExperimentRun, get_building_run


def run_table1(run: ExperimentRun = None) -> TraceSummary:
    run = run or get_building_run()
    return summarize(
        run.report, run.artifacts.radio_traces, run.duration_us
    )


def main() -> None:
    summary = run_table1()
    print("=== Table 1: trace summary ===")
    print(summary.format_table())
    print()
    print("paper shape checks:")
    print(f"  error share substantial: {summary.error_event_fraction:.2f} "
          f"(paper: 0.47)")
    print(f"  events/jframe ~3:        {summary.events_per_jframe:.2f} "
          f"(paper: 2.97)")


if __name__ == "__main__":
    main()
