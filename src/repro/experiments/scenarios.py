"""Experiment S1 — the scenario-family sweep.

Reproduction credibility comes from sweeping scenario *families*, not one
canonical run: the registry's workload families
(:mod:`repro.sim.registry`) each stress a different slice of the paper's
analyses, and this module runs the reconstruction across all of them.

Two entry points:

* :func:`get_family_run` — one cached simulate+reconstruct per
  (family, scale, seed), shared with the table/figure benchmarks via the
  common run cache (whose fingerprint includes the family name and the
  registry schema version);
* :func:`run_family_sweep` — per-family merge throughput through the
  sharded streaming engine, persisted by the benchmark suite to
  ``BENCH_merge.json``'s ``scenario_sweep`` section so the workload
  surface the merge is validated against is tracked across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.registry import REGISTRY, SCENARIO_SCHEMA_VERSION, scenario_config
from .common import DEFAULT_SEED, ExperimentRun, get_run
from .perf import MergePerformance, _measure


def get_family_run(
    family: str,
    scale: str = "small",
    seed: int = DEFAULT_SEED,
    **overrides,
) -> ExperimentRun:
    """The cached simulate+reconstruct for one registered family."""
    return get_run(
        f"family:{family}:{scale}",
        lambda: scenario_config(family, scale=scale, seed=seed, **overrides),
        seed=seed,
        family=family,
    )


@dataclass
class FamilySweepPoint:
    """Merge performance on one family's trace, plus scenario vitals."""

    family: str
    scale: str
    merge: MergePerformance
    flows_reconstructed: int
    roam_events: int

    def as_dict(self) -> dict:
        payload = self.merge.as_dict()
        payload.update(
            family=self.family,
            scale=self.scale,
            flows_reconstructed=self.flows_reconstructed,
            roam_events=self.roam_events,
        )
        return payload


def run_family_sweep(
    scale: str = "small",
    seed: int = DEFAULT_SEED,
    families: Optional[Sequence[str]] = None,
    max_workers: Optional[int] = None,
) -> List[FamilySweepPoint]:
    """Merge every registered family's trace; report per-family throughput.

    The simulation and reconstruction are cached (shared with the other
    experiments); only the merge under measurement is timed, exactly as
    :func:`repro.experiments.perf.run_merge_performance` does for the
    canonical building run.
    """
    points: List[FamilySweepPoint] = []
    for name in families if families is not None else REGISTRY.names():
        run = get_family_run(name, scale=scale, seed=seed)
        merge = _measure(
            run.artifacts.radio_traces,
            run.duration_us,
            run.artifacts.clock_groups(),
            max_workers,
        )
        points.append(
            FamilySweepPoint(
                family=name,
                scale=scale,
                merge=merge,
                flows_reconstructed=len(run.report.flows),
                roam_events=len(run.artifacts.roam_events),
            )
        )
    return points


def sweep_as_section(points: Sequence[FamilySweepPoint]) -> Dict:
    """The ``scenario_sweep`` payload persisted to ``BENCH_merge.json``."""
    return {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "families": {point.family: point.as_dict() for point in points},
    }


def main() -> None:
    print("=== Scenario-family sweep (small scale) ===")
    for point in run_family_sweep():
        merge = point.merge
        print(
            f"  {point.family:16s} {merge.records:>8,} records  "
            f"{merge.records_per_second:>10,.0f} rec/s  "
            f"{merge.realtime_factor:5.2f}x real time  "
            f"flows={point.flows_reconstructed}  roam={point.roam_events}"
        )
    print()
    print("Registered families:")
    for family in REGISTRY:
        print(f"  {family.name:16s} {family.paper_focus}")


if __name__ == "__main__":
    main()
