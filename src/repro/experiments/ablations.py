"""Ablations of the design choices DESIGN.md calls out.

Each ablation reruns unification on the *same* building traces with one
knob changed, and reports the Figure 4 dispersion percentiles plus the
mis-merge ("split") rate against the simulator oracle:

* median vs mean jframe timestamps;
* the dispersion-gated resync threshold (0 / 10 / 100 us);
* EWMA skew/drift compensation on vs off;
* search-window size (the paper: dangerously large windows lose sync);
* the reference-frame uniqueness filter (unique frames vs everything).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.sync.bootstrap import bootstrap_synchronization
from ..core.unify.jframe import JFrameKind
from ..core.unify.unifier import UnificationResult, Unifier
from .common import ExperimentRun, get_building_run


@dataclass
class AblationPoint:
    label: str
    p50_us: float
    p90_us: float
    p99_us: float
    split_rate: float      # multi-observed transmissions split across jframes
    jframes: int
    resyncs: int


def _score(result: UnificationResult, label: str) -> AblationPoint:
    dispersions = sorted(result.dispersions_us())
    by_txid: Dict[int, int] = defaultdict(int)
    multi = 0
    for jframe in result.jframes:
        if jframe.kind is JFrameKind.VALID:
            txid = jframe.truth_txid()
            if txid:
                by_txid[txid] += 1
    split = sum(1 for count in by_txid.values() if count > 1)
    split_rate = split / max(1, len(by_txid))

    def pct(q: float) -> float:
        if not dispersions:
            return 0.0
        return float(np.percentile(dispersions, q))

    return AblationPoint(
        label=label,
        p50_us=pct(50),
        p90_us=pct(90),
        p99_us=pct(99),
        split_rate=split_rate,
        jframes=result.stats.jframes,
        resyncs=result.stats.resyncs,
    )


@dataclass
class AblationResult:
    points: List[AblationPoint]

    def format_table(self) -> str:
        lines = [
            f"{'configuration':<34} {'p50':>7} {'p90':>7} {'p99':>8} "
            f"{'split':>7} {'resyncs':>8}"
        ]
        for p in self.points:
            lines.append(
                f"{p.label:<34} {p.p50_us:>7.1f} {p.p90_us:>7.1f} "
                f"{p.p99_us:>8.1f} {p.split_rate:>7.3f} {p.resyncs:>8}"
            )
        return "\n".join(lines)

    def by_label(self, label: str) -> AblationPoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)


def run_ablations(run: ExperimentRun = None) -> AblationResult:
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    bootstrap = bootstrap_synchronization(
        traces, clock_groups=run.artifacts.clock_groups()
    )

    configurations = [
        ("baseline (paper settings)", Unifier()),
        ("mean timestamp", Unifier(use_median_timestamp=False)),
        ("resync threshold 0us", Unifier(resync_threshold_us=0.0)),
        ("resync threshold 100us", Unifier(resync_threshold_us=100.0)),
        ("no skew compensation", Unifier(compensate_skew=False)),
        ("search window 1ms", Unifier(search_window_us=1_000)),
        ("search window 100ms", Unifier(search_window_us=100_000)),
        (
            "never resync",
            Unifier(resync_threshold_us=1e12, compensate_skew=False),
        ),
    ]
    points = [
        _score(unifier.unify(traces, bootstrap), label)
        for label, unifier in configurations
    ]
    return AblationResult(points=points)


def main() -> None:
    result = run_ablations()
    print("=== Unifier ablations ===")
    print(result.format_table())


if __name__ == "__main__":
    main()
