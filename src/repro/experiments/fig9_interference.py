"""Experiment F9 — Figure 9: interference loss rate across (s, r) pairs.

Paper (day-long trace, pairs with >=100 packets): 88% of pairs show some
interference loss; senders split 56% AP / 44% client; the average
background loss rate is 0.12; the CDF of the interference loss rate X has
~50% of pairs at or below 0.025, 10% at 0.1+, 5% at 0.2+, and a small tail
above 0.5; negative estimates (11% of pairs) truncate to zero.
"""

from __future__ import annotations

from ..core.analysis.interference import (
    InterferenceResult,
    estimate_interference,
)
from .common import ExperimentRun, get_building_run

#: Compressed traces carry fewer packets per pair than a full day; scale
#: the paper's >=100-packet cut to keep a usable pair population.
MIN_PACKETS = 30


def run_fig9(
    run: ExperimentRun = None, min_packets: int = MIN_PACKETS
) -> InterferenceResult:
    run = run or get_building_run()
    return estimate_interference(run.report, min_packets=min_packets)


def main() -> None:
    result = run_fig9()
    print("=== Figure 9: interference loss rate ===")
    print(result.format_table())
    print()
    xs = result.loss_rate_cdf()
    if xs:
        print("X percentiles:")
        for q in (50, 75, 90, 95, 99):
            idx = min(len(xs) - 1, int(q / 100 * len(xs)))
            print(f"  p{q}: {xs[idx]:.3f}")


if __name__ == "__main__":
    main()
