"""Shared experiment plumbing: cached scenario runs and pipeline reports.

Every table/figure experiment needs a simulated deployment plus a Jigsaw
reconstruction of its traces.  Building-scale runs cost tens of seconds, so
experiments share one cached run per (scenario name, seed) within a
process; benchmarks then time only the analysis under study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.pipeline import JigsawPipeline, JigsawReport
from ..sim.registry import SCENARIO_SCHEMA_VERSION
from ..sim.runner import SimulationArtifacts, run_scenario
from ..sim.scenario import ScenarioConfig

#: The default seed used across the benchmark suite.
DEFAULT_SEED = 7

#: Compressed "day": the paper's 24 h trace mapped onto 8 simulated
#: seconds, so a one-minute paper bin corresponds to a third of a second.
BUILDING_DURATION_US = 8_000_000


@dataclass
class ExperimentRun:
    """One simulated deployment plus its Jigsaw reconstruction."""

    artifacts: SimulationArtifacts
    report: JigsawReport

    @property
    def config(self) -> ScenarioConfig:
        return self.artifacts.config

    @property
    def duration_us(self) -> int:
        return self.config.duration_us


_CACHE: Dict[Tuple[str, int, str], ExperimentRun] = {}


def _config_fingerprint(config: ScenarioConfig, family: Optional[str]) -> str:
    """A deterministic digest of every scenario knob, schema-qualified.

    ``ScenarioConfig`` is a frozen dataclass of plain values (and nested
    frozen dataclasses), so its ``repr`` enumerates the full
    configuration — callers that share a cache name but override any
    knob get distinct cache entries instead of silently sharing a run.
    The registry schema version and the scenario family name are folded
    in, so artifacts cached for a pre-refactor config (or for another
    family that happens to share a cache name) can never be served for a
    new-style scenario.
    """
    return (
        f"schema-v{SCENARIO_SCHEMA_VERSION}:"
        f"family={family or '-'}:{config!r}"
    )


def building_config(seed: int = DEFAULT_SEED, **overrides) -> ScenarioConfig:
    """The canonical benchmark scenario: the paper's deployment shape."""
    defaults = dict(duration_us=BUILDING_DURATION_US)
    defaults.update(overrides)
    return ScenarioConfig.building(seed=seed, **defaults)


def small_config(seed: int = DEFAULT_SEED, **overrides) -> ScenarioConfig:
    return ScenarioConfig.small(seed=seed, **overrides)


def get_run(
    name: str,
    config_factory: Callable[[], ScenarioConfig],
    seed: int = DEFAULT_SEED,
    family: Optional[str] = None,
) -> ExperimentRun:
    """Fetch (or compute and cache) a scenario run + pipeline report.

    The cache key includes a fingerprint of the *full* config the factory
    produces — not just ``(name, seed)`` — so two callers sharing a name
    but differing in any override each get their own run.  ``family``
    names the registry family the run belongs to (when there is one); it
    and the registry schema version are part of the fingerprint.
    """
    config = config_factory()
    key = (name, seed, _config_fingerprint(config, family))
    if key not in _CACHE:
        artifacts = run_scenario(config)
        report = JigsawPipeline().run(
            artifacts.radio_traces, clock_groups=artifacts.clock_groups()
        )
        _CACHE[key] = ExperimentRun(artifacts=artifacts, report=report)
    return _CACHE[key]


def get_building_run(seed: int = DEFAULT_SEED) -> ExperimentRun:
    """The shared building-scale run used by most table/figure benches."""
    return get_run("building", lambda: building_config(seed), seed)


def get_small_run(seed: int = DEFAULT_SEED) -> ExperimentRun:
    """A faster run for experiments that don't need the full fleet."""
    return get_run("small", lambda: small_config(seed), seed)


def campus_config(
    n_buildings: int = 4, seed: int = DEFAULT_SEED, **overrides
) -> "ScenarioConfig":
    """The registry's campus family at full scale (128 radios/building)."""
    from ..sim.registry import scenario_config

    return scenario_config(
        "campus", "full", seed=seed, n_buildings=n_buildings, **overrides
    )


_CAMPUS_CACHE: Dict[str, object] = {}


def get_campus_run(n_buildings: int = 4, seed: int = DEFAULT_SEED):
    """Fetch (or simulate and cache) a campus run's artifacts.

    Campus composition makes the first k buildings of a larger cached
    campus bit-identical to a k-building run (per-building sub-seeds
    depend only on (seed, building index)), so a request is served by
    slicing any cached campus that is at least as large — the
    radio-scaling sweep over 4/8/12 buildings costs one 12-building
    simulation, not three.
    """
    from ..sim.campus import campus_subset, run_campus

    config = campus_config(n_buildings, seed)
    key = _config_fingerprint(config, "campus")
    if key not in _CAMPUS_CACHE:
        base_key = _config_fingerprint(campus_config(1, seed), "campus")
        for cached in list(_CAMPUS_CACHE.values()):
            same_base = _config_fingerprint(
                campus_config(1, seed=cached.config.seed), "campus"
            )
            if (
                same_base == base_key
                and len(cached.buildings) >= n_buildings
            ):
                _CAMPUS_CACHE[key] = campus_subset(cached, n_buildings)
                break
        else:
            _CAMPUS_CACHE[key] = run_campus(config)
    return _CAMPUS_CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()
    _CAMPUS_CACHE.clear()
