"""Experiment F6 — Figure 6: coverage vs the wired trace, per station.

Paper: 97% of the 10 M unicast wired packets appear in the wireless trace;
46% of clients and 40% of APs have every frame captured; 78% of clients and
94% of APs exceed 95% coverage; clients in poorly covered rooms drag the
client tail down, and AP coverage beats client coverage because pods are
deployed near APs.
"""

from __future__ import annotations

from ..core.analysis.coverage import CoverageResult, wired_coverage
from .common import ExperimentRun, get_building_run


def run_fig6(run: ExperimentRun = None) -> CoverageResult:
    run = run or get_building_run()
    return wired_coverage(run.artifacts.wired_trace, run.report.jframes)


def main() -> None:
    result = run_fig6()
    print("=== Figure 6: wired-trace coverage ===")
    print(result.format_table())
    print()
    print("per-station detail (worst 10):")
    worst = sorted(result.stations, key=lambda s: s.coverage)[:10]
    for s in worst:
        kind = "AP" if s.is_ap else "client"
        print(
            f"  {s.station} ({kind}): "
            f"{s.observed_packets}/{s.wired_packets} = {s.coverage:.2f}"
        )


if __name__ == "__main__":
    main()
