"""Experiment F10 — Figure 10: overprotective APs and affected 11g clients.

Paper: the production policy keeps protection on for an hour after last
sensing an 802.11b client; with a practical one-minute test, 25-50% of
active 802.11g clients sit on overprotective APs during busy periods, and
the number of overprotective APs falls as more 11b clients become active.
Footnote 7's arithmetic bounds the potential throughput win at ~1.98x.
"""

from __future__ import annotations

from ..core.analysis.protection import ProtectionResult, analyze_protection
from ..dot11.rates import protection_overhead_factor
from .common import ExperimentRun, get_building_run

#: Bins per compressed day (matches fig8).
BINS_PER_DAY = 24


def run_fig10(run: ExperimentRun = None) -> ProtectionResult:
    run = run or get_building_run()
    bin_us = max(1, run.duration_us // BINS_PER_DAY)
    # The practical timeout compresses with the day, but must comfortably
    # exceed the clients' background-probe cadence — otherwise every AP
    # looks overprotective between probes, which the paper's real minutes
    # vs seconds-scale probing never suffered.
    practical_timeout_us = max(
        run.duration_us // 24,
        2 * max(1, run.config.client_rescan_interval_us),
    )
    return analyze_protection(
        run.report,
        run.duration_us,
        bin_us=bin_us,
        practical_timeout_us=practical_timeout_us,
    )


def main() -> None:
    result = run_fig10()
    print("=== Figure 10: overprotective APs ===")
    print(result.format_table())
    print()
    print(f"802.11b clients observed: {len(result.b_clients)}")
    print(f"802.11g clients observed: {len(result.g_clients)}")
    print(
        "footnote 7 protection overhead factor: "
        f"{protection_overhead_factor():.2f} (paper: 1.98)"
    )


if __name__ == "__main__":
    main()
