"""Experiment F4 — Figure 4: CDF of jframe group dispersion.

Paper: with a 10 ms search window across 156 radios over 24 hours, "for
90% percent of all jframes, the worst case time offset between any two
radios is less than 10 us, and 99% see a worst case offset under 20 us."
"""

from __future__ import annotations

from ..core.analysis.dispersion import DispersionCdf, dispersion_cdf
from .common import ExperimentRun, get_building_run


def run_fig4(run: ExperimentRun = None) -> DispersionCdf:
    run = run or get_building_run()
    return dispersion_cdf(run.report.unification)


def main() -> None:
    cdf = run_fig4()
    print("=== Figure 4: group dispersion CDF ===")
    print(cdf.format_table())
    print()
    print("cdf points (dispersion_us, fraction):")
    for x, y in cdf.cdf_points(max_points=15):
        print(f"  {x:8.1f}  {y:.3f}")


if __name__ == "__main__":
    main()
