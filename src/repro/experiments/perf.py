"""Experiment P1 — the Section 4 efficiency requirement.

"To permit online applications, trace merging should execute faster than
real-time and scale well as a function of the number of radios.  Thus, we
prefer an algorithm that can merge traces in a single pass over the data."

The check: unify a building-scale trace and compare wall-clock merge time
against the simulated trace duration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.sync.bootstrap import bootstrap_synchronization
from ..core.unify.unifier import Unifier
from .common import ExperimentRun, get_building_run


@dataclass
class MergePerformance:
    trace_duration_s: float
    merge_seconds: float
    records: int
    jframes: int

    @property
    def realtime_factor(self) -> float:
        """>1 means faster than real time."""
        if self.merge_seconds == 0:
            return float("inf")
        return self.trace_duration_s / self.merge_seconds

    @property
    def records_per_second(self) -> float:
        if self.merge_seconds == 0:
            return float("inf")
        return self.records / self.merge_seconds

    def format_table(self) -> str:
        return "\n".join(
            [
                f"trace duration:    {self.trace_duration_s:.1f} s simulated",
                f"merge time:        {self.merge_seconds:.2f} s wall clock",
                f"records merged:    {self.records:,}",
                f"jframes produced:  {self.jframes:,}",
                f"records/second:    {self.records_per_second:,.0f}",
                f"real-time factor:  {self.realtime_factor:.2f}x "
                f"(paper requirement: > 1)",
            ]
        )


def run_merge_performance(run: ExperimentRun = None) -> MergePerformance:
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    bootstrap = bootstrap_synchronization(
        traces, clock_groups=run.artifacts.clock_groups()
    )
    started = time.perf_counter()
    result = Unifier().unify(traces, bootstrap)
    elapsed = time.perf_counter() - started
    return MergePerformance(
        trace_duration_s=run.duration_us / 1e6,
        merge_seconds=elapsed,
        records=result.stats.records_in,
        jframes=result.stats.jframes,
    )


def main() -> None:
    perf = run_merge_performance()
    print("=== Merge performance (Section 4 requirement) ===")
    print(perf.format_table())


if __name__ == "__main__":
    main()
