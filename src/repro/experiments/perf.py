"""Experiment P1 — the Section 4 efficiency requirement.

"To permit online applications, trace merging should execute faster than
real-time and scale well as a function of the number of radios.  Thus, we
prefer an algorithm that can merge traces in a single pass over the data."

Three checks:

* :func:`run_merge_performance` unifies a building-scale trace through the
  sharded streaming engine and compares wall-clock merge time against the
  simulated trace duration;
* :func:`run_radio_scaling` repeats the merge over growing subsets of the
  radio fleet — the paper's "scale well as a function of the number of
  radios" — producing the sweep the benchmark suite persists to
  ``BENCH_merge.json``;
* :func:`run_memory_profile` measures (tracemalloc) peak heap of a full
  pipeline run with analyses registered as streaming passes, materialized
  versus ``materialize=False`` — the bounded-memory win that lets the
  analyses serve traces far larger than RAM.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.pipeline import JigsawPipeline
from ..core.sync.bootstrap import bootstrap_synchronization
from ..core.unify.sharded import ShardedUnifier
from ..core.unify.unifier import Unifier, partition_traces
from .common import ExperimentRun, get_building_run

#: Radio-fleet fractions exercised by the scaling sweep.
DEFAULT_SCALING_FRACTIONS = (0.25, 0.5, 1.0)


@dataclass
class MergePerformance:
    trace_duration_s: float
    merge_seconds: float
    records: int
    jframes: int
    n_radios: int = 0
    n_shards: int = 0
    engine: str = "sharded-serial"

    @property
    def realtime_factor(self) -> float:
        """>1 means faster than real time."""
        if self.merge_seconds == 0:
            return float("inf")
        return self.trace_duration_s / self.merge_seconds

    @property
    def records_per_second(self) -> float:
        if self.merge_seconds == 0:
            return float("inf")
        return self.records / self.merge_seconds

    def format_table(self) -> str:
        return "\n".join(
            [
                f"engine:            {self.engine} "
                f"({self.n_radios} radios, {self.n_shards} channel shards)",
                f"trace duration:    {self.trace_duration_s:.1f} s simulated",
                f"merge time:        {self.merge_seconds:.2f} s wall clock",
                f"records merged:    {self.records:,}",
                f"jframes produced:  {self.jframes:,}",
                f"records/second:    {self.records_per_second:,.0f}",
                f"real-time factor:  {self.realtime_factor:.2f}x "
                f"(paper requirement: > 1)",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "n_radios": self.n_radios,
            "n_shards": self.n_shards,
            "trace_duration_s": self.trace_duration_s,
            "merge_seconds": self.merge_seconds,
            "records": self.records,
            "jframes": self.jframes,
            "records_per_second": self.records_per_second,
            "realtime_factor": self.realtime_factor,
        }


def _measure(
    traces: Sequence, duration_us: int, clock_groups, max_workers: Optional[int]
) -> MergePerformance:
    bootstrap = bootstrap_synchronization(traces, clock_groups=clock_groups)
    unifier = ShardedUnifier(Unifier(), max_workers=max_workers)
    n_shards = len(partition_traces(traces))
    workers = unifier._worker_count(n_shards)
    # Isolate the measurement from the caller's heap: the cached building
    # run keeps tens of millions of report objects alive, and letting the
    # collector re-scan them during the timed merge swings the tracked
    # records/second several-fold between invocations.  ``gc.freeze``
    # parks the pre-existing heap in the permanent generation (the merge's
    # own allocations still collect normally); ``unfreeze`` restores it.
    gc.collect()
    gc.freeze()
    try:
        started = time.perf_counter()
        result = unifier.unify(traces, bootstrap)
        elapsed = time.perf_counter() - started
    finally:
        gc.unfreeze()
    return MergePerformance(
        trace_duration_s=duration_us / 1e6,
        merge_seconds=elapsed,
        records=result.stats.records_in,
        jframes=result.stats.jframes,
        n_radios=len(traces),
        n_shards=n_shards,
        engine="sharded-serial" if workers <= 1 else f"sharded-pool{workers}",
    )


def run_merge_performance(
    run: ExperimentRun = None, max_workers: Optional[int] = None
) -> MergePerformance:
    """Merge the full building trace through the sharded streaming engine."""
    run = run or get_building_run()
    return _measure(
        run.artifacts.radio_traces,
        run.duration_us,
        run.artifacts.clock_groups(),
        max_workers,
    )


def run_radio_scaling(
    run: ExperimentRun = None,
    fractions: Sequence[float] = DEFAULT_SCALING_FRACTIONS,
    max_workers: Optional[int] = None,
) -> List[MergePerformance]:
    """Merge growing radio-fleet subsets of one building trace.

    Subsetting reuses the already-simulated traces (simulating per point
    would dwarf the merge being measured); clock groups are filtered to
    the radios retained so bootstrap still bridges channels.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    all_groups = run.artifacts.clock_groups()
    points: List[MergePerformance] = []
    for fraction in fractions:
        count = max(2, int(round(len(traces) * fraction)))
        subset = traces[:count]
        kept = {t.radio_id for t in subset}
        groups = [
            [r for r in group if r in kept]
            for group in all_groups
        ]
        groups = [g for g in groups if len(g) >= 2]
        points.append(
            _measure(subset, run.duration_us, groups, max_workers)
        )
    return points


@dataclass
class MemoryProfile:
    """Peak pipeline heap, materialized vs streaming-pass execution."""

    materialized_peak_bytes: int
    streaming_peak_bytes: int
    records: int
    jframes: int

    @property
    def reduction_factor(self) -> float:
        """>1 means the streaming run peaked lower."""
        if self.streaming_peak_bytes == 0:
            return float("inf")
        return self.materialized_peak_bytes / self.streaming_peak_bytes

    def format_table(self) -> str:
        return "\n".join(
            [
                f"records in:             {self.records:,}",
                f"jframes:                {self.jframes:,}",
                "materialized peak heap: "
                f"{self.materialized_peak_bytes / 1e6:.1f} MB",
                "streaming peak heap:    "
                f"{self.streaming_peak_bytes / 1e6:.1f} MB "
                "(materialize=False, passes inline)",
                f"reduction factor:       {self.reduction_factor:.2f}x",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "materialized_peak_bytes": self.materialized_peak_bytes,
            "streaming_peak_bytes": self.streaming_peak_bytes,
            "records": self.records,
            "jframes": self.jframes,
            "reduction_factor": self.reduction_factor,
        }


def _representative_passes(duration_us: int) -> list:
    """The pass set the memory profile runs inline (Figures 4/8/9, Table 1)."""
    from ..core.analysis import (
        ActivityPass,
        DispersionPass,
        InterferencePass,
        StationTracker,
        SummaryPass,
    )

    tracker = StationTracker()  # classify stations once, share across passes
    return [
        ActivityPass(
            duration_us, bin_us=max(1, duration_us // 24), tracker=tracker
        ),
        DispersionPass(),
        InterferencePass(min_packets=30, tracker=tracker),
        SummaryPass(duration_us, tracker=tracker),
    ]


def run_memory_profile(run: ExperimentRun = None) -> MemoryProfile:
    """Peak-heap comparison: materialized report vs streaming passes.

    Both runs execute the identical pipeline (same precomputed bootstrap)
    with the same analysis passes registered; the only difference is the
    built-in materialization pass.  tracemalloc tracks every allocation,
    so the peak includes jframe/attempt/exchange object graphs — exactly
    what ``materialize=False`` exists to shed.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    bootstrap = bootstrap_synchronization(
        traces, clock_groups=run.artifacts.clock_groups()
    )

    def _peak(materialize: bool) -> tuple:
        pipeline = JigsawPipeline()
        gc.collect()
        tracemalloc.start()
        try:
            report = pipeline.run(
                traces,
                bootstrap=bootstrap,
                passes=_representative_passes(run.duration_us),
                materialize=materialize,
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak, report.unification.stats

    materialized_peak, stats = _peak(True)
    streaming_peak, _ = _peak(False)
    return MemoryProfile(
        materialized_peak_bytes=materialized_peak,
        streaming_peak_bytes=streaming_peak,
        records=stats.records_in,
        jframes=stats.jframes,
    )


def main() -> None:
    perf = run_merge_performance()
    print("=== Merge performance (Section 4 requirement) ===")
    print(perf.format_table())
    print()
    print("=== Radio scaling (records/second by fleet size) ===")
    for point in run_radio_scaling():
        print(
            f"  {point.n_radios:4d} radios: "
            f"{point.records_per_second:>10,.0f} rec/s  "
            f"({point.realtime_factor:.2f}x real time)"
        )
    print()
    print("=== Peak memory: materialized vs streaming passes ===")
    print(run_memory_profile().format_table())


if __name__ == "__main__":
    main()
