"""Experiment P1 — the Section 4 efficiency requirement.

"To permit online applications, trace merging should execute faster than
real-time and scale well as a function of the number of radios.  Thus, we
prefer an algorithm that can merge traces in a single pass over the data."

Four checks:

* :func:`run_merge_performance` unifies a building-scale trace through the
  sharded streaming engine and compares wall-clock merge time against the
  simulated trace duration;
* :func:`run_radio_scaling` repeats the merge over growing subsets of the
  radio fleet — the paper's "scale well as a function of the number of
  radios" — producing the sweep the benchmark suite persists to
  ``BENCH_merge.json``;
* :func:`run_bootstrap_performance` times the synchronization prepass:
  the serial two-read path (decode everything, then scan the examination
  window again) against channel-sharded collection with single-read
  ingest (decode only the window prefix, feed it to the shards as it
  streams, replay the buffer into the merge) — the "time before the
  first jframe can be emitted" bottleneck;
* :func:`run_decode_performance` times file ingest with the scalar
  per-record decoder against the batch-vectorized engine — both as a
  pure decode drain and as the full bootstrap + merge pipeline — with
  record- and jframe-identical output asserted along the way;
* :func:`run_memory_profile` measures (tracemalloc) peak heap of a full
  pipeline run with analyses registered as streaming passes, materialized
  versus ``materialize=False``, plus the retained-heap effect of severing
  observation -> exchange back-references after transport inference.
"""

from __future__ import annotations

import gc
import tempfile
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import os

from ..core.pipeline import JigsawPipeline
from ..core.sync.bootstrap import BootstrapResult, bootstrap_synchronization
from ..core.sync.sharded import ShardedBootstrap
from ..core.unify.hierarchy import MergeTree
from ..core.unify.sharded import ShardedUnifier
from ..core.unify.unifier import Unifier, partition_traces
from ..jtrace.io import (
    open_trace_stream,
    open_trace_streams,
    read_traces,
    write_traces,
)
from .common import ExperimentRun, get_building_run, get_campus_run

#: Radio-fleet fractions exercised by the scaling sweep.
DEFAULT_SCALING_FRACTIONS = (0.25, 0.5, 1.0)

#: Campus sizes for the multi-building scaling sweep: 4/8/12 buildings
#: of 32 pods x 4 radios = 512/1024/1536 monitor radios.
DEFAULT_CAMPUS_BUILDINGS = (4, 8, 12)


@dataclass
class MergePerformance:
    trace_duration_s: float
    merge_seconds: float
    records: int
    jframes: int
    n_radios: int = 0
    n_shards: int = 0
    engine: str = "sharded-serial"
    #: Pool size the run actually used (0 = serial), from the
    #: coordinator's post-run ``health.pool_workers`` audit field.
    pool_workers: int = 0

    @property
    def realtime_factor(self) -> float:
        """>1 means faster than real time."""
        if self.merge_seconds == 0:
            return float("inf")
        return self.trace_duration_s / self.merge_seconds

    @property
    def records_per_second(self) -> float:
        if self.merge_seconds == 0:
            return float("inf")
        return self.records / self.merge_seconds

    def format_table(self) -> str:
        return "\n".join(
            [
                f"engine:            {self.engine} "
                f"({self.n_radios} radios, {self.n_shards} channel shards)",
                f"trace duration:    {self.trace_duration_s:.1f} s simulated",
                f"merge time:        {self.merge_seconds:.2f} s wall clock",
                f"records merged:    {self.records:,}",
                f"jframes produced:  {self.jframes:,}",
                f"records/second:    {self.records_per_second:,.0f}",
                f"real-time factor:  {self.realtime_factor:.2f}x "
                f"(paper requirement: > 1)",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "pool_workers": self.pool_workers,
            "n_radios": self.n_radios,
            "n_shards": self.n_shards,
            "trace_duration_s": self.trace_duration_s,
            "merge_seconds": self.merge_seconds,
            "records": self.records,
            "jframes": self.jframes,
            "records_per_second": self.records_per_second,
            "realtime_factor": self.realtime_factor,
        }


def _measure(
    traces: Sequence,
    duration_us: int,
    clock_groups,
    max_workers: Optional[int],
    unifier=None,
    bootstrap: Optional[BootstrapResult] = None,
) -> MergePerformance:
    """Time one merge; the engine label is read back from the coordinator.

    ``unifier`` may be any coordinator with the ``ShardedUnifier``
    surface (``unify``, ``last_engine``, ``health``) — the hierarchy
    benchmarks pass a :class:`MergeTree`.  The recorded ``engine`` and
    ``pool_workers`` are what the run *actually* resolved to, not what
    ``max_workers`` requested: an explicit pool request still runs
    serial on a one-core host or a single-shard input, and the
    trajectory must say so.
    """
    if bootstrap is None:
        bootstrap = bootstrap_synchronization(
            traces, clock_groups=clock_groups
        )
    if unifier is None:
        unifier = ShardedUnifier(Unifier(), max_workers=max_workers)
    n_shards = len(partition_traces(traces))
    # Isolate the measurement from the caller's heap: the cached building
    # run keeps tens of millions of report objects alive, and letting the
    # collector re-scan them during the timed merge swings the tracked
    # records/second several-fold between invocations.  ``gc.freeze``
    # parks the pre-existing heap in the permanent generation (the merge's
    # own allocations still collect normally); ``unfreeze`` restores it.
    gc.collect()
    gc.freeze()
    try:
        started = time.perf_counter()
        result = unifier.unify(traces, bootstrap)
        elapsed = time.perf_counter() - started
    finally:
        gc.unfreeze()
    return MergePerformance(
        trace_duration_s=duration_us / 1e6,
        merge_seconds=elapsed,
        records=result.stats.records_in,
        jframes=result.stats.jframes,
        n_radios=len(traces),
        n_shards=n_shards,
        engine=unifier.last_engine,
        pool_workers=unifier.health.pool_workers,
    )


def run_merge_performance(
    run: ExperimentRun = None, max_workers: Optional[int] = None
) -> MergePerformance:
    """Merge the full building trace through the sharded streaming engine."""
    run = run or get_building_run()
    return _measure(
        run.artifacts.radio_traces,
        run.duration_us,
        run.artifacts.clock_groups(),
        max_workers,
    )


def run_radio_scaling(
    run: ExperimentRun = None,
    fractions: Sequence[float] = DEFAULT_SCALING_FRACTIONS,
    max_workers: Optional[int] = None,
) -> List[MergePerformance]:
    """Merge growing radio-fleet subsets of one building trace.

    Subsetting reuses the already-simulated traces (simulating per point
    would dwarf the merge being measured); clock groups are filtered to
    the radios retained so bootstrap still bridges channels.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    all_groups = run.artifacts.clock_groups()
    points: List[MergePerformance] = []
    for fraction in fractions:
        count = max(2, int(round(len(traces) * fraction)))
        subset = traces[:count]
        kept = {t.radio_id for t in subset}
        groups = [
            [r for r in group if r in kept]
            for group in all_groups
        ]
        groups = [g for g in groups if len(g) >= 2]
        points.append(
            _measure(subset, run.duration_us, groups, max_workers)
        )
    return points


def _campus_bootstrap(campus) -> BootstrapResult:
    return bootstrap_synchronization(
        campus.traces, clock_groups=campus.clock_groups
    )


def run_campus_radio_scaling(
    buildings: Sequence[int] = DEFAULT_CAMPUS_BUILDINGS,
) -> List[MergePerformance]:
    """Extend the radio-scaling sweep past one building: 500-1500 radios.

    Each point unifies a whole campus (4/8/12 buildings of 128 radios)
    through the hierarchical :class:`MergeTree`, serially — the same
    execution mode as the single-building sweep points, so the curve is
    comparable end to end.  The largest campus is simulated once and
    sliced (composition makes the slice exact; see
    :func:`repro.sim.campus.campus_subset`).
    """
    get_campus_run(max(buildings))  # simulate once; smaller sizes slice
    points: List[MergePerformance] = []
    for n_buildings in sorted(buildings):
        campus = get_campus_run(n_buildings)
        points.append(
            _measure(
                campus.traces,
                campus.config.duration_us,
                campus.clock_groups,
                max_workers=1,
                unifier=MergeTree(max_workers=1),
                bootstrap=_campus_bootstrap(campus),
            )
        )
    return points


@dataclass
class PoolScaling:
    """Worker-count sweep over one campus merge.

    ``points`` records one merge per requested worker count, with the
    engine the run *resolved to* (``resolve_pool_workers`` caps by
    ``os.cpu_count()``, so requesting 8 workers on a one-core host runs
    ``hierarchy-pool2`` at best — the audit trail must show that, not
    the request).  ``cpu_count`` makes the numbers interpretable when
    trajectories from different runners are compared.
    """

    cpu_count: int
    n_radios: int
    records: int
    requested: List[object]
    points: List[MergePerformance]

    @property
    def best(self) -> MergePerformance:
        return min(self.points, key=lambda p: p.merge_seconds)

    @property
    def best_records_per_second(self) -> float:
        return self.best.records_per_second

    def format_table(self) -> str:
        lines = [
            f"cpu_count:        {self.cpu_count}",
            f"campus:           {self.n_radios} radios, "
            f"{self.records:,} records",
        ]
        for requested, point in zip(self.requested, self.points):
            label = "auto" if requested is None else str(requested)
            lines.append(
                f"  workers={label:>4s} -> {point.engine:18s} "
                f"{point.merge_seconds:6.2f} s  "
                f"{point.records_per_second:>10,.0f} rec/s"
            )
        lines.append(
            f"best:             {self.best.engine} "
            f"({self.best_records_per_second:,.0f} rec/s)"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "cpu_count": self.cpu_count,
            "n_radios": self.n_radios,
            "records": self.records,
            "points": [
                {
                    "requested_workers": (
                        "auto" if requested is None else requested
                    ),
                    **point.as_dict(),
                }
                for requested, point in zip(self.requested, self.points)
            ],
            "best_engine": self.best.engine,
            "best_records_per_second": self.best_records_per_second,
        }


def run_pool_scaling(
    campus=None,
    n_buildings: int = 4,
    worker_counts: Optional[Sequence[Optional[int]]] = None,
) -> PoolScaling:
    """Sweep pool sizes over one >=500-radio hierarchical merge.

    The default sweep runs serial, each power-of-two pool up to the
    machine's core count, and auto (``max_workers=None``).  On a
    one-core host that collapses to serial + auto — both resolve
    serial, and the recorded engine labels say so; the multi-core CI
    lane is where the pool rows carry real parallelism.
    """
    if campus is None:
        campus = get_campus_run(n_buildings)
    cpus = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = [1]
        width = 2
        while width <= cpus:
            worker_counts.append(width)
            width *= 2
        worker_counts.append(None)
    bootstrap = _campus_bootstrap(campus)
    points = [
        _measure(
            campus.traces,
            campus.config.duration_us,
            campus.clock_groups,
            max_workers=requested,
            unifier=MergeTree(max_workers=requested),
            bootstrap=bootstrap,
        )
        for requested in worker_counts
    ]
    return PoolScaling(
        cpu_count=cpus,
        n_radios=campus.n_radios,
        records=campus.n_records,
        requested=list(worker_counts),
        points=points,
    )


@dataclass
class HierarchyPerformance:
    """Flat-shard versus hierarchical merge on the same campus traces.

    ``flat`` is the pre-hierarchy baseline: the flat
    :class:`ShardedUnifier` run serially over the *same stamped traces*
    — the identical (building, channel) leaf partition, merged as one
    flat shard list instead of through the merge tree — so the two legs
    differ only in merge structure and are bit-identical by construction
    (the parity suite's claim; the bench asserts the record/jframe
    counts).  ``tree_serial`` and ``tree_auto`` run the
    :class:`MergeTree`; auto resolves to a process pool on multi-core
    hosts and serial on one core — the recorded engine label is the
    resolution, not the request.
    """

    n_buildings: int
    plan: dict
    flat: MergePerformance
    tree_serial: MergePerformance
    tree_auto: MergePerformance

    @property
    def best_tree(self) -> MergePerformance:
        return min(
            (self.tree_serial, self.tree_auto),
            key=lambda p: p.merge_seconds,
        )

    @property
    def hierarchy_speedup(self) -> float:
        """Best hierarchical records/s over the flat-shard baseline."""
        if self.flat.records_per_second == 0:
            return float("inf")
        return (
            self.best_tree.records_per_second / self.flat.records_per_second
        )

    @property
    def realtime_factor(self) -> float:
        return self.best_tree.realtime_factor

    def format_table(self) -> str:
        def row(label: str, p: MergePerformance) -> str:
            return (
                f"  {label:12s} {p.engine:18s} {p.merge_seconds:6.2f} s  "
                f"{p.records_per_second:>10,.0f} rec/s  "
                f"({p.realtime_factor:.2f}x real time)"
            )

        return "\n".join(
            [
                f"campus:        {self.n_buildings} buildings, "
                f"{self.tree_serial.n_radios} radios, "
                f"{self.tree_serial.records:,} records",
                f"plan:          {self.plan['leaves']} leaves over "
                f"{self.plan['localities']} localities, "
                f"depth {self.plan['depth']}, fanout {self.plan['fanout']}",
                row("flat-shard:", self.flat),
                row("tree serial:", self.tree_serial),
                row("tree auto:", self.tree_auto),
                f"speedup:       {self.hierarchy_speedup:.2f}x "
                "(best tree / flat baseline)",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "n_buildings": self.n_buildings,
            "n_radios": self.tree_serial.n_radios,
            "records": self.tree_serial.records,
            "plan": self.plan,
            "flat": self.flat.as_dict(),
            "tree_serial": self.tree_serial.as_dict(),
            "tree_auto": self.tree_auto.as_dict(),
            "engine": self.best_tree.engine,
            "records_per_second": self.best_tree.records_per_second,
            "hierarchy_speedup": self.hierarchy_speedup,
            "realtime_factor": self.realtime_factor,
        }


def run_hierarchy_performance(
    campus=None, n_buildings: int = 4, rounds: int = 2
) -> HierarchyPerformance:
    """Flat-shard baseline vs hierarchical merge tree on one campus.

    All legs share one bootstrap and run back to back, ``rounds`` times
    in alternation with the per-leg best kept, so a transient CPU-quota
    throttle window cannot invert the recorded ratio (the same
    discipline the decode/bootstrap sections use).
    """
    if campus is None:
        campus = get_campus_run(n_buildings)
    bootstrap = _campus_bootstrap(campus)
    plan = MergeTree().plan(campus.traces).describe()

    legs = {
        "flat": (lambda: ShardedUnifier(max_workers=1), campus.traces),
        "tree_serial": (lambda: MergeTree(max_workers=1), campus.traces),
        "tree_auto": (lambda: MergeTree(), campus.traces),
    }
    best: dict = {}
    for _ in range(max(1, rounds)):
        for label, (factory, traces) in legs.items():
            point = _measure(
                traces,
                campus.config.duration_us,
                campus.clock_groups,
                max_workers=None,
                unifier=factory(),
                bootstrap=bootstrap,
            )
            if (
                label not in best
                or point.merge_seconds < best[label].merge_seconds
            ):
                best[label] = point
    return HierarchyPerformance(
        n_buildings=len(campus.buildings),
        plan=plan,
        flat=best["flat"],
        tree_serial=best["tree_serial"],
        tree_auto=best["tree_auto"],
    )


@dataclass
class BootstrapPerformance:
    """Prepass timings: serial two-read versus sharded single-read.

    The in-memory pair isolates the collection algorithm (same decoded
    records, reference scan vs incremental sharded feed); the disk pair
    measures time-to-offsets for a pipeline fed from trace files — the
    latency before the first jframe can be emitted — and the end-to-end
    (bootstrap + merge) totals on the same input.
    """

    records: int
    n_radios: int
    n_shards: int
    window_us: int
    serial_collect_seconds: float        # in-memory reference prepass
    sharded_collect_seconds: float       # in-memory sharded single-read feed
    two_read_prepass_seconds: float      # disk: decode all, then scan window
    two_read_total_seconds: float        # ... plus the merge
    single_read_prepass_seconds: float   # disk: decode + feed the prefix only
    single_read_total_seconds: float     # ... merge replays the buffered read
    offsets_identical: bool = True

    @property
    def collect_speedup(self) -> float:
        """In-memory: >1 means sharded collection beats the serial scan."""
        if self.sharded_collect_seconds == 0:
            return float("inf")
        return self.serial_collect_seconds / self.sharded_collect_seconds

    @property
    def prepass_speedup(self) -> float:
        """Disk: >1 means single-read ingest reaches offsets sooner."""
        if self.single_read_prepass_seconds == 0:
            return float("inf")
        return self.two_read_prepass_seconds / self.single_read_prepass_seconds

    @property
    def end_to_end_speedup(self) -> float:
        """Disk: >1 means the fused pipeline finishes sooner overall."""
        if self.single_read_total_seconds == 0:
            return float("inf")
        return self.two_read_total_seconds / self.single_read_total_seconds

    def format_table(self) -> str:
        return "\n".join(
            [
                f"records:                  {self.records:,} "
                f"({self.n_radios} radios, {self.n_shards} channel shards)",
                f"bootstrap window:         {self.window_us / 1e6:.1f} s",
                "in-memory collection:     "
                f"serial {self.serial_collect_seconds * 1e3:.0f} ms, "
                f"sharded {self.sharded_collect_seconds * 1e3:.0f} ms "
                f"({self.collect_speedup:.2f}x)",
                "disk prepass (to offsets):"
                f" two-read {self.two_read_prepass_seconds:.2f} s, "
                f"single-read {self.single_read_prepass_seconds:.2f} s "
                f"({self.prepass_speedup:.2f}x)",
                "disk end-to-end:          "
                f"two-read {self.two_read_total_seconds:.2f} s, "
                f"single-read {self.single_read_total_seconds:.2f} s "
                f"({self.end_to_end_speedup:.2f}x)",
                f"offsets bit-identical:    {self.offsets_identical}",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "n_radios": self.n_radios,
            "n_shards": self.n_shards,
            "window_us": self.window_us,
            "serial_collect_seconds": self.serial_collect_seconds,
            "sharded_collect_seconds": self.sharded_collect_seconds,
            "collect_speedup": self.collect_speedup,
            "two_read_prepass_seconds": self.two_read_prepass_seconds,
            "single_read_prepass_seconds": self.single_read_prepass_seconds,
            "prepass_speedup": self.prepass_speedup,
            "two_read_total_seconds": self.two_read_total_seconds,
            "single_read_total_seconds": self.single_read_total_seconds,
            "end_to_end_speedup": self.end_to_end_speedup,
            "offsets_identical": self.offsets_identical,
        }


def run_bootstrap_performance(
    run: ExperimentRun = None,
    max_workers: Optional[int] = None,
    trace_dir: Optional[Path] = None,
) -> BootstrapPerformance:
    """Time the bootstrap prepass both ways on the building trace.

    The two-read path is what the pipeline did before sharded ingest:
    materialize every record (``read_traces``), then scan each trace's
    examination window a second time for reference sets.  The
    single-read path opens replay-aware streams, decodes only the
    window prefix to compute offsets, and lets the merge drain the rest
    of the same read.  Both paths run the scalar reference engine (the
    ``decode`` section owns the scalar-vs-batched comparison).  Offsets
    are asserted bit-identical — the parity the test suite holds is
    also checked on the benchmark input.

    ``trace_dir`` reuses an existing trace directory (and leaves it in
    place); by default traces are written to a temporary directory,
    outside the timed region.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    clock_groups = run.artifacts.clock_groups()
    coordinator = ShardedBootstrap(max_workers=max_workers)
    # Bootstrap shards by the traces' home channels (metadata only).
    n_shards = len({trace.channel for trace in traces})

    gc.collect()
    started = time.perf_counter()
    serial_result = bootstrap_synchronization(traces, clock_groups=clock_groups)
    serial_collect = time.perf_counter() - started

    started = time.perf_counter()
    sharded_result = coordinator.bootstrap(traces, clock_groups=clock_groups)
    sharded_collect = time.perf_counter() - started
    identical = serial_result.offsets_us == sharded_result.offsets_us

    owned = None
    if trace_dir is None:
        owned = tempfile.TemporaryDirectory(prefix="jigsaw-bootstrap-bench-")
        trace_dir = Path(owned.name)
        write_traces(traces, trace_dir)
    try:
        unifier = ShardedUnifier(Unifier(), max_workers=max_workers)

        # Both legs pin the scalar decode engine: this section isolates
        # the ingest *architecture* (one read vs two, prefix-only window
        # decode) from decode vectorization, which the ``decode``
        # section measures on its own.  Letting the default batch
        # engine in would also mislead here — the bench traces are
        # small enough to frame in a single chunk, so batch granularity
        # erases the prefix-only advantage this comparison exists to
        # show, and the numbers would stop being comparable with the
        # tracked trajectory.
        def _two_read() -> tuple:
            """Pre-fusion file path: materialize, order-check, prepass
            over the window again, then merge — the trace is traversed
            twice before the first jframe."""
            started = time.perf_counter()
            decoded = [
                t.sorted_by_local_time()
                for t in read_traces(trace_dir, vectorized=False)
            ]
            bootstrap = bootstrap_synchronization(
                decoded, clock_groups=clock_groups
            )
            prepass = time.perf_counter() - started
            unifier.unify(decoded, bootstrap)
            return prepass, time.perf_counter() - started, bootstrap

        def _single_read() -> tuple:
            """Fused path: decode the window prefix straight into the
            shards, replay the buffer into the merge — one read, with
            ordering validated during the drain."""
            started = time.perf_counter()
            streams = open_trace_streams(
                trace_dir, vectorized=False, decode_ahead=0
            )
            bootstrap = ShardedBootstrap(max_workers=max_workers).bootstrap(
                streams, clock_groups=clock_groups
            )
            prepass = time.perf_counter() - started
            unifier.unify(streams, bootstrap)
            return prepass, time.perf_counter() - started, bootstrap

        # Park the caller's heap (the cached scenario run) in the
        # permanent generation while timing, exactly as ``_measure``
        # does — collector re-scans of unrelated tens-of-millions of
        # objects otherwise swing the disk timings several-fold.  Two
        # alternating rounds per leg, best-of taken, so a transient
        # CPU-quota throttle window cannot invert the recorded ratio.
        timings: dict = {}
        outcomes: dict = {}
        for _ in range(2):
            for label, path in (("two", _two_read), ("single", _single_read)):
                gc.collect()
                gc.freeze()
                try:
                    prepass, total, bootstrap = path()
                finally:
                    gc.unfreeze()
                timings.setdefault(label, []).append((prepass, total))
                outcomes.setdefault(label, bootstrap)
        two_read_prepass, two_read_total = (
            min(t[0] for t in timings["two"]),
            min(t[1] for t in timings["two"]),
        )
        single_read_prepass, single_read_total = (
            min(t[0] for t in timings["single"]),
            min(t[1] for t in timings["single"]),
        )
        two_read_bootstrap = outcomes["two"]
        single_read_bootstrap = outcomes["single"]

        identical = identical and (
            two_read_bootstrap.offsets_us == single_read_bootstrap.offsets_us
        )
    finally:
        if owned is not None:
            owned.cleanup()

    return BootstrapPerformance(
        records=sum(len(t) for t in traces),
        n_radios=len(traces),
        n_shards=n_shards,
        window_us=serial_result.window_us,
        serial_collect_seconds=serial_collect,
        sharded_collect_seconds=sharded_collect,
        two_read_prepass_seconds=two_read_prepass,
        two_read_total_seconds=two_read_total,
        single_read_prepass_seconds=single_read_prepass,
        single_read_total_seconds=single_read_total,
        offsets_identical=identical,
    )


@dataclass
class DecodePerformance:
    """Ingest timings: scalar per-record decode versus batch-vectorized.

    The drain pair isolates the decode engines on the same files (gzip
    inflation and record materialization, no merge); the end-to-end pair
    runs the full file-backed pipeline (bootstrap + merge) both ways —
    the scalar leg with decode-ahead disabled is the pre-batching
    pipeline, so its ratio against the batched leg is the same-run
    measurement of what vectorized ingest buys the whole run.
    """

    records: int
    n_radios: int
    jframes: int
    scalar_decode_seconds: float        # drain every file, scalar engine
    batched_decode_seconds: float       # drain every file, batch engine
    scalar_end_to_end_seconds: float    # bootstrap + merge, scalar ingest
    batched_end_to_end_seconds: float   # ... batch ingest + decode-ahead
    output_identical: bool = True

    @property
    def decode_speedup(self) -> float:
        """>1 means the batch engine decodes the fleet faster."""
        if self.batched_decode_seconds == 0:
            return float("inf")
        return self.scalar_decode_seconds / self.batched_decode_seconds

    @property
    def end_to_end_speedup(self) -> float:
        """>1 means batched ingest finishes the whole pipeline sooner."""
        if self.batched_end_to_end_seconds == 0:
            return float("inf")
        return self.scalar_end_to_end_seconds / self.batched_end_to_end_seconds

    @property
    def scalar_records_per_second(self) -> float:
        if self.scalar_decode_seconds == 0:
            return float("inf")
        return self.records / self.scalar_decode_seconds

    @property
    def batched_records_per_second(self) -> float:
        if self.batched_decode_seconds == 0:
            return float("inf")
        return self.records / self.batched_decode_seconds

    def format_table(self) -> str:
        return "\n".join(
            [
                f"records:           {self.records:,} "
                f"({self.n_radios} radios)",
                "decode drain:      "
                f"scalar {self.scalar_decode_seconds:.2f} s "
                f"({self.scalar_records_per_second:,.0f} rec/s), "
                f"batched {self.batched_decode_seconds:.2f} s "
                f"({self.batched_records_per_second:,.0f} rec/s) "
                f"-> {self.decode_speedup:.2f}x",
                "end-to-end:        "
                f"scalar {self.scalar_end_to_end_seconds:.2f} s, "
                f"batched {self.batched_end_to_end_seconds:.2f} s "
                f"-> {self.end_to_end_speedup:.2f}x",
                f"jframes:           {self.jframes:,}",
                f"output identical:  {self.output_identical}",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "n_radios": self.n_radios,
            "jframes": self.jframes,
            "scalar_decode_seconds": self.scalar_decode_seconds,
            "batched_decode_seconds": self.batched_decode_seconds,
            "scalar_records_per_second": self.scalar_records_per_second,
            "batched_records_per_second": self.batched_records_per_second,
            "decode_speedup": self.decode_speedup,
            "scalar_end_to_end_seconds": self.scalar_end_to_end_seconds,
            "batched_end_to_end_seconds": self.batched_end_to_end_seconds,
            "end_to_end_speedup": self.end_to_end_speedup,
            "output_identical": self.output_identical,
        }


def run_decode_performance(
    run: ExperimentRun = None,
    max_workers: Optional[int] = None,
    trace_dir: Optional[Path] = None,
) -> DecodePerformance:
    """Time file ingest both ways on the building trace.

    Decode drains alternate engines per file (both runs hit the same
    freshly written, page-cached bytes) and assert record-for-record
    equality as they go, so peak heap stays at two traces instead of
    two fleets.  The end-to-end pair then runs the complete pipeline —
    bootstrap over streams, sharded merge — with scalar ingest
    (``vectorized=False, decode_ahead=0``: the pre-batching pipeline)
    and with the default batch engine + decode-ahead, asserting
    bit-identical jframes and stats.  Each end-to-end leg runs twice in
    alternation and records its best time, so a transient CPU-quota
    throttle window cannot land inside one leg and invert the ratio.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    clock_groups = run.artifacts.clock_groups()

    owned = None
    if trace_dir is None:
        owned = tempfile.TemporaryDirectory(prefix="jigsaw-decode-bench-")
        trace_dir = Path(owned.name)
        write_traces(traces, trace_dir)
    try:
        identical = True
        scalar_decode = 0.0
        batched_decode = 0.0
        n_records = 0
        gc.collect()
        gc.freeze()
        try:
            for path in sorted(Path(trace_dir).glob("radio_*.jtr.gz")):
                started = time.perf_counter()
                scalar_records = open_trace_stream(
                    path, vectorized=False, decode_ahead=0
                ).records
                scalar_decode += time.perf_counter() - started
                started = time.perf_counter()
                batched_records = open_trace_stream(
                    path, vectorized=True, decode_ahead=0
                ).records
                batched_decode += time.perf_counter() - started
                identical = identical and scalar_records == batched_records
                n_records += len(scalar_records)
        finally:
            gc.unfreeze()

        unifier = ShardedUnifier(Unifier(), max_workers=max_workers)

        def _pipeline(**ingest) -> tuple:
            started = time.perf_counter()
            streams = open_trace_streams(trace_dir, **ingest)
            bootstrap = ShardedBootstrap(max_workers=max_workers).bootstrap(
                streams, clock_groups=clock_groups
            )
            result = unifier.unify(streams, bootstrap)
            return time.perf_counter() - started, result

        # Two alternating rounds per leg, best-of taken: shared-runner
        # CPU quota oscillates on the scale of one pipeline run, and a
        # throttle window landing inside a single leg would otherwise
        # invert the recorded ratio.  Noise only ever adds time, so the
        # per-leg minimum is the faithful same-environment comparison.
        totals: dict = {}
        digests: dict = {}
        for _ in range(2):
            for label, ingest in (
                ("scalar", {"vectorized": False, "decode_ahead": 0}),
                ("batched", {}),
            ):
                gc.collect()
                gc.freeze()
                try:
                    elapsed, result = _pipeline(**ingest)
                finally:
                    gc.unfreeze()
                totals.setdefault(label, []).append(elapsed)
                if label not in digests:
                    digests[label] = (
                        result.stats,
                        [
                            (j.timestamp_us, j.channel, j.fcs, j.n_instances)
                            for j in result.jframes
                        ],
                    )
                # Digest-and-free: a materialized result pins ~1.5M
                # record objects; keeping one alive while the next leg
                # allocates its own pushes the process into memory
                # pressure that bills the *later* legs.  Identity is
                # checked on the digests instead.
                del result
        scalar_total = min(totals["scalar"])
        batched_total = min(totals["batched"])
        scalar_stats, scalar_digest = digests["scalar"]
        batched_stats, batched_digest = digests["batched"]
        identical = (
            identical
            and scalar_stats == batched_stats
            and scalar_digest == batched_digest
        )
    finally:
        if owned is not None:
            owned.cleanup()

    return DecodePerformance(
        records=n_records,
        n_radios=len(traces),
        jframes=batched_stats.jframes,
        scalar_decode_seconds=scalar_decode,
        batched_decode_seconds=batched_decode,
        scalar_end_to_end_seconds=scalar_total,
        batched_end_to_end_seconds=batched_total,
        output_identical=identical,
    )


@dataclass
class MemoryProfile:
    """Peak pipeline heap, materialized vs streaming-pass execution.

    The retained pair measures what a caller still holds after a
    ``materialize=False`` run returns: with observation -> exchange
    back-references intact, the flows pin every data jframe; after
    :meth:`~repro.core.transport.flows.TcpFlow.trim_exchange_refs` (the
    pipeline's default for streaming runs) that O(data-subset) term is
    gone.
    """

    materialized_peak_bytes: int
    streaming_peak_bytes: int
    untrimmed_retained_bytes: int
    trimmed_retained_bytes: int
    records: int
    jframes: int

    @property
    def reduction_factor(self) -> float:
        """>1 means the streaming run peaked lower."""
        if self.streaming_peak_bytes == 0:
            return float("inf")
        return self.materialized_peak_bytes / self.streaming_peak_bytes

    @property
    def trim_reduction_factor(self) -> float:
        """>1 means trimming exchange refs shrank the retained heap."""
        if self.trimmed_retained_bytes == 0:
            return float("inf")
        return self.untrimmed_retained_bytes / self.trimmed_retained_bytes

    def format_table(self) -> str:
        return "\n".join(
            [
                f"records in:             {self.records:,}",
                f"jframes:                {self.jframes:,}",
                "materialized peak heap: "
                f"{self.materialized_peak_bytes / 1e6:.1f} MB",
                "streaming peak heap:    "
                f"{self.streaming_peak_bytes / 1e6:.1f} MB "
                "(materialize=False, passes inline)",
                f"reduction factor:       {self.reduction_factor:.2f}x",
                "retained after run:     "
                f"{self.untrimmed_retained_bytes / 1e6:.1f} MB with "
                "exchange refs, "
                f"{self.trimmed_retained_bytes / 1e6:.1f} MB trimmed "
                f"({self.trim_reduction_factor:.2f}x)",
            ]
        )

    def as_dict(self) -> dict:
        return {
            "materialized_peak_bytes": self.materialized_peak_bytes,
            "streaming_peak_bytes": self.streaming_peak_bytes,
            "untrimmed_retained_bytes": self.untrimmed_retained_bytes,
            "trimmed_retained_bytes": self.trimmed_retained_bytes,
            "records": self.records,
            "jframes": self.jframes,
            "reduction_factor": self.reduction_factor,
            "trim_reduction_factor": self.trim_reduction_factor,
        }


def _representative_passes(duration_us: int) -> list:
    """The pass set the memory profile runs inline (Figures 4/8/9, Table 1)."""
    from ..core.analysis import (
        ActivityPass,
        DispersionPass,
        InterferencePass,
        StationTracker,
        SummaryPass,
    )

    tracker = StationTracker()  # classify stations once, share across passes
    return [
        ActivityPass(
            duration_us, bin_us=max(1, duration_us // 24), tracker=tracker
        ),
        DispersionPass(),
        InterferencePass(min_packets=30, tracker=tracker),
        SummaryPass(duration_us, tracker=tracker),
    ]


def run_memory_profile(run: ExperimentRun = None) -> MemoryProfile:
    """Peak-heap comparison: materialized report vs streaming passes.

    Both runs execute the identical pipeline (same precomputed bootstrap)
    with the same analysis passes registered; the only difference is the
    built-in materialization pass.  tracemalloc tracks every allocation,
    so the peak includes jframe/attempt/exchange object graphs — exactly
    what ``materialize=False`` exists to shed.
    """
    run = run or get_building_run()
    traces = run.artifacts.radio_traces
    bootstrap = bootstrap_synchronization(
        traces, clock_groups=run.artifacts.clock_groups()
    )

    def _peak(materialize: bool) -> tuple:
        pipeline = JigsawPipeline()
        gc.collect()
        tracemalloc.start()
        try:
            # Trimming is deferred so the streaming run can weigh the
            # exchange back-references' retained heap before severing.
            report = pipeline.run(
                traces,
                bootstrap=bootstrap,
                passes=_representative_passes(run.duration_us),
                materialize=materialize,
                trim_exchange_refs=False,
            )
            _, peak = tracemalloc.get_traced_memory()
            untrimmed = trimmed = 0
            if not materialize:
                gc.collect()
                untrimmed, _ = tracemalloc.get_traced_memory()
                for flow in report.flows:
                    flow.trim_exchange_refs()
                gc.collect()
                trimmed, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak, untrimmed, trimmed, report.unification.stats

    materialized_peak, _, _, stats = _peak(True)
    streaming_peak, untrimmed, trimmed, _ = _peak(False)
    return MemoryProfile(
        materialized_peak_bytes=materialized_peak,
        streaming_peak_bytes=streaming_peak,
        untrimmed_retained_bytes=untrimmed,
        trimmed_retained_bytes=trimmed,
        records=stats.records_in,
        jframes=stats.jframes,
    )


def main() -> None:
    perf = run_merge_performance()
    print("=== Merge performance (Section 4 requirement) ===")
    print(perf.format_table())
    print()
    print("=== Radio scaling (records/second by fleet size) ===")
    for point in run_radio_scaling():
        print(
            f"  {point.n_radios:4d} radios: "
            f"{point.records_per_second:>10,.0f} rec/s  "
            f"({point.realtime_factor:.2f}x real time)"
        )
    print()
    print("=== Campus scaling (hierarchical merge, 500+ radios) ===")
    for point in run_campus_radio_scaling():
        print(
            f"  {point.n_radios:4d} radios: "
            f"{point.records_per_second:>10,.0f} rec/s  "
            f"({point.realtime_factor:.2f}x real time)  [{point.engine}]"
        )
    print()
    print("=== Hierarchy: flat shards vs pod x channel merge tree ===")
    print(run_hierarchy_performance().format_table())
    print()
    print("=== Pool scaling (worker-count sweep, one campus merge) ===")
    print(run_pool_scaling().format_table())
    print()
    print("=== Bootstrap prepass: two-read vs single-read sharded ===")
    print(run_bootstrap_performance().format_table())
    print()
    print("=== Decode: scalar vs batch-vectorized ingest ===")
    print(run_decode_performance().format_table())
    print()
    print("=== Peak memory: materialized vs streaming passes ===")
    print(run_memory_profile().format_table())


if __name__ == "__main__":
    main()
