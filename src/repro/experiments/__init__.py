"""One module per paper table/figure; see DESIGN.md's experiment index."""

from .common import (
    ExperimentRun,
    building_config,
    campus_config,
    get_building_run,
    get_campus_run,
    get_small_run,
    small_config,
)
from .scenarios import get_family_run, run_family_sweep

__all__ = [
    "ExperimentRun",
    "building_config",
    "campus_config",
    "get_building_run",
    "get_campus_run",
    "get_small_run",
    "small_config",
    "get_family_run",
    "run_family_sweep",
]
