"""One module per paper table/figure; see DESIGN.md's experiment index."""

from .common import (
    ExperimentRun,
    building_config,
    get_building_run,
    get_small_run,
    small_config,
)

__all__ = [
    "ExperimentRun",
    "building_config",
    "get_building_run",
    "get_small_run",
    "small_config",
]
