"""Flow drivers: wiring TCP peers onto the wireless and wired substrates.

One :class:`FlowDriver` executes one :class:`~repro.sim.workload.FlowRequest`:
a client-side peer whose packets ride the station's 802.11 uplink, and a
server-side peer on a wired host reached through the distribution network.
Losses the flow experiences therefore come from two distinct places — the
wireless hop (link-layer exchanges that exhaust their retries) and the
wired path (the configured loss rate) — which is precisely the split
Figure 11 decomposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..mac.station import Station
from ..net.packets import IpPacket, ip_to_bytes, try_parse_packet
from ..net.wired import WiredHost, WiredNetwork
from ..sim.kernel import Kernel
from ..sim.workload import FlowRequest
from .endpoint import TcpDemux, TcpPeer

#: Server ports by archetype name (web/ssh/scp -> http/ssh/ssh).
ARCHETYPE_PORTS = {"web": 80, "ssh": 22, "scp": 22}


class StationPort:
    """Client-side egress: IP packets ride the station's 802.11 uplink."""

    def __init__(self, station: Station) -> None:
        self._station = station

    def send(self, packet: IpPacket) -> None:
        self._station.send_payload(ip_to_bytes(packet))


class WiredPort:
    """Server-side egress: IP packets traverse the distribution network."""

    def __init__(self, wired: WiredNetwork) -> None:
        self._wired = wired

    def send(self, packet: IpPacket) -> None:
        self._wired.send_to_client(packet)


class StationStack:
    """Installs a TCP demux behind a station's packet sink (one per STA)."""

    def __init__(self, station: Station) -> None:
        self.station = station
        self.demux = TcpDemux()
        station.packet_sink = self._on_payload

    def _on_payload(self, payload: bytes) -> None:
        packet = try_parse_packet(payload)
        if isinstance(packet, IpPacket):
            self.demux.deliver(packet)


class HostStack:
    """Installs a TCP demux behind a wired host (one per host)."""

    def __init__(self, host: WiredHost) -> None:
        self.host = host
        self.demux = TcpDemux()
        host.add_sink(self.demux.deliver)


@dataclass
class FlowOutcome:
    """Ground truth for one executed flow."""

    flow: FlowRequest
    client_port: int
    server_port: int
    client_ip: int
    server_ip: int
    started_us: int
    completed: bool = False
    finished_us: Optional[int] = None
    client_stats: Optional[object] = None
    server_stats: Optional[object] = None


class FlowDriver:
    """Creates and starts the two peers of one flow."""

    def __init__(
        self,
        kernel: Kernel,
        rng: np.random.Generator,
        flow: FlowRequest,
        station_stack: StationStack,
        client_ip: int,
        host_stack: HostStack,
        wired: WiredNetwork,
        client_port: int,
    ) -> None:
        self.kernel = kernel
        self.flow = flow
        server_port = ARCHETYPE_PORTS[flow.archetype.value]
        server_ip = host_stack.host.ip
        self.outcome = FlowOutcome(
            flow=flow,
            client_port=client_port,
            server_port=server_port,
            client_ip=client_ip,
            server_ip=server_ip,
            started_us=flow.start_us,
        )

        client_sends = not flow.download
        self.client = TcpPeer(
            kernel,
            StationPort(station_stack.station),
            local_ip=client_ip,
            local_port=client_port,
            remote_ip=server_ip,
            remote_port=server_port,
            rng=rng,
            is_client=True,
            bytes_to_send=flow.total_bytes if client_sends else 0,
            segment_bytes=flow.segment_bytes,
            on_complete=self._on_client_done,
        )
        self.server = TcpPeer(
            kernel,
            WiredPort(wired),
            local_ip=server_ip,
            local_port=server_port,
            remote_ip=client_ip,
            remote_port=client_port,
            rng=rng,
            is_client=False,
            bytes_to_send=0 if client_sends else flow.total_bytes,
            segment_bytes=flow.segment_bytes,
            on_complete=self._on_server_done,
        )
        station_stack.demux.register(
            client_port, server_ip, server_port, self.client.handle
        )
        host_stack.demux.register(
            server_port, client_ip, client_port, self.server.handle
        )
        self.outcome.client_stats = self.client.stats
        self.outcome.server_stats = self.server.stats
        kernel.at(flow.start_us, self._start)

    def _start(self) -> None:
        # A not-yet-associated station queues the SYN and flushes it on
        # association; the handshake RTO covers the residual wait.
        self.client.open()

    def _on_client_done(self, ok: bool) -> None:
        self._maybe_complete()

    def _on_server_done(self, ok: bool) -> None:
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self.client.finished and self.server.finished:
            self.outcome.completed = (
                self.client.state.value == "done"
                and self.server.state.value == "done"
            )
            self.outcome.finished_us = self.kernel.now_us
