"""TCP endpoints.

A deliberately small but *behaviorally real* TCP: three-way handshake,
windowed data transfer with cumulative ACKs, retransmission on RTO with
exponential backoff, fast retransmit on triple duplicate ACKs, and FIN
teardown.  These are exactly the dynamics Jigsaw's transport inference
consumes — "RTT, RTO, fast retransmissions, segment losses" (Section 5.2,
after Jaiswal et al.) — and the ACK-coverage oracle depends on cumulative
acknowledgments covering delivered sequence space.

Congestion control is reduced to a fixed window: the paper's analyses need
loss/retransmission structure, not cwnd evolution, and a fixed window keeps
flows deterministic and fast to simulate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple

import numpy as np

from ..net.packets import IpPacket, TcpFlags, TcpSegment
from ..sim.kernel import EventHandle, Kernel

_SEQ_MOD = 1 << 32


def seq_add(a: int, delta: int) -> int:
    return (a + delta) % _SEQ_MOD


def seq_lt(a: int, b: int) -> bool:
    """Modular 32-bit sequence comparison (RFC 793 style)."""
    return ((b - a) % _SEQ_MOD) - 1 < (_SEQ_MOD // 2) - 1 and a != b


def seq_leq(a: int, b: int) -> bool:
    return a == b or seq_lt(a, b)


class Port(Protocol):
    """Where a peer pushes outgoing packets (wireless or wired path)."""

    def send(self, packet: IpPacket) -> None: ...


class TcpState(enum.Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    CLOSE_WAIT = "close_wait"
    DONE = "done"
    ABORTED = "aborted"


#: Fixed in-flight window, in segments.
DEFAULT_WINDOW_SEGMENTS = 8

#: Initial retransmission timeout and its cap.
DEFAULT_RTO_US = 300_000
MAX_RTO_US = 5_000_000

#: Give up after this many consecutive unanswered retransmissions.
MAX_RETX = 10


@dataclass
class TcpStats:
    """Ground-truth per-peer counters for the evaluation."""

    segments_sent: int = 0
    data_segments_sent: int = 0
    retransmits_timeout: int = 0
    retransmits_fast: int = 0
    acks_sent: int = 0
    bytes_acked: int = 0


class TcpPeer:
    """One endpoint of one connection."""

    def __init__(
        self,
        kernel: Kernel,
        port: Port,
        local_ip: int,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        rng: np.random.Generator,
        is_client: bool,
        bytes_to_send: int = 0,
        segment_bytes: int = 1460,
        window_segments: int = DEFAULT_WINDOW_SEGMENTS,
        rto_us: int = DEFAULT_RTO_US,
        on_complete: Optional[Callable[[bool], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.port = port
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.is_client = is_client
        self.bytes_to_send = bytes_to_send
        self.segment_bytes = segment_bytes
        self.window_segments = window_segments
        self.base_rto_us = rto_us
        self.on_complete = on_complete
        self.stats = TcpStats()

        self.state = TcpState.CLOSED if is_client else TcpState.LISTEN
        self.isn = int(rng.integers(0, _SEQ_MOD))
        self.snd_una = self.isn
        self.snd_nxt = self.isn
        self.rcv_nxt: Optional[int] = None
        self._sent_segments: Dict[int, int] = {}   # seq -> payload_len
        self._ooo: Dict[int, int] = {}             # out-of-order seq -> len
        self._dupacks = 0
        self._retx_count = 0
        self._rto_us = rto_us
        self._rto_timer: Optional[EventHandle] = None
        self._fin_seq: Optional[int] = None
        self._sent_fin = False
        self._peer_fin_seen = False

    # --- lifecycle -------------------------------------------------------

    def open(self) -> None:
        """Client: begin the three-way handshake."""
        assert self.is_client
        self.state = TcpState.SYN_SENT
        self._send(TcpFlags.SYN, seq=self.isn)
        self.snd_nxt = seq_add(self.isn, 1)
        self._arm_rto()

    def abort(self) -> None:
        self._disarm_rto()
        if self.state not in (TcpState.DONE, TcpState.ABORTED):
            self.state = TcpState.ABORTED
            if self.on_complete is not None:
                self.on_complete(False)

    @property
    def finished(self) -> bool:
        return self.state in (TcpState.DONE, TcpState.ABORTED)

    @property
    def data_end_seq(self) -> int:
        """Sequence number just past the last payload byte."""
        return seq_add(self.isn, 1 + self.bytes_to_send)

    # --- receive path ----------------------------------------------------------

    def handle(self, seg: TcpSegment) -> None:
        if self.finished:
            return
        if seg.is_syn and not seg.is_ack:
            self._handle_syn(seg)
        elif seg.is_syn and seg.is_ack:
            self._handle_synack(seg)
        else:
            if seg.payload_len > 0 or seg.is_fin:
                self._handle_data(seg)
            if seg.is_ack:
                self._handle_ack(seg)

    def _handle_syn(self, seg: TcpSegment) -> None:
        if self.state is not TcpState.LISTEN:
            # SYN retransmission: re-answer.
            if self.rcv_nxt is None:
                return
        self.rcv_nxt = seq_add(seg.seq, 1)
        self.state = TcpState.SYN_RCVD
        self._send(TcpFlags.SYN | TcpFlags.ACK, seq=self.isn, ack=self.rcv_nxt)
        self.snd_nxt = seq_add(self.isn, 1)
        self._arm_rto()

    def _handle_synack(self, seg: TcpSegment) -> None:
        if self.state is not TcpState.SYN_SENT:
            return
        self.rcv_nxt = seq_add(seg.seq, 1)
        self.snd_una = seg.ack
        self.state = TcpState.ESTABLISHED
        self._retx_count = 0
        self._rto_us = self.base_rto_us
        self._send_ack()
        self._disarm_rto()
        self._pump()

    def _handle_data(self, seg: TcpSegment) -> None:
        if self.rcv_nxt is None:
            return
        if self.state is TcpState.SYN_RCVD:
            # Our SYN-ACK was ACKed implicitly by data arriving.
            self.state = TcpState.ESTABLISHED
            self._disarm_rto()
        advanced = False
        if seg.payload_len > 0:
            if seg.seq == self.rcv_nxt:
                self.rcv_nxt = seq_add(self.rcv_nxt, seg.payload_len)
                advanced = True
                self._drain_ooo()
            elif seq_lt(self.rcv_nxt, seg.seq):
                self._ooo[seg.seq] = seg.payload_len
            # else: duplicate of already-received data; just re-ACK.
        if seg.is_fin:
            fin_seq = seq_add(seg.seq, seg.payload_len)
            if fin_seq == self.rcv_nxt:
                self.rcv_nxt = seq_add(self.rcv_nxt, 1)
                self._peer_fin_seen = True
                advanced = True
        self._send_ack()
        self._maybe_send_fin()
        self._maybe_finish()

    def _drain_ooo(self) -> None:
        while self.rcv_nxt in self._ooo:
            length = self._ooo.pop(self.rcv_nxt)
            self.rcv_nxt = seq_add(self.rcv_nxt, length)

    def _handle_ack(self, seg: TcpSegment) -> None:
        if self.state is TcpState.SYN_RCVD and seq_lt(self.snd_una, seg.ack):
            self.state = TcpState.ESTABLISHED
            self.snd_una = seg.ack
            self._disarm_rto()
            self._retx_count = 0
            self._pump()
            return
        if seq_lt(self.snd_una, seg.ack) and seq_leq(seg.ack, self.snd_nxt):
            delta = (seg.ack - self.snd_una) % _SEQ_MOD
            self.stats.bytes_acked += delta
            self.snd_una = seg.ack
            self._sent_segments = {
                seq: length
                for seq, length in self._sent_segments.items()
                if seq_leq(seg.ack, seq)
            }
            self._dupacks = 0
            self._retx_count = 0
            self._rto_us = self.base_rto_us
            if self._unacked_bytes() == 0:
                self._disarm_rto()
            else:
                self._arm_rto(refresh=True)
            self._pump()
            self._maybe_send_fin()
        elif seg.ack == self.snd_una and self._unacked_bytes() > 0:
            self._dupacks += 1
            if self._dupacks >= 3:
                self._fast_retransmit()
        self._maybe_finish()

    # --- send path -----------------------------------------------------------------

    def _pump(self) -> None:
        """Send new data while the window allows, then FIN when done."""
        if self.state is not TcpState.ESTABLISHED:
            return
        window_bytes = self.window_segments * self.segment_bytes
        while True:
            sent_bytes = (self.snd_nxt - seq_add(self.isn, 1)) % _SEQ_MOD
            remaining = self.bytes_to_send - sent_bytes
            if remaining <= 0:
                break
            in_flight = self._unacked_bytes()
            if in_flight + self.segment_bytes > window_bytes:
                break
            length = min(self.segment_bytes, remaining)
            self._send(
                TcpFlags.ACK | TcpFlags.PSH,
                seq=self.snd_nxt,
                ack=self.rcv_nxt or 0,
                payload_len=length,
            )
            self.stats.data_segments_sent += 1
            self._sent_segments[self.snd_nxt] = length
            self.snd_nxt = seq_add(self.snd_nxt, length)
            self._arm_rto()
        self._maybe_send_fin()

    def _data_fully_acked(self) -> bool:
        sent = (self.snd_nxt - seq_add(self.isn, 1)) % _SEQ_MOD
        return sent == self.bytes_to_send and self._unacked_bytes() == 0

    def _maybe_send_fin(self) -> None:
        """Close our half of the connection when it is our turn.

        The data sender closes first, once everything is acked; a pure
        receiver closes only in response to the peer's FIN.  This mirrors
        the dominant close pattern in real traces and avoids premature
        half-close racing the transfer.
        """
        if self._sent_fin or self.state is not TcpState.ESTABLISHED:
            return
        if not self._data_fully_acked():
            return
        if self.bytes_to_send > 0 or self._peer_fin_seen:
            self._send_fin()

    def _send_fin(self) -> None:
        self._sent_fin = True
        self._fin_seq = self.snd_nxt
        self._send(
            TcpFlags.FIN | TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt or 0
        )
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        self.state = TcpState.FIN_WAIT
        self._arm_rto()

    def _send_ack(self) -> None:
        self.stats.acks_sent += 1
        self._send(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt or 0)

    def _send(
        self,
        flags: TcpFlags,
        seq: int,
        ack: int = 0,
        payload_len: int = 0,
    ) -> None:
        self.stats.segments_sent += 1
        segment = TcpSegment(
            sport=self.local_port,
            dport=self.remote_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload_len=payload_len,
        )
        self.port.send(IpPacket(self.local_ip, self.remote_ip, segment))

    def _unacked_bytes(self) -> int:
        """Sequence space in flight (payload plus any unacked SYN/FIN)."""
        return (self.snd_nxt - self.snd_una) % _SEQ_MOD

    def _fin_acked(self) -> bool:
        if self._fin_seq is None:
            return False
        return seq_lt(self._fin_seq, self.snd_una)

    # --- retransmission --------------------------------------------------------------

    def _fast_retransmit(self) -> None:
        self._dupacks = 0
        length = self._sent_segments.get(self.snd_una)
        if length is None:
            return
        self.stats.retransmits_fast += 1
        self._send(
            TcpFlags.ACK | TcpFlags.PSH,
            seq=self.snd_una,
            ack=self.rcv_nxt or 0,
            payload_len=length,
        )
        self._arm_rto(refresh=True)

    def _arm_rto(self, refresh: bool = False) -> None:
        if self._rto_timer is not None:
            if not refresh:
                return
            self._rto_timer.cancel()
        self._rto_timer = self.kernel.after(self._rto_us, self._on_rto)

    def _disarm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.finished:
            return
        self._retx_count += 1
        if self._retx_count > MAX_RETX:
            self.abort()
            return
        self._rto_us = min(self._rto_us * 2, MAX_RTO_US)
        if self.state is TcpState.SYN_SENT:
            self._send(TcpFlags.SYN, seq=self.isn)
        elif self.state is TcpState.SYN_RCVD:
            self._send(
                TcpFlags.SYN | TcpFlags.ACK,
                seq=self.isn,
                ack=self.rcv_nxt or 0,
            )
        elif self._unacked_bytes() > 0 or self._sent_fin:
            if self._sent_fin and self.snd_una == self._fin_seq:
                self._send(
                    TcpFlags.FIN | TcpFlags.ACK,
                    seq=self._fin_seq,
                    ack=self.rcv_nxt or 0,
                )
            else:
                length = self._sent_segments.get(self.snd_una)
                if length is not None:
                    self.stats.retransmits_timeout += 1
                    self._send(
                        TcpFlags.ACK | TcpFlags.PSH,
                        seq=self.snd_una,
                        ack=self.rcv_nxt or 0,
                        payload_len=length,
                    )
        self._arm_rto(refresh=True)

    # --- teardown ----------------------------------------------------------------

    def _maybe_finish(self) -> None:
        if self.finished:
            return
        if self._sent_fin and self._fin_acked() and self._peer_fin_seen:
            self.state = TcpState.DONE
            self._disarm_rto()
            if self.on_complete is not None:
                self.on_complete(True)


class TcpDemux:
    """Per-node connection demultiplexer."""

    def __init__(self) -> None:
        self._handlers: Dict[Tuple[int, int, int], Callable[[TcpSegment], None]] = {}

    def register(
        self,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        handler: Callable[[TcpSegment], None],
    ) -> None:
        key = (local_port, remote_ip, remote_port)
        if key in self._handlers:
            raise ValueError(f"connection already registered: {key}")
        self._handlers[key] = handler

    def deliver(self, packet: IpPacket) -> bool:
        if not isinstance(packet.payload, TcpSegment):
            return False
        seg = packet.payload
        handler = self._handlers.get((seg.dport, packet.src, seg.sport))
        if handler is None:
            return False
        handler(seg)
        return True
