"""Transport substrate: a small, behaviorally real TCP."""

from .endpoint import (
    DEFAULT_RTO_US,
    DEFAULT_WINDOW_SEGMENTS,
    MAX_RETX,
    TcpDemux,
    TcpPeer,
    TcpState,
    TcpStats,
    seq_add,
    seq_leq,
    seq_lt,
)

__all__ = [
    "DEFAULT_RTO_US",
    "DEFAULT_WINDOW_SEGMENTS",
    "MAX_RETX",
    "TcpDemux",
    "TcpPeer",
    "TcpState",
    "TcpStats",
    "seq_add",
    "seq_leq",
    "seq_lt",
]
