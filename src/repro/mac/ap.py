"""Access points.

APs beacon every ~100 ms, answer probes, run the association handshake,
bridge between the wired distribution network and the air, relay wired
broadcasts (at the lowest rate, on every AP at roughly the same time — the
inefficiency Section 7.1 quantifies), and implement the 802.11g protection
policy whose over-conservatism Section 7.3 analyzes:

    "An AP will not turn off protection until an hour has passed without
    sensing an 802.11b client in range."

The timeout is a scenario parameter so the Figure 10 experiment can compare
the production policy (1 hour) against the paper's practical one (1 minute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..dot11.address import MacAddress
from ..dot11.channels import Channel
from ..dot11.constants import BEACON_INTERVAL_US
from ..dot11.frame import (
    Frame,
    FrameType,
    frame_marks_cck_only,
    make_assoc_response,
    make_auth,
    make_beacon,
    make_data,
    make_probe_response,
)
from ..dot11.rates import B_RATES, G_RATES, PhyRate, RATE_1
from ..phy.propagation import Point
from ..sim.kernel import Kernel
from .dcf import TxJob
from .medium import Medium, Transmission
from .station import WirelessInterface, select_rate


@dataclass
class ClientState:
    """What the AP knows about one associated client."""

    supports_ofdm: bool
    rssi_dbm: float
    associated: bool = False


class AccessPoint(WirelessInterface):
    """One production AP bridging the air and the wired network."""

    def __init__(
        self,
        kernel: Kernel,
        medium: Medium,
        mac: MacAddress,
        position: Point,
        channel: Channel,
        tx_power_dbm: float,
        rng: np.random.Generator,
        protection_timeout_us: int,
        ssid: str = "jigsaw",
    ) -> None:
        super().__init__(
            kernel, medium, mac, position, channel, tx_power_dbm, rng,
            supports_ofdm=True,
        )
        self.ssid = ssid
        self.protection_timeout_us = protection_timeout_us
        self.clients: Dict[MacAddress, ClientState] = {}
        #: True-time of the last sensed 802.11b client; None = never.
        self.last_11b_seen_us: Optional[int] = None
        #: Uplink bridge hook, installed by the wired network.
        self.uplink_sink: Optional[Callable[[MacAddress, bytes], None]] = None
        # Stagger beacon phases so co-channel APs do not beacon in lockstep.
        phase = int(rng.integers(0, BEACON_INTERVAL_US))
        kernel.at(phase, self._beacon_tick)

    # --- protection policy --------------------------------------------------

    @property
    def protection_enabled(self) -> bool:
        """Whether CTS-to-self protection is currently on (Section 7.3)."""
        if self.last_11b_seen_us is None:
            return False
        return (
            self.kernel.now_us - self.last_11b_seen_us
            < self.protection_timeout_us
        )

    def _note_possible_11b(self, frame: Frame) -> None:
        if frame_marks_cck_only(frame):
            self.last_11b_seen_us = self.kernel.now_us
            return
        sender = frame.addr2
        if sender is not None:
            state = self.clients.get(sender)
            if state is not None and not state.supports_ofdm:
                self.last_11b_seen_us = self.kernel.now_us

    # --- beaconing ---------------------------------------------------------------

    def _beacon_tick(self) -> None:
        beacon = make_beacon(
            self.mac,
            self.next_seq(),
            ssid=self.ssid,
            protection=self.protection_enabled,
        )
        self.dcf.enqueue(TxJob(beacon, RATE_1))
        self.kernel.after(BEACON_INTERVAL_US, self._beacon_tick)

    # --- frame handling -------------------------------------------------------------

    def handle_frame(self, frame: Frame, rssi_dbm: float, tx: Transmission) -> None:
        self._note_possible_11b(frame)
        if frame.ftype is FrameType.AUTH:
            assert frame.addr2 is not None
            reply = make_auth(self.mac, frame.addr2, self.next_seq(), step=2)
            self.dcf.enqueue(TxJob(reply, self._client_rate(frame.addr2, mgmt=True)))
        elif frame.ftype is FrameType.ASSOC_REQUEST:
            assert frame.addr2 is not None
            supports_ofdm = not frame_marks_cck_only(frame)
            self.clients[frame.addr2] = ClientState(
                supports_ofdm=supports_ofdm,
                rssi_dbm=rssi_dbm,
                associated=True,
            )
            if not supports_ofdm:
                self.last_11b_seen_us = self.kernel.now_us
            reply = make_assoc_response(self.mac, frame.addr2, self.next_seq())
            self.dcf.enqueue(TxJob(reply, self._client_rate(frame.addr2, mgmt=True)))
        elif frame.ftype is FrameType.DATA and frame.to_ds:
            assert frame.addr2 is not None
            state = self.clients.get(frame.addr2)
            if state is not None:
                state.rssi_dbm = rssi_dbm
            if self.uplink_sink is not None:
                self.uplink_sink(frame.addr2, frame.body)

    def handle_overheard(
        self, frame: Frame, rssi_dbm: float, tx: Transmission
    ) -> None:
        self._note_possible_11b(frame)
        if frame.ftype is FrameType.PROBE_REQUEST and frame.addr2 is not None:
            response = make_probe_response(
                self.mac, frame.addr2, self.next_seq(), ssid=self.ssid
            )
            self.dcf.enqueue(TxJob(response, RATE_1))

    # --- downlink -----------------------------------------------------------------

    def _client_rate(self, client: MacAddress, mgmt: bool = False) -> PhyRate:
        state = self.clients.get(client)
        if state is None:
            return RATE_1
        if mgmt or not state.supports_ofdm:
            return select_rate(state.rssi_dbm, B_RATES)
        return select_rate(state.rssi_dbm, G_RATES)

    def send_downlink(self, client: MacAddress, payload: bytes) -> bool:
        """Bridge one wired packet onto the air toward ``client``."""
        state = self.clients.get(client)
        if state is None or not state.associated:
            return False
        rate = self._client_rate(client)
        frame = make_data(
            self.mac, client, self.mac,
            seq=self.next_seq(), body=payload, from_ds=True,
        )
        protect = rate.is_ofdm and self.protection_enabled
        return self.dcf.enqueue(TxJob(frame, rate, protect=protect))

    def send_broadcast(self, payload: bytes) -> None:
        """Relay a wired broadcast onto the air.

        "Because 802.11 APs are designed to act as transparent bridges all
        ARP 'who-has' broadcasts from the wired network are also broadcast
        on the wireless channel ... always encoded at the lowest rate"
        (Section 7.1).
        """
        from ..dot11.address import BROADCAST

        frame = make_data(
            self.mac, BROADCAST, self.mac,
            seq=self.next_seq(), body=payload, from_ds=True,
        )
        self.dcf.enqueue(TxJob(frame, RATE_1))
