"""Wireless interfaces: the shared receive path and the client station.

A :class:`WirelessInterface` is anything with a MAC address and a radio:
it attaches to the medium, classifies each air event with its own
:class:`~repro.phy.reception.ReceptionModel`, maintains the NAV ("each node
will defer transmission until this time has passed" — Section 2), answers
unicast frames with ACKs after SIFS, and owns a :class:`~repro.mac.dcf.Dcf`
transmit engine.

:class:`Station` is a client: it scans (probe requests on each monitored
channel, which is how APs and the Section 7.3 analysis learn an 802.11b
client is in range), authenticates and associates with its AP, then carries
IP payloads for the transport substrate.  Stations are either 802.11g
(OFDM-capable) or legacy 802.11b — the mix that drives protection mode.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..dot11.address import MacAddress
from ..dot11.channels import Channel, ORTHOGONAL_CHANNELS
from ..dot11.constants import SEQ_MODULO, SIFS_US
from ..dot11.frame import (
    Frame,
    FrameType,
    beacon_advertises_protection,
    make_ack,
    make_assoc_request,
    make_auth,
    make_data,
    make_probe_request,
)
from ..dot11.rates import (
    ALL_RATES,
    B_RATES,
    G_RATES,
    PhyRate,
    RATE_1,
    RATE_SNR_THRESHOLDS_DB,
)
from ..dot11.serialize import frame_to_bytes
from ..phy.propagation import Point
from ..phy.reception import (
    DEFAULT_NOISE_FLOOR_DBM,
    ReceptionModel,
    ReceptionOutcome,
)
from ..sim.kernel import Kernel
from .dcf import Dcf, TxJob
from .medium import Medium, Transmission

#: SNR headroom demanded above a rate's threshold before selecting it.
RATE_SELECTION_MARGIN_DB = 4.0

#: Receive gain of production stations and APs over the monitors' rubber
#: duck antennas: diversity antennas plus better front ends.  This is what
#: lets an AP decode marginal client frames that no monitor captures
#: (Section 6's imperfect client coverage).
STATION_RX_GAIN_DB = 7.0

#: How long a station waits on each channel while scanning.
SCAN_DWELL_US = 30_000

#: Handshake stall timeout before the station restarts association.
ASSOC_TIMEOUT_US = 1_000_000


def select_rate(
    rssi_dbm: float,
    allowed: Tuple[PhyRate, ...],
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
) -> PhyRate:
    """Highest allowed rate with comfortable SNR margin at ``rssi_dbm``."""
    snr = rssi_dbm - noise_floor_dbm
    eligible = [
        r
        for r in allowed
        if RATE_SNR_THRESHOLDS_DB[r] + RATE_SELECTION_MARGIN_DB <= snr
    ]
    if not eligible:
        return min(allowed, key=lambda r: r.mbps)
    return max(eligible, key=lambda r: r.mbps)


class WirelessInterface:
    """Base class: one radio with a MAC address on one channel."""

    def __init__(
        self,
        kernel: Kernel,
        medium: Medium,
        mac: MacAddress,
        position: Point,
        channel: Channel,
        tx_power_dbm: float,
        rng: np.random.Generator,
        supports_ofdm: bool = True,
    ) -> None:
        self.kernel = kernel
        self.medium = medium
        self.mac = mac
        self.position = position
        self.channel = channel
        self.tx_power_dbm = tx_power_dbm
        self.supports_ofdm = supports_ofdm
        self.nav_until_us = 0
        self.reception = ReceptionModel(rng=rng, rx_gain_db=STATION_RX_GAIN_DB)
        self.dcf = Dcf(kernel, medium, self, rng)
        self._seq = int(rng.integers(0, SEQ_MODULO))
        medium.attach(self)

    # --- identity ---------------------------------------------------------

    @property
    def allowed_rates(self) -> Tuple[PhyRate, ...]:
        return ALL_RATES if self.supports_ofdm else B_RATES

    def as_receiver(self) -> "WirelessInterface":
        return self

    def next_seq(self) -> int:
        seq = self._seq
        self._seq = (self._seq + 1) % SEQ_MODULO
        return seq

    # --- receive path ---------------------------------------------------------

    def on_air_event(
        self,
        tx: Transmission,
        rssi_dbm: float,
        interferer_levels_dbm: Tuple[float, ...],
    ) -> None:
        outcome = self.reception.receive(rssi_dbm, tx.rate, interferer_levels_dbm)
        if outcome is not ReceptionOutcome.DECODED:
            return
        frame = tx.frame
        if frame.addr1 == self.mac:
            self._receive_own(frame, rssi_dbm, tx)
        else:
            # Virtual carrier sense: defer for the frame's Duration field.
            if frame.duration_us > 0:
                self.nav_until_us = max(
                    self.nav_until_us, self.kernel.now_us + frame.duration_us
                )
            self.handle_overheard(frame, rssi_dbm, tx)

    def _receive_own(self, frame: Frame, rssi_dbm: float, tx: Transmission) -> None:
        if frame.ftype is FrameType.ACK:
            self.dcf.notify_ack_received()
            return
        if frame.expects_ack:
            self._send_ack_after_sifs(frame, tx)
        self.handle_frame(frame, rssi_dbm, tx)

    def _send_ack_after_sifs(self, frame: Frame, tx: Transmission) -> None:
        """ACKs bypass DCF: they follow the frame after exactly SIFS."""
        from ..dot11.rates import ack_rate_for

        assert frame.addr2 is not None
        ack = make_ack(frame.addr2)
        self.kernel.after(
            SIFS_US,
            lambda: self.medium.transmit(
                frame=ack,
                frame_bytes=frame_to_bytes(ack),
                rate=ack_rate_for(tx.rate),
                channel=self.channel,
                position=self.position,
                power_dbm=self.tx_power_dbm,
                transmitter_id=str(self.mac),
                sender=self,
            ),
        )

    # --- subclass hooks ----------------------------------------------------------

    def handle_frame(self, frame: Frame, rssi_dbm: float, tx: Transmission) -> None:
        """A decoded frame addressed to this interface (non-ACK)."""

    def handle_overheard(
        self, frame: Frame, rssi_dbm: float, tx: Transmission
    ) -> None:
        """A decoded frame addressed elsewhere (broadcast or other station)."""


class Station(WirelessInterface):
    """A wireless client."""

    def __init__(
        self,
        kernel: Kernel,
        medium: Medium,
        mac: MacAddress,
        position: Point,
        tx_power_dbm: float,
        rng: np.random.Generator,
        ap: "object",
        supports_ofdm: bool = True,
        start_us: int = 0,
        rescan_interval_us: int = 0,
        probe_burst: int = 1,
        scan_sweep: bool = False,
    ) -> None:
        super().__init__(
            kernel,
            medium,
            mac,
            position,
            ap.channel,
            tx_power_dbm,
            rng,
            supports_ofdm,
        )
        self._rng = rng
        self.ap = ap
        self.associated = False
        self.protection_active = False   # learned from AP beacons
        self._ap_rssi_dbm: Optional[float] = None
        self._assoc_deadline: Optional[int] = None
        #: Upper-layer receive hook (installed by the transport substrate).
        self.packet_sink: Optional[Callable[[bytes], None]] = None
        self._pending_payloads: List[bytes] = []
        self._on_associated: List[Callable[[], None]] = []
        self._rescan_interval_us = rescan_interval_us
        self._probe_burst = probe_burst
        self._scan_sweep = scan_sweep
        # Sweep-in-flight bookkeeping: the id invalidates pending sweep
        # continuations (a roam mid-sweep must not have a stale dwell
        # callback drag the radio back off the new AP's channel), and the
        # active flag keeps rescans shorter than a full sweep (~3 dwells)
        # from starting overlapping sweeps that fight over the channel.
        self._sweep_id = 0
        self._sweep_active = False
        kernel.at(start_us, self._begin_scan)
        if rescan_interval_us > 0:
            kernel.at(start_us + rescan_interval_us, self._background_rescan)

    # --- association -----------------------------------------------------

    def when_associated(self, callback: Callable[[], None]) -> None:
        if self.associated:
            callback()
        else:
            self._on_associated.append(callback)

    def _begin_scan(self) -> None:
        """Probe each monitored channel, then associate with our AP."""
        channels = [Channel(n) for n in ORTHOGONAL_CHANNELS]

        def probe(index: int) -> None:
            if index >= len(channels):
                self.channel = self.ap.channel
                self._begin_handshake()
                return
            self.channel = channels[index]
            frame = make_probe_request(
                self.mac, self.next_seq(), supports_ofdm=self.supports_ofdm
            )
            self.dcf.enqueue(TxJob(frame, RATE_1))
            self.kernel.after(SCAN_DWELL_US, lambda: probe(index + 1))

        probe(0)

    def _background_rescan(self) -> None:
        """Periodic background probe, as real clients emit while roaming.

        By default it stays on the serving channel (no dwell elsewhere, so
        traffic is not disrupted); in-range APs answer with probe
        responses — the signal the Section 7.3 protection analysis uses to
        estimate client range.  With ``scan_sweep`` the rescan instead
        dwells briefly on every monitored channel (as aggressive real
        clients do), bursting ``probe_burst`` probes on each — off-channel
        time loses downlink frames, and the broadcast probes land in every
        channel's monitor traces, densifying bootstrap's reference sets.
        """
        if self._sweep_active:
            pass  # previous sweep still dwelling; skip this rescan tick
        elif self._scan_sweep and self.associated:
            self._sweep_active = True
            self._sweep_channels(self._sweep_id, 0)
        else:
            self._emit_probe_burst()
        self.kernel.after(self._rescan_interval_us, self._background_rescan)

    def _emit_probe_burst(self) -> None:
        for _ in range(self._probe_burst):
            frame = make_probe_request(
                self.mac, self.next_seq(), supports_ofdm=self.supports_ofdm
            )
            self.dcf.enqueue(TxJob(frame, RATE_1))

    def _sweep_channels(self, sweep_id: int, index: int) -> None:
        """Dwell on each monitored channel in turn, probing as we go."""
        if sweep_id != self._sweep_id:
            return  # cancelled by a roam; it already restored the channel
        channels = [Channel(n) for n in ORTHOGONAL_CHANNELS]
        if index >= len(channels):
            self._sweep_active = False
            self.channel = self.ap.channel
            return
        self.channel = channels[index]
        self._emit_probe_burst()
        self.kernel.after(
            SCAN_DWELL_US, lambda: self._sweep_channels(sweep_id, index + 1)
        )

    # --- roaming ----------------------------------------------------------

    def roam_to(self, position: Point, ap: "object") -> None:
        """Move to ``position`` and (re)associate with ``ap``.

        Models a laptop carried between coverage areas: the radio follows
        its new strongest AP, tearing down the old association and running
        the auth/assoc handshake again on the new channel.  Upper-layer
        payloads sent meanwhile queue until the new association completes
        (TCP retransmissions cover the gap, exactly as on a real handoff).
        """
        self.position = position
        if self._sweep_active:
            # Abandon any in-flight channel sweep: its pending dwell
            # callbacks must not drag the radio back off the (possibly
            # new) serving channel mid-handshake.
            self._sweep_id += 1
            self._sweep_active = False
            self.channel = self.ap.channel
        if ap is self.ap and self.associated:
            return
        self.ap = ap
        self.associated = False
        self._ap_rssi_dbm = None
        self.channel = ap.channel
        self._begin_handshake()

    def _begin_handshake(self) -> None:
        self._assoc_deadline = self.kernel.now_us + ASSOC_TIMEOUT_US
        self.kernel.at(self._assoc_deadline, self._check_assoc_timeout)
        auth = make_auth(self.mac, self.ap.mac, self.next_seq(), step=1)
        self.dcf.enqueue(TxJob(auth, self._management_rate()))

    def _check_assoc_timeout(self) -> None:
        if self.associated or self._assoc_deadline is None:
            return
        if self.kernel.now_us >= self._assoc_deadline:
            self._begin_handshake()

    def _management_rate(self) -> PhyRate:
        if self._ap_rssi_dbm is None:
            return RATE_1
        return select_rate(self._ap_rssi_dbm, B_RATES)

    def data_rate(self) -> PhyRate:
        """Rate for the next data frame, from the running AP RSSI estimate."""
        if self._ap_rssi_dbm is None:
            return RATE_1
        if self.supports_ofdm:
            return select_rate(self._ap_rssi_dbm, G_RATES)
        return select_rate(self._ap_rssi_dbm, B_RATES)

    # --- frame handling -------------------------------------------------------

    def handle_frame(self, frame: Frame, rssi_dbm: float, tx: Transmission) -> None:
        if frame.addr2 == self.ap.mac:
            self._ap_rssi_dbm = rssi_dbm
        if frame.ftype is FrameType.AUTH and not self.associated:
            assoc = make_assoc_request(
                self.mac, self.ap.mac, self.next_seq(), self.supports_ofdm
            )
            self.dcf.enqueue(TxJob(assoc, self._management_rate()))
        elif frame.ftype is FrameType.ASSOC_RESPONSE and not self.associated:
            self.associated = True
            self._assoc_deadline = None
            for callback in self._on_associated:
                callback()
            self._on_associated.clear()
            self._flush_pending()
        elif frame.ftype is FrameType.DATA:
            if self.packet_sink is not None:
                self.packet_sink(frame.body)

    def handle_overheard(
        self, frame: Frame, rssi_dbm: float, tx: Transmission
    ) -> None:
        if frame.ftype is FrameType.BEACON and frame.addr2 == self.ap.mac:
            self._ap_rssi_dbm = rssi_dbm
            self.protection_active = beacon_advertises_protection(frame)

    # --- transmit path ------------------------------------------------------------

    def send_payload(self, payload: bytes) -> None:
        """Carry one IP packet uplink to the AP (queued until associated)."""
        if not self.associated:
            self._pending_payloads.append(payload)
            return
        rate = self.data_rate()
        frame = make_data(
            self.mac,
            self.ap.mac,
            self.ap.mac,
            seq=self.next_seq(),
            body=payload,
            to_ds=True,
        )
        protect = rate.is_ofdm and self.protection_active
        self.dcf.enqueue(TxJob(frame, rate, protect=protect))

    def _flush_pending(self) -> None:
        pending, self._pending_payloads = self._pending_payloads, []
        for payload in pending:
            self.send_payload(payload)
