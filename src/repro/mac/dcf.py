"""Distributed coordination function (CSMA/CA) — Section 2's MAC tutorial.

"When a node wishes to send, it first validates that the channel is clear.
If the channel stays idle for a set period of time (DIFS) it transmits.
Otherwise, it selects a random backoff time in (0, N], and tries again. ...
when a station sends a unicast packet, the protocol requires the receiver to
respond immediately with an ACK packet.  If the sender does not receive an
ACK within a preset timeout, it doubles N, calculates a new (likely longer)
backoff time, and schedules a retransmission."

One :class:`Dcf` instance drives one wireless interface's transmit path:
carrier sense against the medium (position-dependent — hidden terminals
sense idle and collide), virtual carrier sense via the NAV the owner
maintains, slotted backoff with CW doubling, the retry bit, rate fallback
(never increasing in response to loss, the invariant Section 5.1's
heuristics rely on), and optional CTS-to-self protection for OFDM frames.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from ..dot11.constants import (
    ACK_TIMEOUT_US,
    CW_MAX,
    CW_MIN,
    DIFS_US,
    RETRY_LIMIT,
    SIFS_US,
    SLOT_TIME_LONG_US,
)
from ..dot11.frame import Frame, make_cts_to_self
from ..dot11.rates import (
    PhyRate,
    RATE_2,
    ack_airtime_us,
    ack_rate_for,
    cts_to_self_duration_field_us,
    data_duration_field_us,
    next_lower_rate,
)
from ..dot11.serialize import frame_to_bytes
from ..sim.kernel import EventHandle, Kernel
from .medium import Medium, Transmission


@dataclass
class TxJob:
    """One frame queued for transmission (plus its exchange bookkeeping)."""

    frame: Frame
    rate: PhyRate
    protect: bool = False
    on_done: Optional[Callable[[bool], None]] = None
    attempts: int = 0


class Dcf:
    """The transmit state machine for one wireless interface."""

    def __init__(
        self,
        kernel: Kernel,
        medium: Medium,
        owner: "object",
        rng: np.random.Generator,
        slot_us: int = SLOT_TIME_LONG_US,
        max_queue: int = 256,
    ) -> None:
        """``owner`` must expose ``mac``, ``channel``, ``position``,
        ``tx_power_dbm``, ``nav_until_us``, ``allowed_rates`` and
        ``as_receiver()`` (the medium attachment, so a sender does not hear
        its own frame)."""
        self._kernel = kernel
        self._medium = medium
        self._owner = owner
        self._rng = rng
        self._slot_us = slot_us
        self._queue: Deque[TxJob] = deque()
        self._max_queue = max_queue
        self._cw = CW_MIN
        self._current: Optional[TxJob] = None
        self._pending_event: Optional[EventHandle] = None
        self._ack_timeout: Optional[EventHandle] = None
        self._awaiting_ack = False
        # Counters surfaced by the ground-truth report.
        self.frames_sent = 0
        self.frames_dropped = 0
        self.queue_overflows = 0

    # --- public API --------------------------------------------------------

    def enqueue(self, job: TxJob) -> bool:
        """Queue a frame; returns False (and drops) when the queue is full."""
        if len(self._queue) >= self._max_queue:
            self.queue_overflows += 1
            if job.on_done is not None:
                job.on_done(False)
            return False
        self._queue.append(job)
        if self._current is None:
            self._next_job()
        return True

    @property
    def idle(self) -> bool:
        return self._current is None and not self._queue

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def notify_ack_received(self) -> None:
        """Owner decoded an ACK addressed to it — completes the exchange."""
        if not self._awaiting_ack or self._current is None:
            return
        self._awaiting_ack = False
        if self._ack_timeout is not None:
            self._ack_timeout.cancel()
            self._ack_timeout = None
        self._finish(True)

    # --- job lifecycle -------------------------------------------------------

    def _next_job(self) -> None:
        self._current = None
        self._cw = CW_MIN
        if self._queue:
            self._current = self._queue.popleft()
            self._begin_access()

    def _finish(self, delivered: bool) -> None:
        job = self._current
        assert job is not None
        if delivered:
            self.frames_sent += 1
        else:
            self.frames_dropped += 1
        if job.on_done is not None:
            job.on_done(delivered)
        self._next_job()

    # --- channel access --------------------------------------------------------

    def _begin_access(self) -> None:
        """Compute an access time: idle point + DIFS + random backoff."""
        now = self._kernel.now_us
        busy_until = max(
            self._medium.busy_until(self._owner.channel, self._owner.position),
            self._owner.nav_until_us,
        )
        slots = int(self._rng.integers(0, self._cw + 1))
        start = max(now, busy_until) + DIFS_US + slots * self._slot_us
        self._pending_event = self._kernel.at(start, self._transmit_if_clear)

    def _transmit_if_clear(self) -> None:
        """Re-validate the channel at the chosen slot; defer if it filled."""
        self._pending_event = None
        now = self._kernel.now_us
        busy_until = max(
            self._medium.busy_until(self._owner.channel, self._owner.position),
            self._owner.nav_until_us,
        )
        if busy_until > now:
            # Channel became busy while we counted down; contend again.
            self._begin_access()
            return
        self._transmit_current()

    # --- transmission ------------------------------------------------------------

    def _transmit_current(self) -> None:
        job = self._current
        assert job is not None
        frame = job.frame if job.attempts == 0 else job.frame.as_retry()
        ack_rate = ack_rate_for(job.rate)

        if job.protect and job.rate.is_ofdm:
            # 802.11g protection: a CCK CTS-to-self reserves the channel
            # for the OFDM exchange (Section 2).
            cts = make_cts_to_self(
                self._owner.mac,
                cts_to_self_duration_field_us(
                    frame.size_bytes, job.rate, ack_rate
                ),
            )
            cts_tx = self._put_on_air(cts, RATE_2)
            data_start = cts_tx.end_us + SIFS_US
            self._kernel.at(
                data_start, lambda: self._transmit_data(frame, job, ack_rate)
            )
        else:
            self._transmit_data(frame, job, ack_rate)

    def _transmit_data(self, frame: Frame, job: TxJob, ack_rate: PhyRate) -> None:
        if frame.expects_ack:
            frame = frame.with_duration(data_duration_field_us(ack_rate))
        tx = self._put_on_air(frame, job.rate)
        job.attempts += 1
        if frame.expects_ack:
            self._awaiting_ack = True
            self._ack_timeout = self._kernel.at(
                tx.end_us + ACK_TIMEOUT_US + ack_airtime_us(ack_rate),
                self._on_ack_timeout,
            )
        else:
            # Broadcast/multicast: no ARQ; done at end of airtime (R1).
            self._kernel.at(tx.end_us, lambda: self._finish(True))

    def _put_on_air(self, frame: Frame, rate: PhyRate) -> Transmission:
        return self._medium.transmit(
            frame=frame,
            frame_bytes=frame_to_bytes(frame),
            rate=rate,
            channel=self._owner.channel,
            position=self._owner.position,
            power_dbm=self._owner.tx_power_dbm,
            transmitter_id=str(self._owner.mac),
            sender=self._owner.as_receiver(),
        )

    # --- retransmission ---------------------------------------------------------

    def _on_ack_timeout(self) -> None:
        self._ack_timeout = None
        self._awaiting_ack = False
        job = self._current
        if job is None:
            return
        if job.attempts >= RETRY_LIMIT:
            self._finish(False)
            return
        # Double the contention window and retry at a lower (never higher)
        # coded rate after repeated failures.
        self._cw = min(self._cw * 2 + 1, CW_MAX)
        if job.attempts >= 2:
            job.rate = next_lower_rate(job.rate, self._owner.allowed_rates)
        self._begin_access()
