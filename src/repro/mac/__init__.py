"""802.11 MAC substrate: medium, DCF, stations, access points."""

from .ap import AccessPoint, ClientState
from .dcf import Dcf, TxJob
from .medium import Medium, Receiver, Transmission
from .station import Station, WirelessInterface, select_rate

__all__ = [
    "AccessPoint",
    "ClientState",
    "Dcf",
    "TxJob",
    "Medium",
    "Receiver",
    "Transmission",
    "Station",
    "WirelessInterface",
    "select_rate",
]
