"""The shared wireless medium.

"Wireless is fundamentally a broadcast channel, multiple in-range receivers
can potentially record each transmission" (Section 4) — this module is that
channel.  Every transmission is delivered to every attached receiver whose
channel overlaps, with per-receiver RSSI from the propagation model and
per-receiver interference from whatever else was on the air at the same
time.  Because "propagation delay is effectively instantaneous", all
receivers see a transmission at the same true time, exactly the assumption
Jigsaw's synchronization builds on.

The medium also doubles as the simulation's ground truth: it keeps the
authoritative list of every transmission ever made, which the coverage and
interference experiments compare Jigsaw's output against.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from ..dot11.channels import Channel
from ..dot11.frame import Frame
from ..dot11.rates import PhyRate
from ..phy.noisefloor import BroadbandInterferer, ambient_interference_dbm
from ..phy.propagation import Point, PropagationModel
from ..phy.reception import CARRIER_SENSE_DBM
from ..sim.kernel import Kernel


@dataclass(frozen=True)
class Transmission:
    """One physical transmission: a frame on the air.

    ``txid`` is a globally unique ground-truth identifier; the evaluation
    joins monitor captures back to transmissions through it (the real system
    has no such oracle — that is the point of building one).
    """

    txid: int
    frame: Frame
    frame_bytes: bytes
    rate: PhyRate
    channel: Channel
    start_us: int
    duration_us: int
    tx_position: Point
    tx_power_dbm: float
    transmitter_id: str

    @property
    def end_us(self) -> int:
        return self.start_us + self.duration_us

    def overlaps(self, other: "Transmission") -> bool:
        return self.start_us < other.end_us and other.start_us < self.end_us


class Receiver(Protocol):
    """Anything attached to the medium: stations, APs, monitor radios."""

    position: Point
    channel: Channel

    def on_air_event(
        self,
        tx: Transmission,
        rssi_dbm: float,
        interferer_levels_dbm: Tuple[float, ...],
    ) -> None:
        """Called at transmission end with receiver-local signal levels."""


class Medium:
    """Per-building broadcast medium across all channels."""

    def __init__(
        self,
        kernel: Kernel,
        propagation: PropagationModel,
        interferers: Sequence[BroadbandInterferer] = (),
    ) -> None:
        self._kernel = kernel
        self._propagation = propagation
        self._interferers = tuple(interferers)
        self._receivers: List[Receiver] = []
        self._active: List[Transmission] = []
        #: Transmissions that ended recently; kept one max-frame-time back
        #: so late-starting overlaps still see them as interferers.
        self._recent: List[Transmission] = []
        self._txid = itertools.count(1)
        #: Ground truth: every transmission, in start order.
        self.history: List[Transmission] = []

    # --- attachment -----------------------------------------------------

    def attach(self, receiver: Receiver) -> None:
        self._receivers.append(receiver)

    @property
    def propagation(self) -> PropagationModel:
        return self._propagation

    # --- transmission ----------------------------------------------------

    def transmit(
        self,
        frame: Frame,
        frame_bytes: bytes,
        rate: PhyRate,
        channel: Channel,
        position: Point,
        power_dbm: float,
        transmitter_id: str,
        sender: Optional[Receiver] = None,
    ) -> Transmission:
        """Put a frame on the air now; deliveries fire at transmission end."""
        from ..dot11.rates import frame_airtime_us

        duration = frame_airtime_us(frame.size_bytes, rate)
        tx = Transmission(
            txid=next(self._txid),
            frame=frame,
            frame_bytes=frame_bytes,
            rate=rate,
            channel=channel,
            start_us=self._kernel.now_us,
            duration_us=duration,
            tx_position=position,
            tx_power_dbm=power_dbm,
            transmitter_id=transmitter_id,
        )
        self._active.append(tx)
        self.history.append(tx)
        self._kernel.at(tx.end_us, lambda: self._complete(tx, sender))
        return tx

    def _complete(self, tx: Transmission, sender: Optional[Receiver]) -> None:
        self._active.remove(tx)
        self._recent.append(tx)
        self._gc_recent()
        overlapping = [
            other
            for other in itertools.chain(self._active, self._recent)
            if other is not tx and other.overlaps(tx)
        ]
        for receiver in self._receivers:
            if receiver is sender:
                continue
            coupling = receiver.channel.overlap_fraction(tx.channel)
            if coupling <= 0.0:
                continue
            rssi = self._rssi_at(tx, receiver.position, coupling)
            interference = self._interference_at(
                tx, overlapping, receiver, sender
            )
            receiver.on_air_event(tx, rssi, interference)

    def _rssi_at(self, tx: Transmission, rx: Point, coupling: float) -> float:
        rssi = self._propagation.rssi_dbm(tx.tx_power_dbm, tx.tx_position, rx)
        if coupling < 1.0:
            rssi += 10.0 * math.log10(coupling)
        return rssi

    def _interference_at(
        self,
        tx: Transmission,
        overlapping: Sequence[Transmission],
        receiver: Receiver,
        sender: Optional[Receiver],
    ) -> Tuple[float, ...]:
        levels = []
        for other in overlapping:
            coupling = receiver.channel.overlap_fraction(other.channel)
            if coupling <= 0.0:
                continue
            levels.append(self._rssi_at(other, receiver.position, coupling))
        levels.extend(
            ambient_interference_dbm(
                self._interferers,
                tx.start_us,
                receiver.position,
                self._propagation,
            )
        )
        return tuple(levels)

    def _gc_recent(self) -> None:
        horizon = self._kernel.now_us - 20_000
        self._recent = [t for t in self._recent if t.end_us >= horizon]

    # --- carrier sense ----------------------------------------------------

    def busy_until(
        self,
        channel: Channel,
        position: Point,
        threshold_dbm: float = CARRIER_SENSE_DBM,
    ) -> int:
        """Latest end time of any on-air transmission audible at ``position``.

        Position-dependent: a distant transmitter below the carrier-sense
        threshold is invisible here — the hidden-terminal situation whose
        interference Section 7.2 quantifies.
        """
        latest = 0
        for tx in self._active:
            coupling = channel.overlap_fraction(tx.channel)
            if coupling <= 0.0:
                continue
            if self._rssi_at(tx, position, coupling) >= threshold_dbm:
                latest = max(latest, tx.end_us)
        return latest

    def is_busy(
        self,
        channel: Channel,
        position: Point,
        threshold_dbm: float = CARRIER_SENSE_DBM,
    ) -> bool:
        return self.busy_until(channel, position, threshold_dbm) > self._kernel.now_us
