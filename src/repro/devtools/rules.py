"""The repro rule catalog: every invariant the linter machine-checks.

Each rule encodes one way the reproduction's bit-identity or pool-safety
contract has broken (or nearly broken) in a past PR, and names the
module scope where the invariant lives.  The catalog, with the story
behind each rule, is documented in ``docs/static-analysis.md``.

Rules are deliberately syntactic: they flag *definite* hazards (a lambda
shipped to a process pool, a draw from the process-global RNG, a set
iterated straight into an emission path) and stay silent on anything
they cannot prove, so a finding is always worth reading.  Escape hatch:
``# repro: ignore[rule-name]`` on the flagged line, with a comment
saying why.
"""

from __future__ import annotations

import ast
import re as _re
import struct as _struct
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .lint import Finding, Rule, SourceModule

#: Modules whose job is measurement or demonstration, not reconstruction:
#: wall-clock reads and ad-hoc RNG draws are legitimate there.
MEASUREMENT_SCOPES = ("repro.experiments", "benchmarks", "examples", "tests")

#: Modules whose emission order must be deterministic (ROADMAP "Net
#: effect": every execution mode jframe-for-jframe identical).
ORDERED_EMISSION_SCOPES = (
    "repro.core.unify",
    "repro.core.sync",
    "repro.core.passes",
)

#: Modules where a swallowed exception silently degrades a reconstruction
#: instead of being itemized on ``report.health``.
ERROR_POLICY_SCOPES = ("repro.jtrace.io", "repro.core.faults", "repro.core.sync")

#: The contract surfaces held to strict typing (mirrored in mypy.ini).
STRICT_TYPED_MODULES = frozenset(
    {
        "repro.core.passes",
        "repro.core.faults",
        "repro.jtrace.records",
        "repro.core.unify.jframe",
        "repro.core.unify.sharded",
        "repro.core.sync.sharded",
    }
)


def in_scope(mod: SourceModule, prefixes: Sequence[str]) -> bool:
    return any(
        mod.module == p or mod.module.startswith(p + ".") for p in prefixes
    )


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield (scope node, its top-level statements) for the module and
    every function, however deeply nested.

    Walk a scope's statements with :func:`_walk_scope` — nested function
    bodies are excluded there and show up as their own scope here, so
    per-scope rules (set-valued locals, one-stream-per-component) reason
    about exactly one body at a time.
    """
    pending: List[Tuple[ast.AST, List[ast.stmt]]] = [(tree, list(tree.body))]
    while pending:
        scope, body = pending.pop()
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                pending.append((node, list(node.body)))
                continue
            stack.extend(ast.iter_child_nodes(node))
        yield scope, body


def _walk_scope(statements: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk every node of a scope's statements, skipping nested functions."""
    queue: List[ast.AST] = list(statements)
    while queue:
        node = queue.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested function is its own scope
        queue.extend(ast.iter_child_nodes(node))


# --- determinism ------------------------------------------------------------


class WallClockRule(Rule):
    """No wall-clock reads in reconstruction code.

    A jframe timeline derived from ``time.time()`` or ``datetime.now()``
    differs run to run, which breaks the parity/golden suites' central
    claim.  ``time.perf_counter``/``monotonic`` stay legal: they measure
    elapsed durations (telemetry), never timeline positions.
    """

    name = "wall-clock"
    summary = (
        "no time.time()/datetime.now() outside experiments/ and benchmarks/"
    )

    BANNED = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.localtime",
            "time.gmtime",
            "time.ctime",
            "time.asctime",
            "time.strftime",
            "datetime.datetime.now",
            "datetime.datetime.today",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if in_scope(mod, MEASUREMENT_SCOPES):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = mod.resolve(node.func)
            if target in self.BANNED:
                yield self.finding(
                    mod,
                    node,
                    f"wall-clock read {target}() in reconstruction code; "
                    f"output must be a pure function of the input traces "
                    f"(use time.perf_counter for elapsed telemetry)",
                )


class GlobalRngRule(Rule):
    """No draws from the process-global RNG streams.

    A ``random.random()`` or legacy ``np.random.*`` draw depends on
    every draw made before it anywhere in the process — reordering two
    unrelated subsystems then changes simulated traces.  All randomness
    flows from explicitly seeded ``np.random.default_rng``/
    ``SeedSequence`` generators (spawn-keyed per component since PR 4).
    """

    name = "global-rng"
    summary = (
        "no global random.*/np.random.seed/legacy np.random draws outside "
        "experiments/ and benchmarks/"
    )

    _NUMPY_LEGACY = frozenset(
        {
            "seed",
            "random",
            "ranf",
            "sample",
            "random_sample",
            "rand",
            "randn",
            "randint",
            "random_integers",
            "choice",
            "shuffle",
            "permutation",
            "uniform",
            "normal",
            "standard_normal",
            "poisson",
            "exponential",
            "binomial",
            "beta",
            "gamma",
            "lognormal",
            "get_state",
            "set_state",
        }
    )
    _STDLIB_ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if in_scope(mod, MEASUREMENT_SCOPES):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = mod.resolve(node.func)
            if target is None:
                continue
            if (
                target.startswith("random.")
                and target.count(".") == 1
                and target not in self._STDLIB_ALLOWED
            ):
                yield self.finding(
                    mod,
                    node,
                    f"draw from the process-global stdlib RNG ({target}); "
                    f"use an explicitly seeded np.random.default_rng stream",
                )
            elif (
                target.startswith("numpy.random.")
                and target.rsplit(".", 1)[1] in self._NUMPY_LEGACY
            ):
                yield self.finding(
                    mod,
                    node,
                    f"legacy global numpy RNG call {target}(); seed state is "
                    f"process-wide — use np.random.default_rng/SeedSequence",
                )


class UnorderedIterRule(Rule):
    """No iterating a set into an ordered emission path.

    ``set``/``frozenset`` iteration order depends on hash seeding and
    insertion history; inside ``core/unify``, ``core/sync`` and
    ``core/passes`` every loop feeds (directly or transitively) an
    emission whose order the parity suites pin bit-for-bit.  Wrap the
    iterable in ``sorted(...)`` with an explicit key.
    """

    name = "unordered-iter"
    summary = (
        "no sorted()-less set iteration in core/unify, core/sync, core/passes"
    )

    @staticmethod
    def _is_set_expr(node: ast.AST, mod: SourceModule) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            target = mod.resolve(node.func)
            return target in ("set", "frozenset")
        return False

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if not in_scope(mod, ORDERED_EMISSION_SCOPES):
            return
        for _scope, statements in _iter_scopes(mod.tree):
            set_named: Set[str] = set()
            for node in _walk_scope(statements):
                value = getattr(node, "value", None)
                if isinstance(node, (ast.Assign, ast.AnnAssign)) and value is not None:
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if self._is_set_expr(value, mod):
                        for target in targets:
                            if isinstance(target, ast.Name):
                                set_named.add(target.id)
                    else:
                        # Rebinding to a non-set value clears the taint.
                        for target in targets:
                            if isinstance(target, ast.Name):
                                set_named.discard(target.id)
            for node in _walk_scope(statements):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                ):
                    iters.extend(gen.iter for gen in node.generators)
                for candidate in iters:
                    if self._is_set_expr(candidate, mod) or (
                        isinstance(candidate, ast.Name)
                        and candidate.id in set_named
                    ):
                        yield self.finding(
                            mod,
                            candidate,
                            "iteration over a set in an ordered-emission "
                            "module; set order is hash/insertion dependent — "
                            "wrap it in sorted(...) with an explicit key",
                        )


# --- RNG stream discipline --------------------------------------------------


class StreamDisciplineRule(Rule):
    """Scenario components draw only from their own spawn-keyed stream.

    PR 4's composition guarantee — adding a component never perturbs a
    sibling's randomness — holds only while each component draws from
    the ``ScenarioStreams`` stream keyed to it.  The rule requires
    stream names to be literals from the declared ``_STREAM_KEYS`` set
    and at most one stream name per function scope (a component
    implementation has exactly one stream; orchestrators that own
    several split per-stream work into helpers, or suppress with a
    justification).
    """

    name = "stream-discipline"
    summary = (
        "ScenarioStreams draws use a literal, declared key; one stream "
        "per component function"
    )

    _FALLBACK_KEYS = frozenset(
        {
            "geometry",
            "fleet",
            "behavior",
            "workload",
            "impairments",
            "clocks",
            "roam",
            "arrival",
            "faults",
        }
    )

    def __init__(self) -> None:
        self._declared: Optional[Set[str]] = None

    def collect(self, mod: SourceModule) -> None:
        if not mod.module.endswith("sim.scenario"):
            return
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "_STREAM_KEYS"
                and isinstance(node.value, ast.Dict)
            ):
                keys = {
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                }
                if keys:
                    self._declared = keys

    @property
    def declared(self) -> Set[str]:
        return set(self._declared or self._FALLBACK_KEYS)

    @staticmethod
    def _is_stream_call(node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr not in ("component", "entity"):
            return False
        base = func.value
        if isinstance(base, ast.Name) and "stream" in base.id.lower():
            return True
        if isinstance(base, ast.Attribute) and "stream" in base.attr.lower():
            return True
        if isinstance(base, ast.Call):
            inner = base.func
            if isinstance(inner, ast.Attribute) and inner.attr == "streams":
                return True
            if isinstance(inner, ast.Name) and inner.id == "streams":
                return True
        return False

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if not in_scope(mod, ("repro.sim",)) or mod.module.endswith(
            "sim.scenario"
        ):
            return
        declared = self.declared
        for _scope, statements in _iter_scopes(mod.tree):
            first_name: Optional[str] = None
            for node in _walk_scope(statements):
                if not (isinstance(node, ast.Call) and self._is_stream_call(node)):
                    continue
                if not node.args or not (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    yield self.finding(
                        mod,
                        node,
                        "stream name must be a string literal so the draw "
                        "is auditable against the spawn-key registry",
                    )
                    continue
                stream = node.args[0].value
                if stream not in declared:
                    yield self.finding(
                        mod,
                        node,
                        f"unknown scenario stream {stream!r}; declared keys: "
                        f"{', '.join(sorted(declared))} "
                        f"(add a _STREAM_KEYS entry, never reuse one)",
                    )
                    continue
                if first_name is None:
                    first_name = stream
                elif stream != first_name:
                    yield self.finding(
                        mod,
                        node,
                        f"function draws from stream {stream!r} after "
                        f"drawing from {first_name!r}; a component uses "
                        f"exactly one spawn-keyed stream — split the work "
                        f"or route the sibling stream through its owner",
                    )


# --- pool safety ------------------------------------------------------------


def _imports_futures(mod: SourceModule) -> bool:
    return any(
        target.startswith("concurrent") for target in mod.imports.values()
    )


class PoolCallableRule(Rule):
    """Work shipped to a process pool must be picklable by construction.

    A lambda or locally-defined closure submitted to
    ``ProcessPoolExecutor`` (directly or through
    ``map_shards_with_recovery``) fails to pickle — but only at runtime,
    on a multi-core host, possibly hours into a run.  The rule rejects
    them at lint time, along with lambdas hiding inside argument
    expressions.  ``MergeTree(leaf_runner=...)`` is a pool-submission
    site once removed — the runner is what pool mode ships per leaf —
    so it is held to the same standard.
    """

    name = "pool-callable"
    summary = (
        "pool submit()/map_shards_with_recovery/MergeTree(leaf_runner=) "
        "callables are module-level and their arguments lambda-free"
    )

    @staticmethod
    def _local_callables(statements: Sequence[ast.stmt]) -> Set[str]:
        """Names bound to nested defs or lambdas inside this scope."""
        names: Set[str] = set()
        queue: List[ast.AST] = list(statements)
        while queue:
            node = queue.pop(0)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
                continue  # do not descend: inner scopes bind their own
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            queue.extend(ast.iter_child_nodes(node))
        return names

    def _sites(
        self, mod: SourceModule, statements: Sequence[ast.stmt]
    ) -> Iterator[Tuple[ast.Call, Optional[ast.expr], List[ast.expr]]]:
        """Yield (call, submitted callable, payload argument expressions)."""
        futures = _imports_futures(mod)
        for node in _walk_scope(statements):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                futures
                and isinstance(func, ast.Attribute)
                and func.attr == "submit"
            ):
                fn = node.args[0] if node.args else None
                yield node, fn, list(node.args[1:])
                continue
            target = mod.resolve(func)
            if target is None:
                continue
            tail = target.rsplit(".", 1)[-1]
            if tail == "map_shards_with_recovery":
                fn = node.args[0] if node.args else None
                if fn is None:
                    for kw in node.keywords:
                        if kw.arg == "fn":
                            fn = kw.value
                payload = list(node.args[1:])
                payload.extend(
                    kw.value for kw in node.keywords if kw.arg != "fn"
                )
                yield node, fn, payload
            elif tail == "MergeTree":
                # The leaf runner is the pool work item of hierarchical
                # merges; a closure here dies only in pool mode, later.
                for kw in node.keywords:
                    if kw.arg == "leaf_runner":
                        yield node, kw.value, []

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        for scope, statements in _iter_scopes(mod.tree):
            if isinstance(scope, ast.Module):
                local_names: Set[str] = set()
            else:
                local_names = self._local_callables(statements)
            for call, fn, payload in self._sites(mod, statements):
                if isinstance(fn, ast.Lambda):
                    yield self.finding(
                        mod,
                        fn,
                        "lambda submitted to a process pool is unpicklable; "
                        "use a module-level function",
                    )
                elif isinstance(fn, ast.Name) and fn.id in local_names:
                    yield self.finding(
                        mod,
                        fn,
                        f"locally-defined callable {fn.id!r} submitted to a "
                        f"process pool is unpicklable; hoist it to module "
                        f"level",
                    )
                for arg in payload:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Lambda):
                            yield self.finding(
                                mod,
                                sub,
                                "lambda inside a pool-call argument is "
                                "unpicklable; precompute the value or pass "
                                "a module-level function",
                            )


class PoolTimeoutRule(Rule):
    """Every future ``.result()`` carries a timeout.

    A bare ``result()`` on a future whose worker hung blocks the
    coordinator forever — exactly the failure ``RetryPolicy`` deadlines
    exist to bound.  Scoped to modules that import
    ``concurrent.futures``.
    """

    name = "pool-timeout"
    summary = "future .result() calls pass a timeout (bounded coordinator waits)"

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if not _imports_futures(mod):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "result"):
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            yield self.finding(
                mod,
                node,
                "future .result() without a timeout can hang the "
                "coordinator on a dead worker; pass timeout= (None must "
                "be an explicit choice)",
            )


# --- error-policy hygiene ---------------------------------------------------


class ErrorPolicyRule(Rule):
    """Failures are itemized, never silently swallowed.

    PR 6's contract: the pipeline *degrades* on damage and reports every
    degradation on ``report.health``.  A bare ``except:`` (anywhere) or
    an except-and-``pass`` in the ingest/sync/recovery modules hides
    exactly the events that ledger exists to count.
    """

    name = "error-policy"
    summary = (
        "no bare except; no except-and-pass in jtrace/io, core/faults, "
        "core/sync"
    )

    @staticmethod
    def _swallows(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            for stmt in handler.body
        )

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        critical = in_scope(mod, ERROR_POLICY_SCOPES)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    mod,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions this path expects",
                )
            elif critical and self._swallows(node):
                yield self.finding(
                    mod,
                    node,
                    "exception swallowed with no counter or log in a "
                    "health-ledger module; count it on the relevant "
                    "DecodeHealth/ShardHealth/SyncHealth (or at least log)",
                )


# --- struct-format consistency ----------------------------------------------


class StructConsistencyRule(Rule):
    """Declared record formats and their uses cannot drift apart.

    ``jtrace/records.py`` declares the on-disk header as one
    ``struct.Struct``; ``io.py`` frames, probes and resynchronizes off
    its width and field positions.  The rule validates every literal
    format string, and cross-checks each known ``Struct``'s ``pack``
    arity, ``unpack``/``unpack_from`` target counts, constant subscript
    indices and ``iter_unpack`` loop-target arity against the declared
    field count — the drift a one-field format change would otherwise
    only reveal as a corrupt trace.

    The batch decoder mirrors the header as a numpy structured dtype.
    A ``NAME_DTYPE`` declaration built from literal ``(field, format)``
    pairs is paired with the ``NAME`` Struct and must agree on both
    field count and total byte width — the two declarations describe
    the same bytes, and a field added to one but not the other shears
    every batched field off its offset.
    """

    name = "struct-consistency"
    summary = (
        "struct formats parse; pack/unpack/iter_unpack arity and paired "
        "structured dtypes match the declared field count (jtrace)"
    )

    _FUNCS = frozenset(
        {
            "struct.Struct",
            "struct.pack",
            "struct.unpack",
            "struct.pack_into",
            "struct.unpack_from",
            "struct.calcsize",
            "struct.iter_unpack",
        }
    )

    #: ``NAME_DTYPE`` pairs with the ``NAME`` Struct declaration.
    _DTYPE_SUFFIX = "_DTYPE"

    #: numpy scalar codes are ``[byteorder]kind width-in-bytes`` for the
    #: fixed-width integer/float kinds the on-disk header uses.
    _DTYPE_FORMAT = _re.compile(r"[<>=|]?[iuf](\d+)")

    def __init__(self) -> None:
        #: simple name -> (format, field count), collected everywhere.
        self.declared: Dict[str, Tuple[str, int]] = {}

    @staticmethod
    def _field_count(fmt: str) -> int:
        return len(_struct.unpack(fmt, b"\x00" * _struct.calcsize(fmt)))

    def collect(self, mod: SourceModule) -> None:
        for node in ast.walk(mod.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                continue
            if mod.resolve(node.value.func) != "struct.Struct":
                continue
            args = node.value.args
            if not (
                len(args) == 1
                and isinstance(args[0], ast.Constant)
                and isinstance(args[0].value, str)
            ):
                continue
            fmt = args[0].value
            try:
                count = self._field_count(fmt)
            except _struct.error:
                continue  # flagged as invalid at check time
            self.declared[node.targets[0].id] = (fmt, count)

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if not in_scope(mod, ("repro.jtrace",)):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                yield from self._check_format_literal(mod, node)
                yield from self._check_pack_arity(mod, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_unpack_targets(mod, node)
                yield from self._check_dtype_pairing(mod, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(mod, node)
            elif isinstance(node, ast.For):
                yield from self._check_iter_unpack_target(mod, node)

    def _dtype_fields(
        self, node: ast.Assign
    ) -> Optional[List[Tuple[str, str]]]:
        """Literal ``(name, format)`` pairs of a structured-dtype call.

        Matches ``NAME_DTYPE = <anything>.dtype([("field", "<u2"), ...])``
        regardless of how numpy was imported (the gated-import idiom
        binds it to a local alias, which import resolution can't see).
        Returns None when the assignment is not that shape.
        """
        value = node.value
        if not (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.endswith(self._DTYPE_SUFFIX)
            and isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "dtype"
            and len(value.args) == 1
            and isinstance(value.args[0], (ast.List, ast.Tuple))
        ):
            return None
        fields: List[Tuple[str, str]] = []
        for elt in value.args[0].elts:
            if not (
                isinstance(elt, ast.Tuple)
                and len(elt.elts) == 2
                and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in elt.elts
                )
            ):
                return None  # computed entry: nothing checkable statically
            fields.append((elt.elts[0].value, elt.elts[1].value))  # type: ignore[union-attr]
        return fields

    def _check_dtype_pairing(
        self, mod: SourceModule, node: ast.Assign
    ) -> Iterator[Finding]:
        fields = self._dtype_fields(node)
        if fields is None:
            return
        dtype_name = node.targets[0].id  # type: ignore[union-attr]
        base = dtype_name[: -len(self._DTYPE_SUFFIX)]
        if base not in self.declared:
            return
        fmt, count = self.declared[base]
        if len(fields) != count:
            yield self.finding(
                mod,
                node,
                f"{dtype_name} declares {len(fields)} field(s) but its "
                f"paired Struct {base} format {fmt!r} declares {count}; "
                "the scalar and batched decoders would frame different "
                "records",
            )
        widths = [
            self._DTYPE_FORMAT.fullmatch(field_fmt) for _, field_fmt in fields
        ]
        if all(widths):
            itemsize = sum(int(m.group(1)) for m in widths)  # type: ignore[union-attr]
            try:
                size = _struct.calcsize(fmt)
            except _struct.error:
                return
            if itemsize != size:
                yield self.finding(
                    mod,
                    node,
                    f"{dtype_name} spans {itemsize} byte(s) but its paired "
                    f"Struct {base} format {fmt!r} spans {size}; batched "
                    "header views would shear off the scalar layout",
                )

    def _check_iter_unpack_target(
        self, mod: SourceModule, node: ast.For
    ) -> Iterator[Finding]:
        call = node.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "iter_unpack"
        ):
            return
        named = self._named_struct(call.func)
        if named is None:
            return
        name, fmt, count = named
        target = node.target
        if isinstance(target, (ast.Tuple, ast.List)) and not any(
            isinstance(e, ast.Starred) for e in target.elts
        ):
            if len(target.elts) != count:
                yield self.finding(
                    mod,
                    node,
                    f"{name}.iter_unpack() loop unpacks {len(target.elts)} "
                    f"name(s) per row but format {fmt!r} declares {count} "
                    "field(s)",
                )

    def _check_format_literal(
        self, mod: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        if mod.resolve(node.func) not in self._FUNCS:
            return
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return
        fmt = node.args[0].value
        try:
            _struct.calcsize(fmt)
        except _struct.error as exc:
            yield self.finding(
                mod, node, f"invalid struct format {fmt!r}: {exc}"
            )

    def _named_struct(self, node: ast.expr) -> Optional[Tuple[str, str, int]]:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            name = node.value.id
            if name in self.declared:
                fmt, count = self.declared[name]
                return name, fmt, count
        return None

    def _check_pack_arity(
        self, mod: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        if not isinstance(node.func, ast.Attribute) or node.func.attr != "pack":
            return
        named = self._named_struct(node.func)
        if named is None:
            return
        name, fmt, count = named
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return
        if len(node.args) != count:
            yield self.finding(
                mod,
                node,
                f"{name}.pack() called with {len(node.args)} value(s) but "
                f"format {fmt!r} declares {count} field(s)",
            )

    def _check_unpack_targets(
        self, mod: SourceModule, node: ast.Assign
    ) -> Iterator[Finding]:
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("unpack", "unpack_from")
        ):
            return
        named = self._named_struct(value.func)
        if named is None:
            return
        name, fmt, count = named
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                if len(target.elts) != count:
                    yield self.finding(
                        mod,
                        node,
                        f"{name}.{value.func.attr}() unpacked into "
                        f"{len(target.elts)} name(s) but format {fmt!r} "
                        f"declares {count} field(s)",
                    )

    def _check_subscript(
        self, mod: SourceModule, node: ast.Subscript
    ) -> Iterator[Finding]:
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("unpack", "unpack_from")
        ):
            return
        named = self._named_struct(value.func)
        if named is None:
            return
        name, fmt, count = named
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, int):
            if not -count <= index.value < count:
                yield self.finding(
                    mod,
                    node,
                    f"{name}.{value.func.attr}()[{index.value}] is out of "
                    f"range for format {fmt!r} with {count} field(s)",
                )


# --- PipelinePass conformance -----------------------------------------------


class PassConformanceRule(Rule):
    """Pass subclasses implement the exact hook surface.

    The pipeline calls ``on_jframe/on_attempt/on_exchange/on_flow``
    with one payload and ``finish`` with one context.  A typo'd hook
    (``on_jframes``) or an extra required parameter doesn't error — the
    pass just silently never runs, which on a streaming analysis looks
    like an empty result, not a bug.
    """

    name = "pass-conformance"
    summary = (
        "PipelinePass subclasses define only the real hooks, with the "
        "exact (self, payload) signatures"
    )

    HOOKS = ("on_jframe", "on_attempt", "on_exchange", "on_flow", "finish")

    def __init__(self) -> None:
        #: class name -> its base names, across every collected module.
        self._bases: Dict[str, List[str]] = {}
        #: (module, ClassDef) pairs to re-examine once the closure is known.
        self._classes: List[Tuple[SourceModule, ast.ClassDef]] = []
        self._closure: Optional[Set[str]] = None

    def collect(self, mod: SourceModule) -> None:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    bases.append(base.attr)
            self._bases[node.name] = bases
            self._classes.append((mod, node))

    def _pass_classes(self) -> Set[str]:
        if self._closure is None:
            closure = {"PipelinePass"}
            changed = True
            while changed:
                changed = False
                for name, bases in self._bases.items():
                    if name not in closure and any(b in closure for b in bases):
                        closure.add(name)
                        changed = True
            self._closure = closure
        return self._closure

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        closure = self._pass_classes()
        for class_mod, node in self._classes:
            if class_mod.path != mod.path:
                continue
            if node.name == "PipelinePass" or node.name not in closure:
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name in self.HOOKS:
                    yield from self._check_signature(mod, node, item)
                elif item.name.startswith("on_"):
                    yield self.finding(
                        mod,
                        item,
                        f"{node.name}.{item.name} looks like a pipeline "
                        f"hook but is not one of "
                        f"{'/'.join(self.HOOKS)}; the pipeline will never "
                        f"call it",
                    )

    def _check_signature(
        self,
        mod: SourceModule,
        cls: ast.ClassDef,
        fn: ast.FunctionDef,
    ) -> Iterator[Finding]:
        args = fn.args
        positional = list(args.posonlyargs) + list(args.args)
        is_static = any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in fn.decorator_list
        )
        expected = 1 if is_static else 2
        problems: List[str] = []
        if len(positional) != expected:
            problems.append(
                f"takes {len(positional)} positional parameter(s), "
                f"expected {expected} (self + payload)"
            )
        if args.vararg is not None or args.kwarg is not None:
            problems.append("must not use *args/**kwargs")
        if args.kwonlyargs:
            problems.append("must not declare keyword-only parameters")
        for problem in problems:
            yield self.finding(
                mod,
                fn,
                f"{cls.name}.{fn.name} {problem}; the pipeline calls hooks "
                f"with exactly one payload argument",
            )


# --- generic hygiene --------------------------------------------------------


class MutableDefaultRule(Rule):
    """No mutable default arguments.

    A shared default list/dict/set is cross-call state: the first run
    that appends to one changes every later call's starting point —
    non-determinism by stealth, in any module.
    """

    name = "mutable-default"
    summary = "no list/dict/set literals (or constructors) as parameter defaults"

    _CTORS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
    )

    def _is_mutable(self, node: ast.expr, mod: SourceModule) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
        ):
            return True
        if isinstance(node, ast.Call):
            target = mod.resolve(node.func)
            if target is not None and target.rsplit(".", 1)[-1] in self._CTORS:
                return True
        return False

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, mod):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        mod,
                        default,
                        f"mutable default argument on {name}(); defaults "
                        f"are evaluated once and shared across calls — "
                        f"default to None and construct inside",
                    )


class TypedApiRule(Rule):
    """The strict-typed contract modules stay fully annotated.

    mypy runs in CI, but the annotation *requirement* is enforced here
    too so a checkout without mypy still refuses an untyped signature on
    the hot contract surfaces (mirrors the strict sections of mypy.ini).
    """

    name = "typed-api"
    summary = (
        "every def in the strict-typed modules annotates all parameters "
        "and the return"
    )

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        if mod.module not in STRICT_TYPED_MODULES:
            return
        yield from self._check_body(mod, mod.tree.body, in_class=False)

    def _check_body(
        self, mod: SourceModule, body: Sequence[ast.stmt], in_class: bool
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_body(mod, node.body, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(mod, node, in_class)
                yield from self._check_body(mod, node.body, in_class=False)
            else:
                for child in ast.walk(node):
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._check_def(mod, child, in_class=False)

    def _check_def(
        self,
        mod: SourceModule,
        fn: ast.FunctionDef,
        in_class: bool,
    ) -> Iterator[Finding]:
        args = fn.args
        is_static = any(
            isinstance(d, ast.Name) and d.id == "staticmethod"
            for d in fn.decorator_list
        )
        positional = list(args.posonlyargs) + list(args.args)
        skip_first = in_class and not is_static
        missing = [
            arg.arg
            for i, arg in enumerate(positional)
            if arg.annotation is None and not (skip_first and i == 0)
        ]
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            yield self.finding(
                mod,
                fn,
                f"{fn.name}() leaves parameter(s) "
                f"{', '.join(missing)} unannotated in a strict-typed module",
            )
        if fn.returns is None:
            yield self.finding(
                mod,
                fn,
                f"{fn.name}() has no return annotation in a strict-typed "
                f"module (use -> None for procedures)",
            )


#: The catalog, in reporting order.
ALL_RULES = (
    WallClockRule,
    GlobalRngRule,
    UnorderedIterRule,
    StreamDisciplineRule,
    PoolCallableRule,
    PoolTimeoutRule,
    ErrorPolicyRule,
    StructConsistencyRule,
    PassConformanceRule,
    MutableDefaultRule,
    TypedApiRule,
)
