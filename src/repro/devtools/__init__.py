"""repro.devtools — repo-specific static analysis.

The reproduction's credibility rests on invariants no generic linter
checks: every execution mode (batch/stream, serial/sharded/pool,
materialized or not) must stay jframe-for-jframe bit-identical.  That
property breaks silently the moment someone draws from the global RNG,
iterates an unordered set into an emission path, or ships an unpicklable
closure to a pool shard — and the parity/golden suites only catch it
after the fact, on the inputs they happen to cover.

:mod:`repro.devtools.lint` encodes those invariants as machine-checked
AST rules (see :data:`repro.devtools.rules.ALL_RULES` for the catalog)::

    python -m repro.devtools.lint src

:mod:`repro.devtools.check` runs the full local gate — this linter plus
``ruff`` and ``mypy`` when they are installed::

    python -m repro.devtools.check

Rules, suppression comments (``# repro: ignore[rule]``) and the
committed baseline are documented in ``docs/static-analysis.md``.
"""

from typing import Any

__all__ = ["Finding", "LintResult", "run_lint"]


def __getattr__(name: str) -> Any:
    # Lazy re-export: importing the package eagerly would shadow
    # ``python -m repro.devtools.lint`` with a runpy double-import warning.
    if name in __all__:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
