"""The repro lint engine: AST rules, suppressions, baseline, CLI.

The engine is deliberately small and dependency-free (stdlib ``ast``
only), so the invariant checks run anywhere the code itself runs — no
tool install, no plugin host.  It does four things:

* parse every ``*.py`` under the given paths into a
  :class:`SourceModule` (AST + source lines + canonical dotted module
  name, so rules can scope themselves to ``repro.core.unify`` etc. no
  matter where the tree is checked out);
* run every registered :class:`Rule` in two phases — ``collect`` sees
  all modules first (cross-file facts: struct formats declared in
  ``jtrace/records.py``, the ``PipelinePass`` subclass closure), then
  ``check`` emits :class:`Finding`\\ s;
* drop findings suppressed in the source (``# repro: ignore[rule]`` on
  the flagged line; bare ``# repro: ignore`` suppresses every rule) or
  matched by the committed baseline file — the itemized pre-existing
  debt that must not block CI but must not grow either;
* report as text (``path:line:col: rule: message``) or JSON, exiting 0
  when clean, 1 on findings, 2 on usage errors.

Run it as ``python -m repro.devtools.lint src``.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Matches a suppression comment anywhere on a source line.  The rule
#: list is optional: ``# repro: ignore`` silences every rule on the line.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[a-z0-9_\-, ]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str        # the file as given on the command line (display)
    key_path: str    # checkout-independent path (``repro/...``), baseline key
    line: int
    col: int
    message: str
    context: str     # stripped source line, the baseline's drift anchor

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "key_path": self.key_path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }


@dataclass
class SourceModule:
    """One parsed file plus everything rules need to reason about it."""

    path: str                 # display path
    key_path: str             # checkout-independent posix path
    module: str               # dotted module name (``repro.core.passes``)
    tree: ast.Module
    lines: List[str]
    #: line number -> ``None`` (all rules) or the suppressed rule names.
    suppressions: Dict[int, Optional[frozenset]] = field(default_factory=dict)
    #: import alias -> canonical dotted target (``np`` -> ``numpy``,
    #: ``time`` from ``from time import time`` -> ``time.time``).
    imports: Dict[str, str] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, lineno: int, rule: str) -> bool:
        if lineno not in self.suppressions:
            return False
        rules = self.suppressions[lineno]
        return rules is None or rule in rules

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Canonical dotted name of an expression, import-aware.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the
        module did ``import numpy as np``; a bare name imported with
        ``from time import time`` resolves to ``time.time``.  Returns
        ``None`` for anything that is not a plain name/attribute chain.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))


class Rule:
    """Base class for checkers.  Subclasses set ``name``/``summary``.

    ``collect`` runs over every module before any ``check`` call, so a
    rule can gather cross-file facts (struct declarations, class
    hierarchies) first.  ``check`` yields findings via :meth:`finding`.
    """

    name: str = "rule"
    summary: str = ""

    def collect(self, mod: SourceModule) -> None:  # noqa: B027 - optional hook
        """Phase 1: gather cross-module facts (optional)."""

    def check(self, mod: SourceModule) -> Iterator[Finding]:
        """Phase 2: report violations in one module."""
        return iter(())

    def finding(self, mod: SourceModule, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=mod.path,
            key_path=mod.key_path,
            line=lineno,
            col=col + 1,
            message=message,
            context=mod.line_text(lineno),
        )


# --- module loading ---------------------------------------------------------


def _canonical_parts(path: Path) -> Tuple[str, ...]:
    """Checkout-independent path parts, anchored at the package root.

    ``src/repro/core/passes.py`` and ``/tmp/x/repro/core/passes.py``
    both canonicalize to ``("repro", "core", "passes.py")`` so baselines
    and rule scopes survive any checkout or fixture layout.
    """
    parts = path.parts
    for anchor in ("src", "repro"):
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == anchor:
                start = i + 1 if anchor == "src" else i
                return parts[start:]
    return parts


def _module_name(path: Path) -> str:
    parts = list(_canonical_parts(path))
    parts[-1] = parts[-1][:-3]  # strip .py
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Optional[frozenset]]:
    out: Dict[int, Optional[frozenset]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            names = frozenset(r.strip() for r in rules.split(",") if r.strip())
            previous = out.get(lineno)
            if previous is None and lineno in out:
                continue  # a bare ignore already covers everything
            out[lineno] = names | (previous or frozenset())
    return out


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[name] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                # Relative imports stay package-local; record the bare
                # module tail so cross-file registries can match on it.
                base = node.module or ""
            else:
                base = node.module
            for alias in node.names:
                name = alias.asname or alias.name
                imports[name] = f"{base}.{alias.name}" if base else alias.name
    return imports


def load_module(path: Path, display: Optional[str] = None) -> SourceModule:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    mod = SourceModule(
        path=display if display is not None else str(path),
        key_path="/".join(_canonical_parts(path)),
        module=_module_name(path),
        tree=tree,
        lines=lines,
    )
    mod.suppressions = _parse_suppressions(lines)
    mod.imports = _collect_imports(tree)
    return mod


def iter_source_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


# --- baseline ---------------------------------------------------------------


@dataclass
class Baseline:
    """Itemized pre-existing debt: findings that do not fail the run.

    Every entry names the rule, the checkout-independent path, the exact
    stripped source line it anchors to, and a human justification for
    why the debt is tolerated.  An entry only matches while that line
    still exists verbatim — fix or move the code and the debt resurfaces
    as a live finding, which is the point.
    """

    entries: List[Dict[str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        entries = data.get("entries", [])
        for entry in entries:
            for required in ("rule", "path", "context", "justification"):
                if required not in entry:
                    raise ValueError(
                        f"baseline entry missing {required!r}: {entry}"
                    )
        return cls(entries=list(entries))

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
        """Partition findings into (live, baselined); also stale entries."""
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            key = (entry["rule"], entry["path"], entry["context"])
            budget[key] = budget.get(key, 0) + 1
        live: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.key_path, finding.context)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                live.append(finding)
        # Entries with leftover budget matched nothing in the tree: the
        # debt they itemize was fixed (or drifted) — surface them so the
        # baseline cannot silently rot.
        stale: List[Dict[str, str]] = []
        for entry in self.entries:
            key = (entry["rule"], entry["path"], entry["context"])
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                stale.append(entry)
        return live, matched, stale

    @staticmethod
    def entry_for(finding: Finding, justification: str = "") -> Dict[str, str]:
        return {
            "rule": finding.rule,
            "path": finding.key_path,
            "context": finding.context,
            "justification": justification,
        }


#: The committed baseline lives next to the engine so the lint is
#: self-contained wherever the package is imported from.
DEFAULT_BASELINE = Path(__file__).with_name("lint_baseline.json")


# --- runner -----------------------------------------------------------------


@dataclass
class LintResult:
    findings: List[Finding]          # live, after suppressions + baseline
    baselined: List[Finding]
    suppressed: int
    stale_baseline: List[Dict[str, str]]
    files: int

    @property
    def clean(self) -> bool:
        return not self.findings


def default_rules() -> List[Rule]:
    from .rules import ALL_RULES

    return [cls() for cls in ALL_RULES]


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` and return the partitioned result."""
    if rules is None:
        rules = default_rules()
    modules = [load_module(p) for p in iter_source_files(paths)]
    for rule in rules:
        for mod in modules:
            rule.collect(mod)
    raw: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for mod in modules:
            for finding in rule.check(mod):
                if mod.suppressed(finding.line, finding.rule):
                    suppressed += 1
                else:
                    raw.append(finding)
    raw.sort(key=lambda f: (f.key_path, f.line, f.col, f.rule))
    if baseline is None:
        baseline = Baseline()
    live, matched, stale = baseline.split(raw)
    return LintResult(
        findings=live,
        baselined=matched,
        suppressed=suppressed,
        stale_baseline=stale,
        files=len(modules),
    )


# --- CLI --------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="repro-specific invariant linter (see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="baseline file of itemized pre-existing debt",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings as live (audit mode)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file (justifications "
        "must then be filled in by hand) instead of failing",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        help="run only the named rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    rules = default_rules()
    if args.list_rules:
        width = max(len(r.name) for r in rules)
        for rule in rules:
            print(f"{rule.name:<{width}}  {rule.summary}")
        return 0
    if args.rule:
        known = {r.name for r in rules}
        unknown = [name for name in args.rule if name not in known]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [r for r in rules if r.name in set(args.rule)]

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such file or directory: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    baseline = Baseline()
    baseline_path = Path(args.baseline)
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    result = run_lint(paths, rules=rules, baseline=baseline)

    if args.write_baseline:
        # Keep every still-matching committed entry (with its hand-written
        # justification), drop stale ones, and append the new findings
        # with an empty justification for the author to fill in.
        stale = list(result.stale_baseline)
        kept: List[Dict[str, str]] = []
        for entry in baseline.entries:
            if entry in stale:
                stale.remove(entry)
            else:
                kept.append(entry)
        entries = kept + [
            Baseline.entry_for(f, justification="") for f in result.findings
        ]
        baseline_path.write_text(
            json.dumps({"version": 1, "entries": entries}, indent=1) + "\n"
        )
        print(f"wrote {len(entries)} entry(ies) to {baseline_path}")
        return 0

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in result.findings],
                    "baselined": [f.to_json() for f in result.baselined],
                    "suppressed": result.suppressed,
                    "stale_baseline": result.stale_baseline,
                    "files": result.files,
                },
                indent=1,
            )
        )
    else:
        for finding in result.findings:
            print(finding.format())
        for entry in result.stale_baseline:
            print(
                f"warning: stale baseline entry (code no longer matches): "
                f"{entry['path']}: {entry['rule']}: {entry['context']!r}",
                file=sys.stderr,
            )
        summary = (
            f"{result.files} file(s): {len(result.findings)} finding(s), "
            f"{len(result.baselined)} baselined, {result.suppressed} suppressed"
        )
        print(summary, file=sys.stderr)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
