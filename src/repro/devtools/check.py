"""The full static-analysis gate: custom lint + ruff + mypy in one run.

``python -m repro.devtools.check`` is what ``make lint``, the
``repro-lint`` console script and the CI static-analysis job all invoke.
It always runs the repo-specific invariant linter
(:mod:`repro.devtools.lint` — stdlib-only, available everywhere), and
adds ``ruff`` and ``mypy`` when they are importable.  Environments
without those tools skip them with a notice and stay green — the
invariants still gate — while CI passes ``--require-all`` so a missing
tool is a failure there, never a silent downgrade.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import lint


def _tool_available(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run_tool(argv: Sequence[str], label: str) -> int:
    print(f"== {label}: {' '.join(argv)}", flush=True)
    return subprocess.run(list(argv)).returncode


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.check",
        description="run the full static-analysis gate "
        "(repro lint + ruff + mypy; see docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="directories for the repro linter and ruff (default: src tests)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail if ruff or mypy is not installed (CI mode) instead of "
        "skipping it",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    skipped: List[str] = []

    print(f"== repro lint: {' '.join(args.paths)}", flush=True)
    # The invariant linter only knows repro modules; pointing it at
    # tests/ is harmless (module-scoped rules see no repro.* prefix) but
    # generic rules like mutable-default still apply there.
    if lint.main(list(args.paths)) != 0:
        failures.append("repro lint")

    if _tool_available("ruff"):
        if _run_tool([sys.executable, "-m", "ruff", "check", "."], "ruff"):
            failures.append("ruff")
    else:
        skipped.append("ruff")

    if _tool_available("mypy"):
        config = Path(__file__).resolve().parents[3] / "mypy.ini"
        cmd = [sys.executable, "-m", "mypy"]
        if config.exists():
            cmd += ["--config-file", str(config)]
        else:
            cmd += ["-p", "repro"]
        if _run_tool(cmd, "mypy"):
            failures.append("mypy")
    else:
        skipped.append("mypy")

    for tool in skipped:
        print(f"== {tool}: not installed, skipped", flush=True)
    if skipped and args.require_all:
        failures.extend(skipped)

    if failures:
        print(f"static analysis FAILED: {', '.join(failures)}", flush=True)
        return 1
    print("static analysis clean", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
