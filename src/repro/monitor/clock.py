"""Per-monitor capture clocks: offset, skew, and drift.

"Atheros hardware uses a 1 us resolution clock to timestamp each packet as
it is received" and "each radio's clock skews over time.  The 802.11
standard mandates an accuracy of at least 100 PPM (0.01%) and our
experience is that Atheros hardware has far better frequency stability in
practice.  However, even good clocks eventually diverge." (Sections 3.3,
4.2.)  Jigsaw additionally compensates *drift* — "the change in skew over
time" — so the clock model includes all three error terms:

    local(t) = offset + integral over [0, t] of (1 + skew(s)/1e6) ds

where ``skew(s)`` performs a bounded random walk, stepping once per update
interval.  One :class:`RadioClock` is shared by both radios of a monitor
("our driver slaves this timestamp facility to the clock of a single
radio"), which is what lets Jigsaw bridge synchronization across channels.
"""

from __future__ import annotations

import numpy as np

from ..sim.scenario import ClockConfig


class RadioClock:
    """An imperfect 1 us capture clock.

    Queries must be made with non-decreasing true time — which holds for
    trace capture, where records arrive in time order.
    """

    def __init__(self, rng: np.random.Generator, config: ClockConfig) -> None:
        self._config = config
        self._rng = rng
        self.offset_us = float(
            rng.uniform(-config.offset_spread_us, config.offset_spread_us)
        )
        skew = float(rng.normal(0.0, config.skew_ppm_sigma))
        self.initial_skew_ppm = float(
            np.clip(skew, -config.max_skew_ppm, config.max_skew_ppm)
        )
        self._skew_ppm = self.initial_skew_ppm
        self._segment_start_true_us = 0.0
        self._segment_start_local_us = self.offset_us
        self._next_update_true_us = float(config.update_interval_us)
        self._last_query_us = -1.0

    @property
    def current_skew_ppm(self) -> float:
        return self._skew_ppm

    def local_time_us(self, true_us: int) -> int:
        """Map true simulation time to this clock's local timestamp."""
        if true_us < self._last_query_us:
            raise ValueError(
                f"clock queried backwards: {true_us} < {self._last_query_us}"
            )
        self._last_query_us = float(true_us)
        while true_us >= self._next_update_true_us:
            self._advance_segment()
        elapsed = true_us - self._segment_start_true_us
        local = self._segment_start_local_us + elapsed * (
            1.0 + self._skew_ppm * 1e-6
        )
        return int(round(local))

    def _advance_segment(self) -> None:
        """Close the current skew segment and step the drift random walk."""
        interval = float(self._config.update_interval_us)
        self._segment_start_local_us += interval * (1.0 + self._skew_ppm * 1e-6)
        self._segment_start_true_us = self._next_update_true_us
        self._next_update_true_us += interval
        step = float(
            self._rng.normal(0.0, self._config.drift_ppm_per_s_sigma)
        ) * (interval / 1e6)
        self._skew_ppm = float(
            np.clip(
                self._skew_ppm + step,
                -self._config.max_skew_ppm,
                self._config.max_skew_ppm,
            )
        )


class PerfectClock:
    """A zero-error clock, for ablations and algorithm unit tests."""

    offset_us = 0.0
    initial_skew_ppm = 0.0
    current_skew_ppm = 0.0

    def local_time_us(self, true_us: int) -> int:
        return int(true_us)
