"""Monitor radios and sensor pods.

A :class:`MonitorRadio` is a purely passive medium attachment: it never
transmits, it classifies every audible event with its own reception model
and appends a :class:`TraceRecord` timestamped by its monitor's (shared,
imperfect) clock.  A :class:`SensorPod` is the paper's deployment unit —
"a pair of monitors set a meter apart", each monitor carrying two radios
slaved to a single clock (Section 3.2/3.3), four radios total covering the
non-overlapping channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..dot11.channels import Channel
from ..dot11.constants import CAPTURE_SNAP_BYTES
from ..jtrace.io import RadioTrace
from ..jtrace.records import RecordKind, TraceRecord
from ..mac.medium import Medium, Transmission
from ..phy.propagation import Point
from ..phy.reception import ReceptionModel, ReceptionOutcome
from ..sim.kernel import Kernel
from ..sim.scenario import ClockConfig
from .clock import RadioClock

#: Channel pairs per monitor: monitor A covers (1, 6), monitor B (6, 11).
#: The shared channel-6 radios give bootstrap synchronization a bridge
#: between pods, and each monitor's shared clock bridges across channels —
#: the mechanism Section 4.1 describes.  (The paper's pods tune four
#: distinct frequencies; our production network only occupies 1/6/11, so a
#: second channel-6 vantage replaces the scanning frequency.)
DEFAULT_MONITOR_CHANNELS: Tuple[Tuple[int, int], Tuple[int, int]] = (
    (1, 6),
    (6, 11),
)


class MonitorRadio:
    """One passive capture radio."""

    def __init__(
        self,
        kernel: Kernel,
        medium: Medium,
        radio_id: int,
        position: Point,
        channel: Channel,
        clock: "RadioClock",
        rng: np.random.Generator,
    ) -> None:
        self.kernel = kernel
        self.radio_id = radio_id
        self.position = position
        self.channel = channel
        self.clock = clock
        self.reception = ReceptionModel(rng=rng)
        self.trace = RadioTrace(radio_id=radio_id, channel=channel.number)
        medium.attach(self)

    def on_air_event(
        self,
        tx: Transmission,
        rssi_dbm: float,
        interferer_levels_dbm: Tuple[float, ...],
    ) -> None:
        outcome = self.reception.receive(rssi_dbm, tx.rate, interferer_levels_dbm)
        if not outcome.observed:
            return
        local_ts = self.clock.local_time_us(self.kernel.now_us)
        if outcome is ReceptionOutcome.DECODED:
            record = self._valid_record(tx, rssi_dbm, local_ts)
        elif outcome is ReceptionOutcome.CORRUPT:
            record = self._corrupt_record(tx, rssi_dbm, local_ts)
        else:
            record = self._phy_error_record(tx, rssi_dbm, local_ts)
        self.trace.append(record)

    def drain_captured(self) -> List[TraceRecord]:
        """Hand over (and clear) the records captured since the last drain.

        The streaming scenario feed (:mod:`repro.sim.stream`) moves
        records out of the radio as the simulation advances, so a
        streamed run never holds a second materialized copy of the trace:
        ownership passes to the consuming
        :class:`~repro.jtrace.io.StreamingRadioTrace`.
        """
        drained = self.trace.records
        if not drained:
            return []
        self.trace.records = []
        return drained

    # --- record builders ---------------------------------------------------

    def _valid_record(
        self, tx: Transmission, rssi_dbm: float, local_ts: int
    ) -> TraceRecord:
        raw = tx.frame_bytes
        return TraceRecord(
            radio_id=self.radio_id,
            timestamp_us=local_ts,
            kind=RecordKind.VALID,
            channel=self.channel.number,
            rate_mbps=tx.rate.mbps,
            rssi_dbm=rssi_dbm,
            frame_len=len(raw),
            fcs=int.from_bytes(raw[-4:], "little"),
            snap=raw[:CAPTURE_SNAP_BYTES],
            duration_us=tx.duration_us,
            truth_txid=tx.txid,
        )

    def _corrupt_record(
        self, tx: Transmission, rssi_dbm: float, local_ts: int
    ) -> TraceRecord:
        damaged = self.reception.corrupt_bytes(tx.frame_bytes)
        # A corrupt capture's FCS field is whatever damaged bytes sit at the
        # tail — it will not match the content, which is the point.
        tail = damaged[-4:] if len(damaged) >= 4 else b"\x00\x00\x00\x00"
        return TraceRecord(
            radio_id=self.radio_id,
            timestamp_us=local_ts,
            kind=RecordKind.CORRUPT,
            channel=self.channel.number,
            rate_mbps=tx.rate.mbps,
            rssi_dbm=rssi_dbm,
            frame_len=len(damaged),
            fcs=int.from_bytes(tail, "little"),
            snap=damaged[:CAPTURE_SNAP_BYTES],
            duration_us=tx.duration_us,
            truth_txid=tx.txid,
        )

    def _phy_error_record(
        self, tx: Transmission, rssi_dbm: float, local_ts: int
    ) -> TraceRecord:
        return TraceRecord(
            radio_id=self.radio_id,
            timestamp_us=local_ts,
            kind=RecordKind.PHY_ERROR,
            channel=self.channel.number,
            rate_mbps=tx.rate.mbps,
            rssi_dbm=rssi_dbm,
            frame_len=0,
            fcs=0,
            snap=b"",
            duration_us=tx.duration_us,
            truth_txid=tx.txid,
        )


@dataclass
class SensorPod:
    """Two monitors, four radios, one vantage point."""

    pod_id: int
    position: Point
    radios: List[MonitorRadio]
    clocks: List[RadioClock]

    @property
    def traces(self) -> List[RadioTrace]:
        return [radio.trace for radio in self.radios]


def build_pod(
    kernel: Kernel,
    medium: Medium,
    pod_id: int,
    position: Point,
    clock_config: ClockConfig,
    rng: np.random.Generator,
    first_radio_id: int,
    monitor_channels: Sequence[Tuple[int, int]] = DEFAULT_MONITOR_CHANNELS,
) -> SensorPod:
    """Assemble one pod: 2 monitors x 2 radios, one clock per monitor.

    The two monitors sit a meter apart (antenna separation for active
    experiments; a single vantage point for passive capture).
    """
    radios: List[MonitorRadio] = []
    clocks: List[RadioClock] = []
    radio_id = first_radio_id
    for monitor_index, channels in enumerate(monitor_channels):
        clock = RadioClock(rng, clock_config)
        clocks.append(clock)
        monitor_pos = (
            position[0] + monitor_index * 1.0,
            position[1],
            position[2],
        )
        for channel_number in channels:
            radios.append(
                MonitorRadio(
                    kernel,
                    medium,
                    radio_id,
                    monitor_pos,
                    Channel(channel_number),
                    clock,
                    np.random.default_rng(rng.integers(0, 2**63)),
                )
            )
            radio_id += 1
    return SensorPod(pod_id, position, radios, clocks)
