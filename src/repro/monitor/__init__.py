"""Measurement infrastructure substrate: clocks, monitor radios, pods."""

from .clock import PerfectClock, RadioClock
from .radio import (
    DEFAULT_MONITOR_CHANNELS,
    MonitorRadio,
    SensorPod,
    build_pod,
)

__all__ = [
    "PerfectClock",
    "RadioClock",
    "DEFAULT_MONITOR_CHANNELS",
    "MonitorRadio",
    "SensorPod",
    "build_pod",
]
