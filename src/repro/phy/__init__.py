"""Physical-layer substrate: propagation, reception, interference."""

from .noisefloor import BroadbandInterferer, ambient_interference_dbm
from .propagation import (
    DEFAULT_PATH_LOSS_EXPONENT,
    FLOOR_HEIGHT_M,
    Point,
    PropagationModel,
    distance_m,
)
from .reception import (
    CARRIER_SENSE_DBM,
    DEFAULT_NOISE_FLOOR_DBM,
    ReceptionModel,
    ReceptionOutcome,
    SENSITIVITY_DBM,
    combine_power_dbm,
    decode_probability,
    sinr_db,
)

__all__ = [
    "BroadbandInterferer",
    "ambient_interference_dbm",
    "DEFAULT_PATH_LOSS_EXPONENT",
    "FLOOR_HEIGHT_M",
    "Point",
    "PropagationModel",
    "distance_m",
    "CARRIER_SENSE_DBM",
    "DEFAULT_NOISE_FLOOR_DBM",
    "SENSITIVITY_DBM",
    "ReceptionModel",
    "ReceptionOutcome",
    "combine_power_dbm",
    "decode_probability",
    "sinr_db",
]
