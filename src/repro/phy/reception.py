"""Frame reception model: RSSI + interference -> decode / corrupt / miss.

The paper's monitors observe four event classes, and "over 47% of these
events are physical or CRC errors ... given transmissions observed by
distant monitors just beyond reception range, the presence of both
co-channel interference (hidden terminals) and broadband interference"
(Section 7.1).  The reception model reproduces exactly those classes:

``DECODED``     frame received, FCS valid;
``CORRUPT``     frame detected and captured, but bytes damaged (CRC error);
``PHY_ERROR``   energy detected / preamble lock failed — no frame contents;
``MISSED``      below sensitivity, nothing recorded.

Outcomes are a deterministic function of SINR and a seeded RNG, so runs are
reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..dot11.rates import PhyRate, RATE_SNR_THRESHOLDS_DB

#: Thermal noise floor for a 22 MHz channel plus typical receiver noise
#: figure: -174 dBm/Hz + 10*log10(22e6) ~ -100.6, +7 dB NF.
DEFAULT_NOISE_FLOOR_DBM = -94.0

#: Below this RSSI the radio does not register the transmission at all.
SENSITIVITY_DBM = -92.0

#: Energy above this at an idle receiver marks the medium busy (carrier
#: sense / clear channel assessment).
CARRIER_SENSE_DBM = -82.0

#: Width of the logistic success curve around the per-rate SNR threshold.
SNR_CURVE_WIDTH_DB = 2.0

#: SINR margin below which a detected-but-undecodable event is logged as a
#: PHY error instead of a corrupt frame capture.
PHY_ERROR_MARGIN_DB = 6.0


class ReceptionOutcome(enum.Enum):
    DECODED = "decoded"
    CORRUPT = "corrupt"
    PHY_ERROR = "phy_error"
    MISSED = "missed"

    @property
    def observed(self) -> bool:
        """Whether the capture pipeline records anything for this outcome."""
        return self is not ReceptionOutcome.MISSED


def combine_power_dbm(levels_dbm: Sequence[float]) -> float:
    """Sum powers expressed in dBm (log-domain addition)."""
    if not levels_dbm:
        return -math.inf
    total_mw = sum(10.0 ** (level / 10.0) for level in levels_dbm)
    return 10.0 * math.log10(total_mw)


def sinr_db(
    signal_dbm: float,
    interferers_dbm: Sequence[float],
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM,
) -> float:
    """Signal-to-interference-plus-noise ratio in dB."""
    noise_mw = 10.0 ** (noise_floor_dbm / 10.0)
    interference_mw = sum(10.0 ** (level / 10.0) for level in interferers_dbm)
    return signal_dbm - 10.0 * math.log10(noise_mw + interference_mw)


def decode_probability(snr: float, rate: PhyRate) -> float:
    """Probability that a frame at ``rate`` decodes cleanly at ``snr`` dB.

    A logistic curve centered on the per-rate threshold: ~50% at threshold,
    saturating within a few dB either side — the standard shape of measured
    frame-delivery-vs-SNR curves.
    """
    threshold = RATE_SNR_THRESHOLDS_DB[rate]
    x = (snr - threshold) / SNR_CURVE_WIDTH_DB
    return 1.0 / (1.0 + math.exp(-x))


@dataclass
class ReceptionModel:
    """Stateful reception decisions driven by a seeded RNG.

    ``rx_gain_db`` models the receive antenna/front-end advantage of
    production equipment over the monitors' 2-3 dBi rubber ducks
    (Section 3.2).  Gain lifts both signal and interference, so it helps
    only against the thermal noise floor — marginal frames a production AP
    still decodes can be lost on every monitor, which is what gives the
    coverage evaluation of Section 6 its client-side tail.
    """

    rng: np.random.Generator
    noise_floor_dbm: float = DEFAULT_NOISE_FLOOR_DBM
    sensitivity_dbm: float = SENSITIVITY_DBM
    rx_gain_db: float = 0.0

    def receive(
        self,
        signal_dbm: float,
        rate: PhyRate,
        interferers_dbm: Sequence[float] = (),
    ) -> ReceptionOutcome:
        """Classify one reception attempt."""
        signal_dbm = signal_dbm + self.rx_gain_db
        if interferers_dbm and self.rx_gain_db:
            interferers_dbm = [
                level + self.rx_gain_db for level in interferers_dbm
            ]
        if signal_dbm < self.sensitivity_dbm:
            return ReceptionOutcome.MISSED
        snr = sinr_db(signal_dbm, interferers_dbm, self.noise_floor_dbm)
        p_ok = decode_probability(snr, rate)
        if self.rng.random() < p_ok:
            return ReceptionOutcome.DECODED
        # Failed decode: deep-failure events never achieved frame lock and
        # surface as PHY errors; marginal ones are captured with a bad CRC.
        threshold = RATE_SNR_THRESHOLDS_DB[rate]
        if snr < threshold - PHY_ERROR_MARGIN_DB:
            return ReceptionOutcome.PHY_ERROR
        return ReceptionOutcome.CORRUPT

    def corrupt_bytes(self, raw: bytes, max_flips: int = 8) -> bytes:
        """Damage a captured frame the way marginal receptions do.

        Flips a handful of bytes at random positions (biased toward the
        tail, where long frames usually die), sometimes truncating.  The
        result intentionally fails the FCS check.
        """
        if not raw:
            return raw
        damaged = bytearray(raw)
        if len(damaged) > 16 and self.rng.random() < 0.3:
            # Truncation: reception died partway through the frame.
            cut = int(self.rng.integers(12, len(damaged)))
            damaged = damaged[:cut]
        n_flips = int(self.rng.integers(1, max_flips + 1))
        positions = self.rng.integers(0, len(damaged), size=n_flips)
        # Bias damage toward the tail so headers frequently survive, letting
        # the unifier's transmitter-address matching work as in the paper.
        for pos in positions:
            biased = min(len(damaged) - 1, int(pos * 0.5 + len(damaged) * 0.5))
            damaged[biased] ^= int(self.rng.integers(1, 256))
        return bytes(damaged)
