"""Broadband interference sources.

Section 7.1 attributes part of the 47% error-event share to "broadband
interference (microwave ovens)".  A :class:`BroadbandInterferer` raises the
effective noise floor near its location during duty cycles, producing bursts
of PHY/CRC errors at nearby monitors without any corresponding 802.11
transmission — background loss the interference estimator of Section 7.2
must not misattribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .propagation import Point, PropagationModel


@dataclass(frozen=True)
class BroadbandInterferer:
    """A duty-cycled wideband noise source (e.g. a microwave oven)."""

    position: Point
    power_dbm: float = 20.0
    period_us: int = 16_667        # magnetron gates at mains half-cycle
    duty_cycle: float = 0.5
    start_us: int = 0
    stop_us: int = 1 << 62

    def active_at(self, t_us: int) -> bool:
        if not self.start_us <= t_us < self.stop_us:
            return False
        phase = (t_us - self.start_us) % self.period_us
        return phase < self.period_us * self.duty_cycle

    def power_at(
        self, t_us: int, rx: Point, propagation: PropagationModel
    ) -> float:
        """Interference power (dBm) this source lands on ``rx`` at ``t_us``.

        Returns ``-inf``-like small value when inactive; callers filter.
        """
        if not self.active_at(t_us):
            return -300.0
        return propagation.rssi_dbm(self.power_dbm, self.position, rx)


def ambient_interference_dbm(
    interferers: Sequence[BroadbandInterferer],
    t_us: int,
    rx: Point,
    propagation: PropagationModel,
) -> Tuple[float, ...]:
    """Interference levels from every active broadband source at ``rx``."""
    levels = []
    for source in interferers:
        level = source.power_at(t_us, rx, propagation)
        if level > -200.0:
            levels.append(level)
    return tuple(levels)
