"""Indoor radio propagation model.

Jigsaw never touches RF directly: the algorithms consume only *which* radios
hear *which* frames at what signal strength, with what damage.  What matters
for a faithful reproduction is that the propagation model produce the same
observable structure the paper describes:

* signal strength decays with distance, so "no single frame likely covers an
  entire building" (Section 4.1) and synchronization must be transitive;
* walls and floors attenuate, producing the room-to-room coverage variation
  of Figure 6 ("clients with substantial missing frames were located in
  rooms that consistently lack good coverage");
* distant nodes cannot carrier-sense each other, creating the hidden
  terminals whose co-channel interference Section 7.2 measures.

We use the standard log-distance path-loss model with per-floor attenuation
and deterministic log-normal shadowing (hashed per endpoint pair, so a link
has a stable character across a run — like a real pair of locations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

Point = Tuple[float, float, float]

#: Free-space loss at the 1 m reference distance for 2.4 GHz.
REFERENCE_LOSS_DB = 40.0

#: Typical indoor path-loss exponent (obstructed office environment).
DEFAULT_PATH_LOSS_EXPONENT = 3.3

#: Attenuation per concrete floor crossed.
DEFAULT_FLOOR_LOSS_DB = 15.0

#: Standard deviation of log-normal shadowing.  Indoor measurements put
#: sigma at 7-10 dB for obstructed office links; the high value is what
#: produces the paper's "rooms that consistently lack good coverage"
#: (Figure 6's client tail) — with mild shadowing every corridor-mounted
#: pod hears every office and coverage is unrealistically perfect.
DEFAULT_SHADOWING_SIGMA_DB = 8.0

#: Height of one building floor in meters (used to count floor crossings).
FLOOR_HEIGHT_M = 4.0


def distance_m(a: Point, b: Point) -> float:
    """Euclidean distance between two 3-D points in meters."""
    return math.dist(a, b)


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss + floor loss + stable per-link shadowing.

    Losses are cached per endpoint pair: device positions are static in our
    scenarios and a building-scale fleet evaluates every transmission
    against ~250 receivers, so the cache turns the hot path into a dict
    lookup.
    """

    path_loss_exponent: float = DEFAULT_PATH_LOSS_EXPONENT
    floor_loss_db: float = DEFAULT_FLOOR_LOSS_DB
    shadowing_sigma_db: float = DEFAULT_SHADOWING_SIGMA_DB
    shadowing_seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_cache", {})

    def path_loss_db(self, tx: Point, rx: Point) -> float:
        """Total propagation loss from ``tx`` to ``rx`` in dB (symmetric)."""
        key = (tx, rx) if tx <= rx else (rx, tx)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dist = max(distance_m(tx, rx), 1.0)
        loss = REFERENCE_LOSS_DB + 10.0 * self.path_loss_exponent * math.log10(dist)
        loss += self._floor_crossings(tx, rx) * self.floor_loss_db
        loss += self._shadowing_db(tx, rx)
        self._cache[key] = loss
        return loss

    def rssi_dbm(self, tx_power_dbm: float, tx: Point, rx: Point) -> float:
        """Received signal strength at ``rx`` for a transmission from ``tx``."""
        return tx_power_dbm - self.path_loss_db(tx, rx)

    # --- internals -----------------------------------------------------

    @staticmethod
    def _floor_crossings(a: Point, b: Point) -> int:
        return abs(int(a[2] // FLOOR_HEIGHT_M) - int(b[2] // FLOOR_HEIGHT_M))

    def _shadowing_db(self, a: Point, b: Point) -> float:
        """Deterministic log-normal shadowing, symmetric in (a, b).

        Seeding a tiny generator from the quantized endpoints makes the
        value reproducible run-to-run and identical in both link directions,
        while still varying irregularly from link to link — the same role
        shadow fading plays in a real building.
        """
        if self.shadowing_sigma_db <= 0:
            return 0.0
        qa = tuple(int(round(c * 4)) for c in a)
        qb = tuple(int(round(c * 4)) for c in b)
        lo, hi = (qa, qb) if qa <= qb else (qb, qa)
        seed = hash((lo, hi, self.shadowing_seed)) & 0xFFFF_FFFF
        rng = np.random.default_rng(seed)
        return float(rng.normal(0.0, self.shadowing_sigma_db))
