"""Trace records — the jigdump analogue.

Each monitor radio produces a stream of :class:`TraceRecord`: one per
physical event it observed.  Mirroring the modified MadWifi driver of
Section 3.3, the stream includes not just valid frames but "all available
physical layer events, including corrupted frames and physical errors", and
payloads are snapped to 200 bytes (Section 5).

``truth_txid`` carries the simulator's ground-truth transmission id.  The
real system has no such field — it exists so the evaluation can score
Jigsaw's output against an oracle, and the Jigsaw pipeline itself is
forbidden from reading it (enforced by convention and exercised by tests
that scramble it).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..dot11.constants import CAPTURE_SNAP_BYTES

_np: Any
try:
    import numpy

    _np = numpy
except ImportError:  # pragma: no cover - numpy is part of the supported env
    _np = None

#: True when the vectorized batch decoder can run (numpy importable).
BATCH_DECODE_AVAILABLE: bool = _np is not None


class RecordKind(enum.Enum):
    VALID = 1        # FCS-good frame capture
    CORRUPT = 2      # frame capture with FCS failure (CRC error)
    PHY_ERROR = 3    # energy detected, no frame lock

    @property
    def has_frame(self) -> bool:
        return self is not RecordKind.PHY_ERROR


@dataclass(frozen=True)
class TraceRecord:
    """One captured physical event at one radio."""

    radio_id: int
    timestamp_us: int            # local clock, integer microseconds
    kind: RecordKind
    channel: int
    rate_mbps: float
    rssi_dbm: float
    frame_len: int               # full on-air length, bytes
    fcs: int                     # FCS field as captured (32 bits)
    snap: bytes                  # frame bytes, truncated to the snap length
    duration_us: int             # airtime occupied by this event
    truth_txid: int = 0          # simulator oracle only — never read by Jigsaw

    def __post_init__(self) -> None:
        if len(self.snap) > CAPTURE_SNAP_BYTES + 64:
            raise ValueError("snap exceeds capture limit")
        if self.kind is RecordKind.PHY_ERROR and self.snap:
            raise ValueError("PHY error records carry no frame bytes")

    @property
    def is_valid_frame(self) -> bool:
        return self.kind is RecordKind.VALID


_HEADER = struct.Struct("<HqBBHhHIIHq")
# radio_id, timestamp, kind, channel, rate*10, rssi, frame_len, fcs,
# reserved(truth high bits live in the trailing q), snap_len, truth_txid

#: Valid ``kind`` byte values — the first thing corruption tends to break.
_VALID_KINDS = frozenset(kind.value for kind in RecordKind)

#: Plausibility bounds for :func:`probe_record_header`.  The snap bound is
#: the :class:`TraceRecord` constructor's own limit; frame length and rate
#: are generous envelopes over anything 802.11 can put on the air.
_MAX_PLAUSIBLE_SNAP = CAPTURE_SNAP_BYTES + 64
_MAX_PLAUSIBLE_FRAME_LEN = 8192
_MAX_PLAUSIBLE_RATE_X10 = 6000


def probe_record_header(
    raw: bytes, offset: int = 0, min_timestamp_us: Optional[int] = None
) -> bool:
    """Cheap plausibility check: could a record header start at ``offset``?

    Used by the tolerant decoder to detect in-place corruption before
    trusting a header's ``snap_len`` framing, and to resynchronize to the
    next record boundary after damage.  The checks are structural (valid
    ``kind``, bounded snap/frame/rate fields, PHY errors carry no snap)
    plus local-time monotonicity when ``min_timestamp_us`` is given —
    capture files are written in local-time order, so a boundary whose
    timestamp runs backwards is a mis-framed candidate, not a record.

    Returns ``False`` when fewer than a full header's bytes are available.
    """
    if len(raw) - offset < _HEADER.size:
        return False
    (
        _radio_id,
        timestamp,
        kind,
        _channel,
        rate_x10,
        _rssi,
        frame_len,
        _fcs,
        _duration,
        snap_len,
        _truth,
    ) = _HEADER.unpack_from(raw, offset)
    if kind not in _VALID_KINDS:
        return False
    if snap_len > _MAX_PLAUSIBLE_SNAP:
        return False
    if kind == RecordKind.PHY_ERROR.value and snap_len:
        return False
    if frame_len > _MAX_PLAUSIBLE_FRAME_LEN:
        return False
    if rate_x10 > _MAX_PLAUSIBLE_RATE_X10:
        return False
    if min_timestamp_us is not None and timestamp < min_timestamp_us:
        return False
    return True


def header_timestamp_us(raw: bytes, offset: int = 0) -> int:
    """The local timestamp of the header at ``offset`` (caller-validated)."""
    return _HEADER.unpack_from(raw, offset)[1]


def record_to_bytes(record: TraceRecord) -> bytes:
    header = _HEADER.pack(
        record.radio_id,
        record.timestamp_us,
        record.kind.value,
        record.channel,
        int(round(record.rate_mbps * 10)),
        int(round(record.rssi_dbm)),
        record.frame_len,
        record.fcs,
        record.duration_us,
        len(record.snap),
        record.truth_txid,
    )
    return header + record.snap


def record_span(raw: bytes, offset: int = 0) -> Optional[int]:
    """Total encoded size of the record at ``offset``, or ``None``.

    Returns ``None`` when fewer than a full header's bytes are available —
    the streaming reader's signal to fetch another chunk before deciding
    whether the record is complete.
    """
    if len(raw) - offset < _HEADER.size:
        return None
    snap_len = _HEADER.unpack_from(raw, offset)[9]
    return _HEADER.size + snap_len


def record_from_bytes(raw: bytes, offset: int = 0) -> Tuple[TraceRecord, int]:
    """Decode one record; returns ``(record, next_offset)``."""
    if len(raw) - offset < _HEADER.size:
        raise ValueError("truncated record header")
    (
        radio_id,
        timestamp,
        kind,
        channel,
        rate_x10,
        rssi,
        frame_len,
        fcs,
        duration,
        snap_len,
        truth_txid,
    ) = _HEADER.unpack_from(raw, offset)
    start = offset + _HEADER.size
    end = start + snap_len
    if len(raw) < end:
        raise ValueError("truncated record payload")
    record = TraceRecord(
        radio_id=radio_id,
        timestamp_us=timestamp,
        kind=RecordKind(kind),
        channel=channel,
        rate_mbps=rate_x10 / 10.0,
        rssi_dbm=float(rssi),
        frame_len=frame_len,
        fcs=fcs,
        snap=raw[start:end],
        duration_us=duration,
        truth_txid=truth_txid,
    )
    return record, end


# --- batch-vectorized decode -------------------------------------------------
#
# The scalar decoder above costs ~7 us/record: one 11-field struct unpack,
# one frozen-dataclass construction (eleven object.__setattr__ calls plus
# __post_init__), and one enum call per record.  At building scale
# (~1.5M records) that is most of the end-to-end wall clock.  The batch
# path amortizes all three: headers for a whole framed run are gathered
# into one numpy structured array, validated with vectorized predicates,
# converted column-wise, and materialized through ``__new__`` +
# ``__dict__`` — bypassing the per-field frozen setattr while keeping the
# records it builds equal (and hash-equal) to scalar-decoded ones.

#: Struct reading just ``snap_len``, for the cheap framing hop.
_SNAP_LEN_STRUCT = struct.Struct("<H")

#: Byte offset of ``snap_len`` inside the packed header.
_SNAP_LEN_OFFSET = struct.calcsize("<HqBBHhHII")

_PHY_VALUE = RecordKind.PHY_ERROR.value

#: ``kind`` byte -> enum member; a dict lookup is ~15x cheaper than
#: calling ``RecordKind(value)`` in the construction loop.
_KIND_BY_VALUE: Dict[int, RecordKind] = {k.value: k for k in RecordKind}

_HEADER_DTYPE: Any
_HEADER_RANGE: Any
_EMPTY_HEADERS: Any
_KIND_OK_TABLE: Any
if _np is not None:
    #: Structured view of ``_HEADER``: same field order, same packed
    #: little-endian layout, one name per struct code (itemsize must
    #: equal ``_HEADER.size``; the devtools struct rule cross-checks).
    _HEADER_DTYPE = _np.dtype(
        [
            ("radio_id", "<u2"),
            ("timestamp_us", "<i8"),
            ("kind", "u1"),
            ("channel", "u1"),
            ("rate_x10", "<u2"),
            ("rssi", "<i2"),
            ("frame_len", "<u2"),
            ("fcs", "<u4"),
            ("duration_us", "<u4"),
            ("snap_len", "<u2"),
            ("truth_txid", "<i8"),
        ]
    )
    if _HEADER_DTYPE.itemsize != _HEADER.size:  # pragma: no cover
        raise AssertionError("_HEADER_DTYPE drifted from the _HEADER layout")
    _HEADER_RANGE = _np.arange(_HEADER.size, dtype=_np.intp)
    _EMPTY_HEADERS = _np.empty(0, dtype=_HEADER_DTYPE)
    _KIND_OK_TABLE = _np.zeros(256, dtype=bool)
    _KIND_OK_TABLE[sorted(_VALID_KINDS)] = True
else:  # pragma: no cover - numpy is part of the supported env
    _HEADER_DTYPE = None
    _HEADER_RANGE = None
    _EMPTY_HEADERS = None
    _KIND_OK_TABLE = None


@dataclass
class RecordBatch:
    """A run of consecutively decoded records from one stream.

    ``ts_sorted`` says whether timestamps are non-decreasing *within*
    the batch (computed vectorized during decode), so the streaming tee
    can validate local-time order per batch plus one boundary
    comparison instead of rescanning every record.
    """

    records: List[TraceRecord]
    ts_sorted: bool

    def __len__(self) -> int:
        return len(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        return self.records[0].timestamp_us if self.records else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        return self.records[-1].timestamp_us if self.records else None


def batch_from_records(records: List[TraceRecord]) -> RecordBatch:
    """Wrap scalar-decoded records in a batch (order scanned once here)."""
    ts_sorted = all(
        a.timestamp_us <= b.timestamp_us for a, b in zip(records, records[1:])
    )
    return RecordBatch(records, ts_sorted)


#: Vectorized converters for the lazily-materialized columns.  Each runs
#: at most once per batch, on first access of that field by any record.
_COLUMN_MATERIALIZERS: Dict[str, Callable[[Any], List[Any]]] = {
    "rate_mbps": lambda h: (h["rate_x10"] / 10.0).tolist(),
    "rssi_dbm": lambda h: h["rssi"].astype("f8").tolist(),
    "duration_us": lambda h: h["duration_us"].tolist(),
    "truth_txid": lambda h: h["truth_txid"].tolist(),
}


class _LazyColumns:
    """Cold header columns of one decoded batch, materialized on demand.

    Shared by every record of the batch; a column converts from its
    packed numpy form to Python scalars the first time any record in
    the batch touches the corresponding field.
    """

    __slots__ = ("_headers", "_cache")

    def __init__(self, headers: Any) -> None:
        self._headers = headers
        self._cache: Dict[str, List[Any]] = {}

    def get(self, name: str, index: int) -> Any:
        col = self._cache.get(name)
        if col is None:
            col = _COLUMN_MATERIALIZERS[name](self._headers)
            self._cache[name] = col
        return col[index]


class _LazyField:
    """Non-data descriptor for a lazily-materialized record field.

    Reads fall through to the batch column store.  Anything that writes
    the instance attribute — ``dataclasses.replace``, the inherited
    dataclass ``__init__`` — shadows the descriptor with a plain
    instance value, so batch records degrade to eager ones under every
    mutation-by-copy idiom.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __get__(
        self, obj: Optional["BatchTraceRecord"], objtype: Optional[type] = None
    ) -> Any:
        if obj is None:
            return self
        return obj._cols.get(self._name, obj._idx)


def _record_key(record: TraceRecord) -> Tuple[Any, ...]:
    """Field tuple in declaration order (equality / pickle payload)."""
    return (
        record.radio_id,
        record.timestamp_us,
        record.kind,
        record.channel,
        record.rate_mbps,
        record.rssi_dbm,
        record.frame_len,
        record.fcs,
        record.snap,
        record.duration_us,
        record.truth_txid,
    )


def _eager_record(*fields: Any) -> TraceRecord:
    """Rebuild a fully materialized record (pickle target for batch records)."""
    return TraceRecord(*fields)


class BatchTraceRecord(TraceRecord):
    """A record decoded by the batch path, with lazy cold fields.

    Hot fields (identity, timestamp, kind, channel, framing, snap) live
    eagerly in the instance; the fields most jframes never touch —
    ``rate_mbps``, ``rssi_dbm``, ``duration_us``, ``truth_txid`` —
    resolve through the batch's shared column store and convert
    vectorized on first access.  Instances compare and hash equal to
    the scalar decoder's output, and pickle as plain eager records so
    process-pool shard dispatch never ships a column store.
    """

    _cols: _LazyColumns
    _idx: int

    rate_mbps = _LazyField("rate_mbps")  # type: ignore[assignment]
    rssi_dbm = _LazyField("rssi_dbm")  # type: ignore[assignment]
    duration_us = _LazyField("duration_us")  # type: ignore[assignment]
    truth_txid = _LazyField("truth_txid")  # type: ignore[assignment]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TraceRecord):
            return _record_key(self) == _record_key(other)
        return NotImplemented

    __hash__ = TraceRecord.__hash__

    def __reduce__(self) -> Tuple[Any, Tuple[Any, ...]]:
        return (_eager_record, _record_key(self))


class FramingHint:
    """Record boundaries claimed by a trace's metadata sidecar.

    ``write_trace`` knows every record's ``snap_len``, so the sidecar can
    carry the whole framing chain and spare the reader its serial
    ``snap_len``-hop scan — the one data-dependent (hence unvectorizable)
    step left in batch decode.  The table is a *hint*, never an
    authority: :meth:`fast_forward` re-reads the actual ``snap_len``
    bytes at every claimed offset with one vectorized gather and trusts
    only the byte-verified prefix.  Any divergence — damaged bytes, a
    resynchronized stream position the table does not know, a stale
    sidecar — hands the exact divergence offset back to the serial scan,
    so framing output is byte-for-byte what the scan alone would
    produce on every input, clean or damaged.
    """

    __slots__ = ("starts", "snap_lens")

    def __init__(self, snap_lens: Any) -> None:
        if _np is None:  # pragma: no cover - numpy is part of the env
            raise RuntimeError("framing hints require numpy")
        self.snap_lens = _np.asarray(snap_lens, dtype=_np.int64)
        sizes = self.snap_lens + _HEADER.size
        starts = _np.empty(len(sizes), dtype=_np.int64)
        if len(sizes):
            starts[0] = 0
            _np.cumsum(sizes[:-1], out=starts[1:])
        self.starts = starts

    @classmethod
    def from_packed(cls, packed: bytes) -> "FramingHint":
        """Build from the sidecar's packed little-endian u16 array."""
        return cls(_np.frombuffer(packed, dtype="<u2"))

    def fast_forward(
        self, buffer: bytes, offset: int, stream_base: int
    ) -> Tuple[int, List[int]]:
        """Byte-verified framing prefix at ``offset`` (``stream_base`` is
        the absolute decompressed-stream position of ``buffer[0]``).

        Returns ``(resume_offset, verified_offsets)``: the record start
        offsets whose claimed ``snap_len`` matches the buffer bytes and
        whose spans fit, plus the offset where the serial scan must
        resume.  Returns ``(offset, [])`` when the table has nothing
        verifiable at this position.
        """
        abs_off = stream_base + offset
        i0 = int(_np.searchsorted(self.starts, abs_off))
        if i0 >= len(self.starts) or int(self.starts[i0]) != abs_off:
            return offset, []
        rel = self.starts[i0:] - stream_base
        snaps = self.snap_lens[i0:]
        ends = rel + (snaps + _HEADER.size)
        k = int(_np.searchsorted(ends, len(buffer), side="right"))
        if not k:
            return offset, []
        rel = rel[:k]
        base = _np.frombuffer(buffer, dtype=_np.uint8)
        pos = rel + _SNAP_LEN_OFFSET
        actual = base[pos].astype(_np.int64) | (
            base[pos + 1].astype(_np.int64) << 8
        )
        matched = actual == snaps[:k]
        j = k if matched.all() else int(_np.argmax(~matched))
        if not j:
            return offset, []
        resume = int(rel[j - 1]) + _HEADER.size + int(snaps[j - 1])
        return resume, rel[:j].tolist()


class FramedRun:
    """Complete records framed from a decode buffer, headers gathered.

    Framing trusts each header's ``snap_len`` hop (the strict decoder's
    contract; the tolerant path validates before decoding).  The run
    stops at the first record whose span overruns the buffer — the
    partial tail the streaming reader completes with its next chunk.

    A :class:`FramingHint` fast-forwards the hop scan over the prefix it
    can byte-verify; the serial scan always finishes the job from the
    verified frontier, so hinted and unhinted framing are identical.
    """

    __slots__ = ("buffer", "offsets", "next_offset", "_headers")

    buffer: bytes
    offsets: List[int]
    next_offset: int
    _headers: Any

    def __init__(
        self,
        buffer: bytes,
        offset: int = 0,
        hint: Optional[FramingHint] = None,
        stream_base: int = 0,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy is part of the env
            raise RuntimeError("batch decode requires numpy")
        self.buffer = buffer
        if hint is not None:
            offset, offsets = hint.fast_forward(buffer, offset, stream_base)
        else:
            offsets = []
        append = offsets.append
        unpack = _SNAP_LEN_STRUCT.unpack_from
        header = _HEADER.size
        snap_off = _SNAP_LEN_OFFSET
        n = len(buffer)
        while offset + header <= n:
            end = offset + header + unpack(buffer, offset + snap_off)[0]
            if end > n:
                break
            append(offset)
            offset = end
        self.offsets = offsets
        self.next_offset = offset
        if offsets:
            base = _np.frombuffer(buffer, dtype=_np.uint8)
            idx = _np.asarray(offsets, dtype=_np.intp)[:, None] + _HEADER_RANGE
            self._headers = base.take(idx.ravel()).view(_HEADER_DTYPE)
        else:
            self._headers = _EMPTY_HEADERS

    def __len__(self) -> int:
        return len(self.offsets)

    def strict_violation(self) -> Optional[int]:
        """Index of the first record the strict constructor would reject.

        Mirrors exactly what :func:`record_from_bytes` raises on — an
        invalid ``kind`` byte or a :class:`TraceRecord` post-init
        failure — so the strict batch path can re-decode that one
        record scalar-wise and surface the identical exception.
        """
        h = self._headers
        kind = h["kind"]
        snap = h["snap_len"]
        bad = ~_KIND_OK_TABLE[kind]
        bad |= snap > _MAX_PLAUSIBLE_SNAP
        bad |= (kind == _PHY_VALUE) & (snap != 0)
        if not bad.any():
            return None
        return int(bad.argmax())

    def plausible_prefix(self, min_timestamp_us: Optional[int]) -> int:
        """How many leading records pass :func:`probe_record_header`.

        The same predicate set the tolerant scalar decoder probes with —
        structural bounds plus local-time monotonicity against the
        previous record (``min_timestamp_us`` seeds the chain) — so the
        batch fast path accepts byte-for-byte what the scalar path
        accepts, and hands over at the same damaged offset.
        """
        h = self._headers
        if not len(h):
            return 0
        kind = h["kind"]
        snap = h["snap_len"]
        ok = _KIND_OK_TABLE[kind].copy()
        ok &= snap <= _MAX_PLAUSIBLE_SNAP
        ok &= ~((kind == _PHY_VALUE) & (snap != 0))
        ok &= h["frame_len"] <= _MAX_PLAUSIBLE_FRAME_LEN
        ok &= h["rate_x10"] <= _MAX_PLAUSIBLE_RATE_X10
        ts = h["timestamp_us"]
        if min_timestamp_us is not None and ts[0] < min_timestamp_us:
            ok[0] = False
        if len(ok) > 1:
            ok[1:] &= ts[1:] >= ts[:-1]
        if ok.all():
            return len(ok)
        return int((~ok).argmax())

    def decode(self, count: Optional[int] = None, lazy: bool = True) -> RecordBatch:
        """Materialize the first ``count`` framed records (all by default).

        ``lazy`` selects :class:`BatchTraceRecord` with deferred cold
        fields; ``lazy=False`` builds plain eager ``TraceRecord``s
        (used where records outlive their batch, e.g. eager reads).
        """
        offsets = self.offsets if count is None else self.offsets[:count]
        n = len(offsets)
        if n == 0:
            return RecordBatch([], True)
        h = self._headers if count is None else self._headers[:count]
        ts_col = h["timestamp_us"]
        ts_sorted = bool(_np.all(ts_col[1:] >= ts_col[:-1])) if n > 1 else True
        radio = h["radio_id"].tolist()
        ts = ts_col.tolist()
        kind_vals = h["kind"].tolist()
        chan = h["channel"].tolist()
        flen = h["frame_len"].tolist()
        fcs = h["fcs"].tolist()
        snap_lens = h["snap_len"].tolist()
        buffer = self.buffer
        hsize = _HEADER.size
        kind_of = _KIND_BY_VALUE
        records: List[TraceRecord] = []
        append = records.append
        if lazy:
            cols = _LazyColumns(h)
            cls: type = BatchTraceRecord
            new = cls.__new__
            for i in range(n):
                start = offsets[i] + hsize
                r = new(cls)
                # One dict display assigned wholesale: measurably cheaper
                # than filling the instance dict through update(**kwargs)
                # at millions of records.
                r.__dict__ = {
                    "radio_id": radio[i],
                    "timestamp_us": ts[i],
                    "kind": kind_of[kind_vals[i]],
                    "channel": chan[i],
                    "frame_len": flen[i],
                    "fcs": fcs[i],
                    "snap": buffer[start : start + snap_lens[i]],
                    "_cols": cols,
                    "_idx": i,
                }
                append(r)
        else:
            rate = _COLUMN_MATERIALIZERS["rate_mbps"](h)
            rssi = _COLUMN_MATERIALIZERS["rssi_dbm"](h)
            dur = _COLUMN_MATERIALIZERS["duration_us"](h)
            truth = _COLUMN_MATERIALIZERS["truth_txid"](h)
            cls = TraceRecord
            new = cls.__new__
            for i in range(n):
                start = offsets[i] + hsize
                r = new(cls)
                r.__dict__ = {
                    "radio_id": radio[i],
                    "timestamp_us": ts[i],
                    "kind": kind_of[kind_vals[i]],
                    "channel": chan[i],
                    "rate_mbps": rate[i],
                    "rssi_dbm": rssi[i],
                    "frame_len": flen[i],
                    "fcs": fcs[i],
                    "snap": buffer[start : start + snap_lens[i]],
                    "duration_us": dur[i],
                    "truth_txid": truth[i],
                }
                append(r)
        return RecordBatch(records, ts_sorted)
