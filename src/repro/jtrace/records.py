"""Trace records — the jigdump analogue.

Each monitor radio produces a stream of :class:`TraceRecord`: one per
physical event it observed.  Mirroring the modified MadWifi driver of
Section 3.3, the stream includes not just valid frames but "all available
physical layer events, including corrupted frames and physical errors", and
payloads are snapped to 200 bytes (Section 5).

``truth_txid`` carries the simulator's ground-truth transmission id.  The
real system has no such field — it exists so the evaluation can score
Jigsaw's output against an oracle, and the Jigsaw pipeline itself is
forbidden from reading it (enforced by convention and exercised by tests
that scramble it).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from ..dot11.constants import CAPTURE_SNAP_BYTES


class RecordKind(enum.Enum):
    VALID = 1        # FCS-good frame capture
    CORRUPT = 2      # frame capture with FCS failure (CRC error)
    PHY_ERROR = 3    # energy detected, no frame lock

    @property
    def has_frame(self) -> bool:
        return self is not RecordKind.PHY_ERROR


@dataclass(frozen=True)
class TraceRecord:
    """One captured physical event at one radio."""

    radio_id: int
    timestamp_us: int            # local clock, integer microseconds
    kind: RecordKind
    channel: int
    rate_mbps: float
    rssi_dbm: float
    frame_len: int               # full on-air length, bytes
    fcs: int                     # FCS field as captured (32 bits)
    snap: bytes                  # frame bytes, truncated to the snap length
    duration_us: int             # airtime occupied by this event
    truth_txid: int = 0          # simulator oracle only — never read by Jigsaw

    def __post_init__(self) -> None:
        if len(self.snap) > CAPTURE_SNAP_BYTES + 64:
            raise ValueError("snap exceeds capture limit")
        if self.kind is RecordKind.PHY_ERROR and self.snap:
            raise ValueError("PHY error records carry no frame bytes")

    @property
    def is_valid_frame(self) -> bool:
        return self.kind is RecordKind.VALID


_HEADER = struct.Struct("<HqBBHhHIIHq")
# radio_id, timestamp, kind, channel, rate*10, rssi, frame_len, fcs,
# reserved(truth high bits live in the trailing q), snap_len, truth_txid

#: Valid ``kind`` byte values — the first thing corruption tends to break.
_VALID_KINDS = frozenset(kind.value for kind in RecordKind)

#: Plausibility bounds for :func:`probe_record_header`.  The snap bound is
#: the :class:`TraceRecord` constructor's own limit; frame length and rate
#: are generous envelopes over anything 802.11 can put on the air.
_MAX_PLAUSIBLE_SNAP = CAPTURE_SNAP_BYTES + 64
_MAX_PLAUSIBLE_FRAME_LEN = 8192
_MAX_PLAUSIBLE_RATE_X10 = 6000


def probe_record_header(
    raw: bytes, offset: int = 0, min_timestamp_us: Optional[int] = None
) -> bool:
    """Cheap plausibility check: could a record header start at ``offset``?

    Used by the tolerant decoder to detect in-place corruption before
    trusting a header's ``snap_len`` framing, and to resynchronize to the
    next record boundary after damage.  The checks are structural (valid
    ``kind``, bounded snap/frame/rate fields, PHY errors carry no snap)
    plus local-time monotonicity when ``min_timestamp_us`` is given —
    capture files are written in local-time order, so a boundary whose
    timestamp runs backwards is a mis-framed candidate, not a record.

    Returns ``False`` when fewer than a full header's bytes are available.
    """
    if len(raw) - offset < _HEADER.size:
        return False
    (
        _radio_id,
        timestamp,
        kind,
        _channel,
        rate_x10,
        _rssi,
        frame_len,
        _fcs,
        _duration,
        snap_len,
        _truth,
    ) = _HEADER.unpack_from(raw, offset)
    if kind not in _VALID_KINDS:
        return False
    if snap_len > _MAX_PLAUSIBLE_SNAP:
        return False
    if kind == RecordKind.PHY_ERROR.value and snap_len:
        return False
    if frame_len > _MAX_PLAUSIBLE_FRAME_LEN:
        return False
    if rate_x10 > _MAX_PLAUSIBLE_RATE_X10:
        return False
    if min_timestamp_us is not None and timestamp < min_timestamp_us:
        return False
    return True


def header_timestamp_us(raw: bytes, offset: int = 0) -> int:
    """The local timestamp of the header at ``offset`` (caller-validated)."""
    return _HEADER.unpack_from(raw, offset)[1]


def record_to_bytes(record: TraceRecord) -> bytes:
    header = _HEADER.pack(
        record.radio_id,
        record.timestamp_us,
        record.kind.value,
        record.channel,
        int(round(record.rate_mbps * 10)),
        int(round(record.rssi_dbm)),
        record.frame_len,
        record.fcs,
        record.duration_us,
        len(record.snap),
        record.truth_txid,
    )
    return header + record.snap


def record_span(raw: bytes, offset: int = 0) -> Optional[int]:
    """Total encoded size of the record at ``offset``, or ``None``.

    Returns ``None`` when fewer than a full header's bytes are available —
    the streaming reader's signal to fetch another chunk before deciding
    whether the record is complete.
    """
    if len(raw) - offset < _HEADER.size:
        return None
    snap_len = _HEADER.unpack_from(raw, offset)[9]
    return _HEADER.size + snap_len


def record_from_bytes(raw: bytes, offset: int = 0) -> Tuple[TraceRecord, int]:
    """Decode one record; returns ``(record, next_offset)``."""
    if len(raw) - offset < _HEADER.size:
        raise ValueError("truncated record header")
    (
        radio_id,
        timestamp,
        kind,
        channel,
        rate_x10,
        rssi,
        frame_len,
        fcs,
        duration,
        snap_len,
        truth_txid,
    ) = _HEADER.unpack_from(raw, offset)
    start = offset + _HEADER.size
    end = start + snap_len
    if len(raw) < end:
        raise ValueError("truncated record payload")
    record = TraceRecord(
        radio_id=radio_id,
        timestamp_us=timestamp,
        kind=RecordKind(kind),
        channel=channel,
        rate_mbps=rate_x10 / 10.0,
        rssi_dbm=float(rssi),
        frame_len=frame_len,
        fcs=fcs,
        snap=raw[start:end],
        duration_us=duration,
        truth_txid=truth_txid,
    )
    return record, end
