"""Trace format substrate (the jigdump analogue)."""

from .io import (
    DecodeHealth,
    ErrorPolicy,
    RadioTrace,
    StreamingRadioTrace,
    iter_trace_records,
    open_trace_stream,
    open_trace_streams,
    read_trace,
    read_traces,
    write_trace,
    write_traces,
)
from .records import RecordKind, TraceRecord, record_from_bytes, record_to_bytes

__all__ = [
    "DecodeHealth",
    "ErrorPolicy",
    "RadioTrace",
    "StreamingRadioTrace",
    "iter_trace_records",
    "open_trace_stream",
    "open_trace_streams",
    "read_trace",
    "read_traces",
    "write_trace",
    "write_traces",
    "RecordKind",
    "TraceRecord",
    "record_from_bytes",
    "record_to_bytes",
]
