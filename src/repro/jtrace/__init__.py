"""Trace format substrate (the jigdump analogue)."""

from .io import RadioTrace, read_trace, read_traces, write_trace, write_traces
from .records import RecordKind, TraceRecord, record_from_bytes, record_to_bytes

__all__ = [
    "RadioTrace",
    "read_trace",
    "read_traces",
    "write_trace",
    "write_traces",
    "RecordKind",
    "TraceRecord",
    "record_from_bytes",
    "record_to_bytes",
]
