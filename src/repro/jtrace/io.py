"""Trace files: per-radio record streams with compression and an index.

jigdump "compresses them using the LZO algorithm to minimize storage and
I/O overhead ... and generates a metadata index record to facilitate
subsequent accesses.  Data and metadata are written to separate files"
(Section 3.3).  We use gzip (LZO is not in the stdlib; the role — cheap
stream compression — is identical) and a JSON sidecar index with record
counts and the local-time range.

Reading is streaming: :func:`iter_trace_records` context-manages the file
handle and decodes chunk by chunk in constant memory, so day-long traces
never materialize a decompressed byte blob.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from itertools import pairwise

from .records import (
    TraceRecord,
    record_from_bytes,
    record_span,
    record_to_bytes,
)

#: Chunk size for streaming decompression (1 MiB of decompressed bytes).
_READ_CHUNK_BYTES = 1 << 20


@dataclass
class RadioTrace:
    """All records captured by one radio, in local-time order."""

    radio_id: int
    channel: int
    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        return self.records[0].timestamp_us if self.records else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        return self.records[-1].timestamp_us if self.records else None

    def sorted_by_local_time(self) -> "RadioTrace":
        """This trace in local-timestamp order.

        Capture order and local-time order coincide for a monotonic clock,
        but tests construct traces by hand; the merge pipeline requires
        local-time order.  When the records are already ordered — the
        common case for real captures — the trace itself is returned, so
        building-scale pipelines stop copying every record list.  Callers
        that mutate the result must therefore copy explicitly.
        """
        records = self.records
        if all(a.timestamp_us <= b.timestamp_us for a, b in pairwise(records)):
            return self
        ordered = sorted(records, key=lambda r: r.timestamp_us)
        return RadioTrace(self.radio_id, self.channel, ordered)


def write_trace(trace: RadioTrace, directory: Path) -> Path:
    """Write one radio's trace (gzip data + JSON metadata sidecar)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / f"radio_{trace.radio_id:04d}.jtr.gz"
    with gzip.open(data_path, "wb") as fh:
        for record in trace.records:
            fh.write(record_to_bytes(record))
    meta = {
        "radio_id": trace.radio_id,
        "channel": trace.channel,
        "records": len(trace.records),
        "first_timestamp_us": trace.first_timestamp_us,
        "last_timestamp_us": trace.last_timestamp_us,
    }
    meta_path = directory / f"radio_{trace.radio_id:04d}.meta.json"
    meta_path.write_text(json.dumps(meta, indent=1))
    return data_path


def iter_trace_records(
    data_path: Path, chunk_bytes: int = _READ_CHUNK_BYTES
) -> Iterator[TraceRecord]:
    """Stream-decode records from a compressed trace file.

    The file handle is context-managed (no descriptor leak) and at most
    ``chunk_bytes`` of decompressed data plus one partial record is
    buffered at a time, so day-long traces decode in constant memory
    instead of materializing the whole decompressed stream.
    """
    with gzip.open(Path(data_path), "rb") as fh:
        buffer = b""
        offset = 0
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            buffer = buffer[offset:] + chunk
            offset = 0
            while True:
                span = record_span(buffer, offset)
                if span is None or offset + span > len(buffer):
                    break  # partial record: wait for the next chunk
                record, offset = record_from_bytes(buffer, offset)
                yield record
        if offset < len(buffer):
            raise ValueError(
                f"trailing truncated record ({len(buffer) - offset} bytes) "
                f"in {data_path}"
            )


def read_trace(data_path: Path) -> RadioTrace:
    """Read one radio's trace back from disk."""
    data_path = Path(data_path)
    meta_path = data_path.with_name(
        data_path.name.replace(".jtr.gz", ".meta.json")
    )
    meta = json.loads(meta_path.read_text())
    records = list(iter_trace_records(data_path))
    if len(records) != meta["records"]:
        raise ValueError(
            f"index mismatch: {len(records)} records vs {meta['records']} indexed"
        )
    return RadioTrace(meta["radio_id"], meta["channel"], records)


def write_traces(traces: Iterable[RadioTrace], directory: Path) -> List[Path]:
    return [write_trace(trace, directory) for trace in traces]


def read_traces(directory: Path) -> List[RadioTrace]:
    directory = Path(directory)
    return [
        read_trace(path) for path in sorted(directory.glob("radio_*.jtr.gz"))
    ]
