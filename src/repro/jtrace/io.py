"""Trace files: per-radio record streams with compression and an index.

jigdump "compresses them using the LZO algorithm to minimize storage and
I/O overhead ... and generates a metadata index record to facilitate
subsequent accesses.  Data and metadata are written to separate files"
(Section 3.3).  We use gzip (LZO is not in the stdlib; the role — cheap
stream compression — is identical) and a JSON sidecar index with record
counts and the local-time range.

Reading is streaming: :func:`iter_trace_records` context-manages the file
handle and decodes chunk by chunk in constant memory, so day-long traces
never materialize a decompressed byte blob.

Decoding is fault-tolerant on request.  Real day-scale captures get
damaged — a radio loses power mid-record, a disk sector corrupts, a gzip
stream is cut — and a ~190-radio merge must not abort because one vantage
point is imperfect.  Every reader accepts an :class:`ErrorPolicy`:

* ``strict`` (default) — any damage raises ``ValueError``, exactly the
  historical behavior;
* ``skip`` — corrupt or truncated records are skipped: the decoder
  resynchronizes to the next plausible record boundary (structural header
  probe plus a successor-header confirmation), keeps decoding, and counts
  what it lost in a :class:`DecodeHealth`;
* ``drop-trace`` — a damaged trace contributes nothing: the first decode
  error discards the whole trace (counted in the health), so one rotten
  capture cannot pollute a run that wants only pristine inputs.

Clean files decode byte-identically under every policy.
"""

from __future__ import annotations

import base64
import enum
import gzip
import json
import os
import queue
import struct
import threading
import zlib
from bisect import bisect_right
from dataclasses import dataclass, field, fields
from itertools import islice, pairwise
from pathlib import Path
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union, cast

from .records import (
    BATCH_DECODE_AVAILABLE,
    FramedRun,
    FramingHint,
    RecordBatch,
    TraceRecord,
    _HEADER,
    batch_from_records,
    header_timestamp_us,
    probe_record_header,
    record_from_bytes,
    record_span,
    record_to_bytes,
)

#: Chunk size for streaming decompression (1 MiB of decompressed bytes).
_READ_CHUNK_BYTES = 1 << 20

#: Decoded batches a decode-ahead reader thread keeps ready for the
#: consumer.  Each batch is at most one decompression chunk of records,
#: so the prefetch window is bounded in bytes, not record counts.
DECODE_AHEAD_DEPTH = 2


class ErrorPolicy(str, enum.Enum):
    """What a trace reader does when it meets damaged bytes."""

    STRICT = "strict"
    SKIP = "skip"
    DROP_TRACE = "drop-trace"


#: Accepted spellings for reader ``policy`` arguments.
PolicyLike = Union[ErrorPolicy, str]


@dataclass
class DecodeHealth:
    """What tolerant decoding observed (and lost) on one or more traces.

    ``records_skipped`` counts *resynchronization events*: each is one
    stretch of damaged bytes hiding at least one record.  ``bytes_resynced``
    is the exact number of bytes scanned past while hunting for the next
    record boundary, so the two together bound the loss from both sides.
    """

    records_decoded: int = 0
    records_skipped: int = 0
    bytes_resynced: int = 0
    truncated_tails: int = 0
    truncated_tail_bytes: int = 0
    stream_errors: int = 0
    traces_dropped: int = 0

    def merge(self, other: "DecodeHealth") -> None:
        """Fold another trace's counters into this aggregate."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def clean(self) -> bool:
        """True when decoding saw no damage at all."""
        return not (
            self.records_skipped
            or self.bytes_resynced
            or self.truncated_tails
            or self.stream_errors
            or self.traces_dropped
        )

    def summary(self) -> str:
        return (
            f"decoded={self.records_decoded} skipped={self.records_skipped} "
            f"resynced_bytes={self.bytes_resynced} "
            f"truncated_tails={self.truncated_tails} "
            f"tail_bytes={self.truncated_tail_bytes} "
            f"stream_errors={self.stream_errors} "
            f"dropped_traces={self.traces_dropped}"
        )


def _meta_path(data_path: Path) -> Path:
    """The JSON index sidecar belonging to a trace data file."""
    return data_path.with_name(data_path.name.replace(".jtr.gz", ".meta.json"))


def _framing_hint_from_meta(
    meta: dict, vectorized: Optional[bool]
) -> Optional[FramingHint]:
    """The sidecar's record-boundary table, when the batch engine runs.

    Older sidecars (no ``snap_lens_b64``) and the scalar engine get
    ``None``; the batch framing scan then runs unassisted, exactly as
    before the index existed.
    """
    use_batch = BATCH_DECODE_AVAILABLE if vectorized is None else vectorized
    packed = meta.get("snap_lens_b64")
    if not use_batch or packed is None:
        return None
    return FramingHint.from_packed(base64.b64decode(packed))


@dataclass
class RadioTrace:
    """All records captured by one radio, in local-time order."""

    radio_id: int
    channel: int
    records: List[TraceRecord] = field(default_factory=list)
    #: Locality stamp for hierarchical sharding: the building (or pod
    #: group) this radio was deployed in.  ``None`` means "unknown" —
    #: legacy traces without the stamp partition by channel only.
    building_id: Optional[int] = None

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        return self.records[0].timestamp_us if self.records else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        return self.records[-1].timestamp_us if self.records else None

    def sorted_by_local_time(self) -> "RadioTrace":
        """This trace in local-timestamp order.

        Capture order and local-time order coincide for a monotonic clock,
        but tests construct traces by hand; the merge pipeline requires
        local-time order.  When the records are already ordered — the
        common case for real captures — the trace itself is returned, so
        building-scale pipelines stop copying every record list.  Callers
        that mutate the result must therefore copy explicitly.
        """
        records = self.records
        if all(a.timestamp_us <= b.timestamp_us for a, b in pairwise(records)):
            return self
        ordered = sorted(records, key=lambda r: r.timestamp_us)
        return RadioTrace(
            self.radio_id, self.channel, ordered, building_id=self.building_id
        )


class StreamingRadioTrace:
    """A radio trace that decodes its record stream lazily — and only once.

    Duck-typed against :class:`RadioTrace` (``radio_id``, ``channel``,
    ``records``, iteration, ``first_timestamp_us``,
    ``sorted_by_local_time``), but the records come from a one-shot
    source iterator (typically :func:`iter_trace_records` streaming off a
    compressed file) through an internal tee: every record pulled is
    buffered, so early consumers — the bootstrap prepass examining the
    first second — read just the prefix they need, and later consumers
    replay that buffer before continuing the same underlying read.  The
    file is decoded exactly once no matter how many phases consume it.

    * :meth:`buffered_until` — pull (and buffer) records up to a
      local-time limit; the bootstrap window feed, including auto-widen
      rounds, costs only the prefix decode.
    * ``.records`` — drain the remainder and return the full list; from
      then on the trace behaves exactly like a materialized
      :class:`RadioTrace`.

    Local-time ordering is validated during the single read (replacing
    the separate full-trace scan ``sorted_by_local_time`` performs on
    materialized traces).  Disorder encountered *before* any prefix has
    been handed out downgrades to a full drain + sort (the same silent
    semantics ``sorted_by_local_time`` gives materialized traces).
    Disorder discovered *after* a consumer has gated on a prefix —
    a record sorting into a window the bootstrap already examined —
    raises ``ValueError`` instead: the single-read prepass cannot be
    retroactively corrected, and a loud failure beats silently diverging
    from the materialized path.  Real capture files are written in
    local-time order; unordered inputs should go through
    :func:`read_trace` / :meth:`RadioTrace.sorted_by_local_time`.
    """

    def __init__(
        self,
        radio_id: int,
        channel: int,
        source: Optional[Iterable[TraceRecord]] = None,
        decode_health: Optional[DecodeHealth] = None,
        *,
        batch_source: Optional[Iterable[RecordBatch]] = None,
        channel_set: Optional[FrozenSet[int]] = None,
        building_id: Optional[int] = None,
    ) -> None:
        if (source is None) == (batch_source is None):
            raise ValueError(
                "exactly one of source= (records) or batch_source= "
                "(decoded batches) must be provided"
            )
        self.radio_id = radio_id
        self.channel = channel
        #: Locality stamp from the metadata sidecar (None = unknown).
        self.building_id = building_id
        #: Channels the writer's index sidecar declared for this trace
        #: (None when unknown).  Lets channel partitioning run off the
        #: metadata instead of forcing a full decode.
        self.channel_set = channel_set
        #: Populated as the source decodes (fully accurate once drained).
        self.decode_health = (
            decode_health if decode_health is not None else DecodeHealth()
        )
        self._source: Optional[Iterator[TraceRecord]] = (
            iter(source) if source is not None else None
        )
        self._batches: Optional[Iterator[RecordBatch]] = (
            iter(batch_source) if batch_source is not None else None
        )
        # Kept so close() can reach a decode-ahead reader even after the
        # iterator slot was cleared at exhaustion.
        self._batch_origin: Optional[Iterable[RecordBatch]] = batch_source
        self._buffer: List[TraceRecord] = []
        self._last_ts: Optional[int] = None
        self._ordered = True
        self._prefix_consumed = False

    def _pull(self) -> Optional[TraceRecord]:
        if self._source is None:
            return None
        record = next(self._source, None)
        if record is None:
            self._source = None
            return None
        ts = record.timestamp_us
        if self._last_ts is not None and ts < self._last_ts:
            self._ordered = False
        self._last_ts = ts
        self._buffer.append(record)
        return record

    def _pull_some(self) -> int:
        """Extend the replay buffer by one pull; returns records gained.

        Record sources advance one record at a time (simulated sources
        stay lazily coupled to the kernel); batch sources advance one
        decoded batch at a time, validating order per batch plus one
        boundary comparison instead of per record.
        """
        if self._batches is not None:
            while True:
                batch = next(self._batches, None)
                if batch is None:
                    self._batches = None
                    return 0
                records = batch.records
                if records:
                    break
            if (
                self._last_ts is not None
                and records[0].timestamp_us < self._last_ts
            ):
                self._ordered = False
            if not batch.ts_sorted:
                self._ordered = False
            self._last_ts = records[-1].timestamp_us
            self._buffer.extend(records)
            return len(records)
        return 0 if self._pull() is None else 1

    def ensure_index(self, index: int) -> bool:
        """Pull until the replay buffer holds ``index``; False at EOF.

        The streaming merge consumes traces through this cursor-style
        accessor so decoding stays incremental — the buffer only ever
        extends, so indices handed out earlier remain valid.  Consuming
        by index gates on local-time order exactly like a window prefix
        does: records already fed to the merge cannot be re-sorted, so
        disorder discovered here raises instead of silently sorting.
        """
        self._prefix_consumed = True
        buffer = self._buffer
        while index >= len(buffer):
            if self._pull_some() == 0:
                return False
            if not self._ordered:
                raise ValueError(self._unordered_message())
        return True

    def _unordered_message(self) -> str:
        return (
            f"trace for radio {self.radio_id} is not in "
            "local-time order and its window prefix was already "
            "consumed by the single-read bootstrap; materialize "
            "it with read_trace()/sorted_by_local_time() instead"
        )

    def buffered_until(self, limit_us: int) -> Tuple[List[TraceRecord], int]:
        """Records with ``timestamp_us <= limit_us``, decoding on demand.

        Returns ``(buffer, hi)`` where ``buffer[:hi]`` is the prefix
        within the limit; record sources decode at most one record
        beyond the limit (the cursor for the next call or the eventual
        drain), batch sources at most one batch beyond it.
        """
        if (
            (self._source is None and self._batches is None)
            or not self._ordered
        ):
            records = self.records
            hi = bisect_right(records, limit_us, key=lambda r: r.timestamp_us)
            self._prefix_consumed = True
            return records, hi
        buffer = self._buffer
        while not buffer or buffer[-1].timestamp_us <= limit_us:
            if self._pull_some() == 0:
                if not self._ordered:
                    return self.buffered_until(limit_us)
                self._prefix_consumed = True
                return buffer, len(buffer)
        if not self._ordered:
            return self.buffered_until(limit_us)
        self._prefix_consumed = True
        return buffer, bisect_right(
            buffer, limit_us, key=lambda r: r.timestamp_us
        )

    @property
    def replay_buffer(self) -> List[TraceRecord]:
        """The decoded-so-far prefix, extended in place by the cursor.

        Callers pairing this with :meth:`ensure_index` must treat it as
        append-only: the same list object is returned every time, so an
        index proven present once stays valid for the trace's lifetime.
        """
        return self._buffer

    @property
    def records(self) -> List[TraceRecord]:
        """Drain the source (first access only) and return every record."""
        if self._batches is not None:
            while self._pull_some():
                continue  # ordering is validated per batch as it lands
        source = self._source
        if source is not None:
            # Bulk drain at C speed, then validate ordering from the last
            # prefix record onward (the prefix was validated as it was
            # pulled) — the same one-scan cost a materialized trace pays
            # in ``sorted_by_local_time``.
            buffer = self._buffer
            validate_from = max(len(buffer) - 1, 0)
            buffer.extend(source)
            self._source = None
            if buffer:
                self._last_ts = buffer[-1].timestamp_us
            if self._ordered and any(
                a.timestamp_us > b.timestamp_us
                for a, b in pairwise(islice(buffer, validate_from, None))
            ):
                self._ordered = False
        if not self._ordered:
            if self._prefix_consumed:
                # A window prefix was already handed to the bootstrap,
                # gated on the ordering this record violates; sorting now
                # would silently shift records into or out of windows the
                # prepass already examined.
                raise ValueError(
                    f"trace for radio {self.radio_id} is not in "
                    "local-time order and its window prefix was already "
                    "consumed by the single-read bootstrap; materialize "
                    "it with read_trace()/sorted_by_local_time() instead"
                )
            self._buffer.sort(key=lambda r: r.timestamp_us)
            self._ordered = True
        return self._buffer

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        buffer = self._buffer
        if not buffer and self._pull_some() == 0:
            return None
        return self._buffer[0].timestamp_us if self._buffer else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        records = self.records
        return records[-1].timestamp_us if records else None

    def sorted_by_local_time(self) -> "StreamingRadioTrace":
        """Self, with ordering guaranteed by the drain-time validation."""
        self.records
        return self

    def close(self) -> None:
        """Release the decode source; joins any decode-ahead thread.

        Idempotent.  The replay buffer stays readable — only the
        (possibly threaded) source is torn down, so a closed trace can
        still serve every record it already decoded.
        """
        for source in (self._batches, self._batch_origin, self._source):
            closer = getattr(source, "close", None)
            if closer is not None:
                closer()
        self._batches = None
        self._batch_origin = None
        self._source = None

    def __enter__(self) -> "StreamingRadioTrace":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class _ReaderDone:
    """Queue sentinel: the decode-ahead worker finished its stream."""


_READER_END = _ReaderDone()


class _DecodeAheadReader:
    """Decode-ahead pipelining: a reader thread runs the batch decoder
    up to ``depth`` batches ahead of the consumer.

    Decompression (which releases the GIL) and batch decode overlap
    with the merge consuming earlier batches.  The queue is bounded, so
    an unconsumed trace never decodes more than ``depth`` chunks ahead;
    exceptions from the decoder (including strict-policy damage) are
    forwarded and re-raised at the consumer's next pull, preserving the
    synchronous error contract.  The worker is a daemon and also honors
    a stop flag, so abandoning the iterator cannot leak a live decode.
    """

    def __init__(
        self, batches: Iterator[RecordBatch], depth: int, name: str
    ) -> None:
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=max(1, depth))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._work, args=(batches,), name=name, daemon=True
        )
        self._thread.start()

    def _put(self, item: object) -> bool:
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue  # re-check the stop flag, then retry
        return False

    def _work(self, batches: Iterator[RecordBatch]) -> None:
        try:
            for batch in batches:
                if not self._put(batch):
                    return
            self._put(_READER_END)
        except BaseException as exc:  # forwarded to the consuming thread
            self._put(exc)

    def __iter__(self) -> Iterator[RecordBatch]:
        return self

    def __next__(self) -> RecordBatch:
        if self._stop.is_set():
            raise StopIteration
        item = self._queue.get()
        if isinstance(item, _ReaderDone):
            self._stop.set()
            raise StopIteration
        if isinstance(item, BaseException):
            self._stop.set()
            raise item
        return cast(RecordBatch, item)

    def close(self) -> None:
        """Stop the worker and join it; idempotent.

        Setting the stop flag alone leaves the worker parked in its
        bounded ``put`` retry loop for up to one timeout interval;
        draining one queue slot unblocks it immediately so the join
        returns promptly.  Joining matters for long-lived processes
        (the service daemon opens and closes many traces): a merely
        flagged thread still holds its decoder state alive until the
        scheduler lets it notice the flag.
        """
        self._stop.set()
        try:
            self._queue.get_nowait()
        except queue.Empty:  # repro: ignore[error-policy]
            pass  # nothing buffered means nothing to unblock; no data lost
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __del__(self) -> None:
        self._stop.set()


def open_trace_stream(
    data_path: Path,
    policy: PolicyLike = ErrorPolicy.STRICT,
    *,
    vectorized: Optional[bool] = None,
    decode_ahead: Optional[int] = None,
    chunk_bytes: int = _READ_CHUNK_BYTES,
) -> StreamingRadioTrace:
    """Open one radio's trace for lazy, single-read consumption.

    Identity (radio id, channel) comes from the metadata sidecar; records
    decode on demand through the replay tee, so a pipeline run reads the
    compressed file exactly once — the bootstrap prepass pulls only its
    examination window before unification picks up the buffer.

    ``vectorized`` selects the decode engine (None = batch when numpy
    is available); ``decode_ahead`` is how many decoded batches a
    per-trace reader thread keeps ready ahead of the consumer (None =
    :data:`DECODE_AHEAD_DEPTH` on the batch path when a second CPU is
    available to run the reader, else ``0``; ``0`` disables the thread
    and decodes inline).

    Damage handling follows ``policy``; what tolerant decoding skipped is
    tallied on the stream's ``decode_health`` as the source is consumed
    (fully accurate once the trace is drained).  ``drop-trace`` decodes
    eagerly — a lazily-dropped trace would vanish halfway through the
    merge — so a damaged file becomes an empty stream up front and the
    radio is simply absent from the run.
    """
    data_path = Path(data_path)
    policy = ErrorPolicy(policy)
    meta = json.loads(_meta_path(data_path).read_text())
    framing_hint = _framing_hint_from_meta(meta, vectorized)
    decode_health = DecodeHealth()
    channels = meta.get("channels")
    channel_set = frozenset(channels) if channels is not None else None
    batch_source: Iterable[RecordBatch]
    if policy is ErrorPolicy.DROP_TRACE:
        try:
            batch_source = list(
                iter_record_batches(
                    data_path,
                    chunk_bytes=chunk_bytes,
                    policy=policy,
                    health=decode_health,
                    vectorized=vectorized,
                    framing_hint=framing_hint,
                )
            )
        except _TraceDamage:
            batch_source = []
            decode_health.traces_dropped += 1
    else:
        batches: Iterator[RecordBatch] = iter_record_batches(
            data_path,
            chunk_bytes=chunk_bytes,
            policy=policy,
            health=decode_health,
            vectorized=vectorized,
            framing_hint=framing_hint,
        )
        if decode_ahead is None:
            batch_engine = (
                BATCH_DECODE_AVAILABLE if vectorized is None else vectorized
            )
            # Decode-ahead overlaps decompression with the merge only
            # when there is a second core to run it on; on a single-CPU
            # host the reader threads just add scheduling contention.
            decode_ahead = (
                DECODE_AHEAD_DEPTH
                if batch_engine and (os.cpu_count() or 1) > 1
                else 0
            )
        if decode_ahead:
            batches = _DecodeAheadReader(
                batches, decode_ahead, name=f"decode-ahead:{data_path.name}"
            )
        batch_source = batches
    return StreamingRadioTrace(
        meta["radio_id"],
        meta["channel"],
        decode_health=decode_health,
        batch_source=batch_source,
        channel_set=channel_set,
        building_id=meta.get("building_id"),
    )


def open_trace_streams(
    directory: Path,
    policy: PolicyLike = ErrorPolicy.STRICT,
    *,
    vectorized: Optional[bool] = None,
    decode_ahead: Optional[int] = None,
    chunk_bytes: int = _READ_CHUNK_BYTES,
) -> List[StreamingRadioTrace]:
    """Lazily open every trace in a directory (sorted by radio id)."""
    directory = Path(directory)
    return [
        open_trace_stream(
            path,
            policy=policy,
            vectorized=vectorized,
            decode_ahead=decode_ahead,
            chunk_bytes=chunk_bytes,
        )
        for path in sorted(directory.glob("radio_*.jtr.gz"))
    ]


def write_trace(trace: RadioTrace, directory: Path) -> Path:
    """Write one radio's trace (gzip data + JSON metadata sidecar)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / f"radio_{trace.radio_id:04d}.jtr.gz"
    with gzip.open(data_path, "wb") as fh:
        for record in trace.records:
            fh.write(record_to_bytes(record))
    snap_lens = [len(record.snap) for record in trace.records]
    meta = {
        "radio_id": trace.radio_id,
        "channel": trace.channel,
        # Locality stamp (absent/None on single-building captures): lets
        # the hierarchical shard planner group file-backed traces by
        # building from the sidecar alone.
        "building_id": trace.building_id,
        "records": len(trace.records),
        "first_timestamp_us": trace.first_timestamp_us,
        "last_timestamp_us": trace.last_timestamp_us,
        # Channel index: every channel any record was captured on, so
        # channel-shard partitioning can group file-backed traces from
        # the sidecar alone instead of decoding every record first.
        "channels": sorted({record.channel for record in trace.records}),
        # Framing index: every record's snap_len, packed little-endian
        # u16.  The batch decoder rebuilds record boundaries from this
        # and byte-verifies them against the data stream
        # (:class:`FramingHint`), replacing its serial framing scan; a
        # stale or damaged index degrades to the scan, never to wrong
        # framing.
        "snap_lens_b64": base64.b64encode(
            struct.pack(f"<{len(snap_lens)}H", *snap_lens)
        ).decode("ascii"),
    }
    _meta_path(data_path).write_text(json.dumps(meta, indent=1))
    return data_path


def _scan_boundary(
    buffer: bytes, offset: int, last_ts: Optional[int], at_eof: bool
) -> Tuple[int, bool]:
    """Find the next plausible record boundary at or after ``offset``.

    Returns ``(position, confirmed)``.  ``confirmed`` means a structurally
    plausible record starts at ``position`` *and* is corroborated — its
    successor header also probes plausible, or the record ends exactly at
    a completed stream.  Unconfirmed means scanning must resume at
    ``position`` once more data arrives (bytes before it are definitively
    not boundaries).
    """
    size = _HEADER.size
    n = len(buffer)
    p = offset
    while p + size <= n:
        if probe_record_header(buffer, p, last_ts):
            span = record_span(buffer, p)
            end = p + span
            if end + size <= n:
                if probe_record_header(buffer, end, header_timestamp_us(buffer, p)):
                    return p, True
                # Mis-framed candidate (its successor is implausible):
                # keep scanning.
            elif at_eof:
                if end <= n:
                    return p, True
                # Candidate runs past the truncated tail: not a record.
            else:
                return p, False  # plausible, but needs more data to confirm
        p += 1
    return p, False


def _strict_chunks(data_path: Path, chunk_bytes: int) -> Iterator[bytes]:
    """Decompressed chunks via ``gzip``; damage raises ``ValueError``."""
    with gzip.open(data_path, "rb") as fh:
        while True:
            try:
                chunk = fh.read(chunk_bytes)
            except (EOFError, OSError, zlib.error) as exc:
                raise ValueError(
                    f"corrupt or truncated compressed stream in "
                    f"{data_path}: {exc}"
                ) from exc
            if not chunk:
                return
            yield chunk


def _tolerant_chunks(
    data_path: Path,
    chunk_bytes: int,
    policy: ErrorPolicy,
    health: DecodeHealth,
) -> Iterator[bytes]:
    """Decompressed chunks that salvage everything before stream damage.

    ``gzip.GzipFile.read`` discards whatever one call decompressed before
    hitting a truncation or CRC error, so the tolerant path drives
    ``zlib.decompressobj`` directly: every byte successfully inflated is
    yielded before the error is reported.  Damage counts one
    ``stream_errors`` (or drops the trace under ``drop-trace``) and ends
    the stream — the record-level decoder then treats what it has as a
    truncated capture.
    """
    obj = zlib.decompressobj(wbits=47)  # auto-detect gzip/zlib headers
    fed = False
    with open(data_path, "rb") as fh:
        while True:
            comp = fh.read(chunk_bytes)
            if not comp:
                break
            fed = True
            while comp:
                try:
                    out = obj.decompress(comp)
                except zlib.error as exc:
                    if policy is ErrorPolicy.DROP_TRACE:
                        raise _TraceDamage(data_path) from exc
                    health.stream_errors += 1
                    return
                if out:
                    yield out
                comp = b""
                if obj.eof and obj.unused_data:
                    # Concatenated gzip members: restart on the remainder.
                    comp = obj.unused_data
                    obj = zlib.decompressobj(wbits=47)
    tail = obj.flush()
    if tail:
        yield tail
    if fed and not obj.eof:
        # The file ended before the compressed stream did (capture cut).
        if policy is ErrorPolicy.DROP_TRACE:
            raise _TraceDamage(data_path)
        health.stream_errors += 1


def iter_record_batches(
    data_path: Path,
    chunk_bytes: int = _READ_CHUNK_BYTES,
    policy: PolicyLike = ErrorPolicy.STRICT,
    health: Optional[DecodeHealth] = None,
    vectorized: Optional[bool] = None,
    framing_hint: Optional[FramingHint] = None,
) -> Iterator[RecordBatch]:
    """Stream-decode a compressed trace file as batches of records.

    The file handle is context-managed (no descriptor leak) and at most
    ``chunk_bytes`` of decompressed data plus one partial record is
    buffered at a time, so day-long traces decode in constant memory
    instead of materializing the whole decompressed stream.

    ``vectorized=None`` (the default) uses the batch engine when numpy
    is available: complete records are framed per chunk, their headers
    gathered into one structured array, validated with vectorized
    predicates, and materialized column-wise (see
    :class:`~repro.jtrace.records.FramedRun`).  ``vectorized=False``
    forces the scalar per-record engine (the reference path the parity
    suites compare against).  Both engines produce identical records,
    identical :class:`DecodeHealth` ledgers, and raise identical errors
    at identical stream positions.

    ``policy`` selects damage handling (see :class:`ErrorPolicy`).  Under
    ``skip``, a corrupt record triggers resynchronization: the batch
    fast path hands over to the scalar prober at the damaged offset,
    the prober scans forward for the next byte offset at which a
    structurally plausible header starts *and* its successor header is
    also plausible (or the record ends a completed stream), counts the
    skipped bytes in ``health``, and the batch path re-enters at the
    confirmed boundary.  A capture cut mid-record — radio power loss,
    or a gzip stream truncated before its end marker — yields every
    complete record and reports the partial tail via the health
    counters instead of raising mid-iteration.  ``drop-trace`` stops at
    the first damage and re-raises a sentinel the trace-level readers
    use to discard the whole trace.  Clean files decode identically
    under every policy.

    ``framing_hint`` (batch engine only) is the sidecar's record
    boundary table: the framing scan fast-forwards over the prefix it
    can byte-verify and finishes serially from the verified frontier,
    so hinted decode output is identical on every input — the hint only
    removes the serial ``snap_len``-hop walk on clean streams.
    """
    policy = ErrorPolicy(policy)
    if health is None:
        health = DecodeHealth()
    if vectorized is None:
        use_batch = BATCH_DECODE_AVAILABLE
    else:
        use_batch = bool(vectorized)
        if use_batch and not BATCH_DECODE_AVAILABLE:
            raise RuntimeError(
                "vectorized decode requested but numpy is unavailable"
            )
    data_path = Path(data_path)
    strict = policy is ErrorPolicy.STRICT

    if strict:
        chunk_iter: Iterator[bytes] = _strict_chunks(data_path, chunk_bytes)
    else:
        chunk_iter = _tolerant_chunks(data_path, chunk_bytes, policy, health)

    buffer = b""
    offset = 0
    stream_base = 0  # absolute decompressed-stream position of buffer[0]
    last_ts: Optional[int] = None
    syncing = False
    at_eof = False
    while not at_eof:
        chunk = next(chunk_iter, b"")
        at_eof = not chunk
        buffer = buffer[offset:] + chunk
        stream_base += offset
        offset = 0
        while True:
            if syncing:
                pos, confirmed = _scan_boundary(
                    buffer, offset, last_ts, at_eof
                )
                health.bytes_resynced += pos - offset
                offset = pos
                if not confirmed:
                    break  # need more data (or: tail handled below)
                syncing = False
            if use_batch:
                # Batch fast path: frame every complete record, validate
                # vectorized, decode the clean prefix in one go.
                run = FramedRun(buffer, offset, framing_hint, stream_base)
                total = len(run.offsets)
                if total:
                    if strict:
                        bad = run.strict_violation()
                    else:
                        prefix = run.plausible_prefix(last_ts)
                        bad = None if prefix == total else prefix
                    count = total if bad is None else bad
                    if count:
                        batch = run.decode(count)
                        health.records_decoded += count
                        last_batch_ts = batch.last_timestamp_us
                        if last_batch_ts is not None:
                            last_ts = last_batch_ts
                        offset = (
                            run.offsets[count]
                            if count < total
                            else run.next_offset
                        )
                        yield batch
                    if bad is not None:
                        offset = run.offsets[bad]
                        if strict:
                            # Scalar re-decode of the rejected record so
                            # the exception matches the scalar engine's.
                            record_from_bytes(buffer, offset)
                            raise AssertionError(
                                "batch validation rejected a record the "
                                "scalar decoder accepts"
                            )
                        if policy is ErrorPolicy.DROP_TRACE:
                            raise _TraceDamage(data_path)
                        health.records_skipped += 1
                        syncing = True
                        continue
                if strict:
                    break  # every complete record framed; wait for data
            elif strict:
                span = record_span(buffer, offset)
                if span is None or offset + span > len(buffer):
                    break  # partial record: wait for the next chunk
                record, offset = record_from_bytes(buffer, offset)
                health.records_decoded += 1
                yield batch_from_records([record])
                continue
            # Tolerant remainder: probe before trusting the header
            # framing, so a corrupted snap_len cannot stall the stream,
            # and enforce local-time order (capture files are written in
            # order; a backwards timestamp is damage, and letting it
            # through would poison the single-read merge downstream).
            # On the batch path only damaged or incomplete bytes reach
            # this point — clean complete records were consumed above.
            if len(buffer) - offset < _HEADER.size:
                break  # partial header: wait for the next chunk
            if not probe_record_header(buffer, offset, last_ts):
                if policy is ErrorPolicy.DROP_TRACE:
                    raise _TraceDamage(data_path)
                health.records_skipped += 1
                syncing = True
                continue
            span = record_span(buffer, offset)
            if span is None or offset + span > len(buffer):
                # Partial record: wait for the next chunk — or, at EOF,
                # a plausible header whose stream ends mid-record: the
                # truncated tail, handled below.
                break
            try:
                record, offset = record_from_bytes(buffer, offset)
            except ValueError:
                if policy is ErrorPolicy.DROP_TRACE:
                    raise _TraceDamage(data_path)
                health.records_skipped += 1
                syncing = True
                continue
            health.records_decoded += 1
            last_ts = record.timestamp_us
            # Record-at-a-time yields keep the scalar engine's historical
            # pull granularity (a bootstrap prefix decodes only what it
            # inspects); the batch engine never reaches this decode — its
            # framing consumes every complete record above.
            yield batch_from_records([record])
    remainder = len(buffer) - offset
    if remainder:
        if strict:
            raise ValueError(
                f"trailing truncated record ({remainder} bytes) "
                f"in {data_path}"
            )
        if policy is ErrorPolicy.DROP_TRACE:
            raise _TraceDamage(data_path)
        if syncing:
            # Damage ran into the end of the stream: the remnant is
            # part of the resynchronization loss, not a clean tail.
            health.bytes_resynced += remainder
        else:
            health.truncated_tails += 1
            health.truncated_tail_bytes += remainder


def iter_trace_records(
    data_path: Path,
    chunk_bytes: int = _READ_CHUNK_BYTES,
    policy: PolicyLike = ErrorPolicy.STRICT,
    health: Optional[DecodeHealth] = None,
    vectorized: Optional[bool] = None,
    framing_hint: Optional[FramingHint] = None,
) -> Iterator[TraceRecord]:
    """Stream-decode records from a compressed trace file.

    A flattening wrapper over :func:`iter_record_batches` — same
    engines, same policies, same errors; see there for the contract.
    """
    for batch in iter_record_batches(
        data_path,
        chunk_bytes,
        policy=policy,
        health=health,
        vectorized=vectorized,
        framing_hint=framing_hint,
    ):
        yield from batch.records


class _TraceDamage(Exception):
    """Internal sentinel: ``drop-trace`` policy met damaged bytes."""

    def __init__(self, data_path: Path) -> None:
        self.data_path = data_path
        super().__init__(f"damaged trace dropped: {data_path}")


def read_trace(
    data_path: Path,
    policy: PolicyLike = ErrorPolicy.STRICT,
    health: Optional[DecodeHealth] = None,
    *,
    vectorized: Optional[bool] = None,
) -> RadioTrace:
    """Read one radio's trace back from disk.

    The index-count cross-check against the metadata sidecar only applies
    under ``strict`` — tolerant policies expect to decode fewer records
    than the index promises, and report the difference through ``health``
    (and the returned trace's ``decode_health`` attribute) instead.
    Under ``drop-trace`` a damaged file yields an empty trace.
    ``vectorized`` selects the decode engine as in
    :func:`iter_trace_records`.
    """
    data_path = Path(data_path)
    policy = ErrorPolicy(policy)
    meta = json.loads(_meta_path(data_path).read_text())
    trace_health = DecodeHealth()
    try:
        records = list(
            iter_trace_records(
                data_path,
                policy=policy,
                health=trace_health,
                vectorized=vectorized,
                framing_hint=_framing_hint_from_meta(meta, vectorized),
            )
        )
    except _TraceDamage:
        records = []
        trace_health.traces_dropped += 1
    if policy is ErrorPolicy.STRICT and len(records) != meta["records"]:
        raise ValueError(
            f"index mismatch: {len(records)} records vs {meta['records']} indexed"
        )
    if health is not None:
        health.merge(trace_health)
    trace = RadioTrace(
        meta["radio_id"],
        meta["channel"],
        records,
        building_id=meta.get("building_id"),
    )
    trace.decode_health = trace_health
    return trace


def write_traces(traces: Iterable[RadioTrace], directory: Path) -> List[Path]:
    return [write_trace(trace, directory) for trace in traces]


def read_traces(
    directory: Path,
    policy: PolicyLike = ErrorPolicy.STRICT,
    health: Optional[DecodeHealth] = None,
    *,
    vectorized: Optional[bool] = None,
) -> List[RadioTrace]:
    directory = Path(directory)
    return [
        read_trace(path, policy=policy, health=health, vectorized=vectorized)
        for path in sorted(directory.glob("radio_*.jtr.gz"))
    ]
