"""Trace files: per-radio record streams with compression and an index.

jigdump "compresses them using the LZO algorithm to minimize storage and
I/O overhead ... and generates a metadata index record to facilitate
subsequent accesses.  Data and metadata are written to separate files"
(Section 3.3).  We use gzip (LZO is not in the stdlib; the role — cheap
stream compression — is identical) and a JSON sidecar index with record
counts and the local-time range.

Reading is streaming: :func:`iter_trace_records` context-manages the file
handle and decodes chunk by chunk in constant memory, so day-long traces
never materialize a decompressed byte blob.
"""

from __future__ import annotations

import gzip
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple

from itertools import islice, pairwise

from .records import (
    TraceRecord,
    record_from_bytes,
    record_span,
    record_to_bytes,
)

#: Chunk size for streaming decompression (1 MiB of decompressed bytes).
_READ_CHUNK_BYTES = 1 << 20


def _meta_path(data_path: Path) -> Path:
    """The JSON index sidecar belonging to a trace data file."""
    return data_path.with_name(data_path.name.replace(".jtr.gz", ".meta.json"))


@dataclass
class RadioTrace:
    """All records captured by one radio, in local-time order."""

    radio_id: int
    channel: int
    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        return self.records[0].timestamp_us if self.records else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        return self.records[-1].timestamp_us if self.records else None

    def sorted_by_local_time(self) -> "RadioTrace":
        """This trace in local-timestamp order.

        Capture order and local-time order coincide for a monotonic clock,
        but tests construct traces by hand; the merge pipeline requires
        local-time order.  When the records are already ordered — the
        common case for real captures — the trace itself is returned, so
        building-scale pipelines stop copying every record list.  Callers
        that mutate the result must therefore copy explicitly.
        """
        records = self.records
        if all(a.timestamp_us <= b.timestamp_us for a, b in pairwise(records)):
            return self
        ordered = sorted(records, key=lambda r: r.timestamp_us)
        return RadioTrace(self.radio_id, self.channel, ordered)


class StreamingRadioTrace:
    """A radio trace that decodes its record stream lazily — and only once.

    Duck-typed against :class:`RadioTrace` (``radio_id``, ``channel``,
    ``records``, iteration, ``first_timestamp_us``,
    ``sorted_by_local_time``), but the records come from a one-shot
    source iterator (typically :func:`iter_trace_records` streaming off a
    compressed file) through an internal tee: every record pulled is
    buffered, so early consumers — the bootstrap prepass examining the
    first second — read just the prefix they need, and later consumers
    replay that buffer before continuing the same underlying read.  The
    file is decoded exactly once no matter how many phases consume it.

    * :meth:`buffered_until` — pull (and buffer) records up to a
      local-time limit; the bootstrap window feed, including auto-widen
      rounds, costs only the prefix decode.
    * ``.records`` — drain the remainder and return the full list; from
      then on the trace behaves exactly like a materialized
      :class:`RadioTrace`.

    Local-time ordering is validated during the single read (replacing
    the separate full-trace scan ``sorted_by_local_time`` performs on
    materialized traces).  Disorder encountered *before* any prefix has
    been handed out downgrades to a full drain + sort (the same silent
    semantics ``sorted_by_local_time`` gives materialized traces).
    Disorder discovered *after* a consumer has gated on a prefix —
    a record sorting into a window the bootstrap already examined —
    raises ``ValueError`` instead: the single-read prepass cannot be
    retroactively corrected, and a loud failure beats silently diverging
    from the materialized path.  Real capture files are written in
    local-time order; unordered inputs should go through
    :func:`read_trace` / :meth:`RadioTrace.sorted_by_local_time`.
    """

    def __init__(
        self,
        radio_id: int,
        channel: int,
        source: Iterable[TraceRecord],
    ) -> None:
        self.radio_id = radio_id
        self.channel = channel
        self._source: Optional[Iterator[TraceRecord]] = iter(source)
        self._buffer: List[TraceRecord] = []
        self._last_ts: Optional[int] = None
        self._ordered = True
        self._prefix_consumed = False

    def _pull(self) -> Optional[TraceRecord]:
        if self._source is None:
            return None
        record = next(self._source, None)
        if record is None:
            self._source = None
            return None
        ts = record.timestamp_us
        if self._last_ts is not None and ts < self._last_ts:
            self._ordered = False
        self._last_ts = ts
        self._buffer.append(record)
        return record

    def buffered_until(self, limit_us: int) -> Tuple[List[TraceRecord], int]:
        """Records with ``timestamp_us <= limit_us``, decoding on demand.

        Returns ``(buffer, hi)`` where ``buffer[:hi]`` is the prefix
        within the limit; at most one record beyond the limit is decoded
        (the cursor for the next call or the eventual drain).
        """
        if self._source is None or not self._ordered:
            records = self.records
            hi = bisect_right(records, limit_us, key=lambda r: r.timestamp_us)
            self._prefix_consumed = True
            return records, hi
        buffer = self._buffer
        while not buffer or buffer[-1].timestamp_us <= limit_us:
            if self._pull() is None:
                if not self._ordered:
                    return self.buffered_until(limit_us)
                self._prefix_consumed = True
                return buffer, len(buffer)
        if not self._ordered:
            return self.buffered_until(limit_us)
        self._prefix_consumed = True
        return buffer, len(buffer) - 1

    @property
    def records(self) -> List[TraceRecord]:
        """Drain the source (first access only) and return every record."""
        source = self._source
        if source is not None:
            # Bulk drain at C speed, then validate ordering from the last
            # prefix record onward (the prefix was validated as it was
            # pulled) — the same one-scan cost a materialized trace pays
            # in ``sorted_by_local_time``.
            buffer = self._buffer
            validate_from = max(len(buffer) - 1, 0)
            buffer.extend(source)
            self._source = None
            if buffer:
                self._last_ts = buffer[-1].timestamp_us
            if self._ordered and any(
                a.timestamp_us > b.timestamp_us
                for a, b in pairwise(islice(buffer, validate_from, None))
            ):
                self._ordered = False
        if not self._ordered:
            if self._prefix_consumed:
                # A window prefix was already handed to the bootstrap,
                # gated on the ordering this record violates; sorting now
                # would silently shift records into or out of windows the
                # prepass already examined.
                raise ValueError(
                    f"trace for radio {self.radio_id} is not in "
                    "local-time order and its window prefix was already "
                    "consumed by the single-read bootstrap; materialize "
                    "it with read_trace()/sorted_by_local_time() instead"
                )
            self._buffer.sort(key=lambda r: r.timestamp_us)
            self._ordered = True
        return self._buffer

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def first_timestamp_us(self) -> Optional[int]:
        buffer = self._buffer
        if not buffer and self._pull() is None:
            return None
        return self._buffer[0].timestamp_us if self._buffer else None

    @property
    def last_timestamp_us(self) -> Optional[int]:
        records = self.records
        return records[-1].timestamp_us if records else None

    def sorted_by_local_time(self) -> "StreamingRadioTrace":
        """Self, with ordering guaranteed by the drain-time validation."""
        self.records
        return self


def open_trace_stream(data_path: Path) -> StreamingRadioTrace:
    """Open one radio's trace for lazy, single-read consumption.

    Identity (radio id, channel) comes from the metadata sidecar; records
    decode on demand through the replay tee, so a pipeline run reads the
    compressed file exactly once — the bootstrap prepass pulls only its
    examination window before unification picks up the buffer.
    """
    data_path = Path(data_path)
    meta = json.loads(_meta_path(data_path).read_text())
    return StreamingRadioTrace(
        meta["radio_id"], meta["channel"], iter_trace_records(data_path)
    )


def open_trace_streams(directory: Path) -> List[StreamingRadioTrace]:
    """Lazily open every trace in a directory (sorted by radio id)."""
    directory = Path(directory)
    return [
        open_trace_stream(path)
        for path in sorted(directory.glob("radio_*.jtr.gz"))
    ]


def write_trace(trace: RadioTrace, directory: Path) -> Path:
    """Write one radio's trace (gzip data + JSON metadata sidecar)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    data_path = directory / f"radio_{trace.radio_id:04d}.jtr.gz"
    with gzip.open(data_path, "wb") as fh:
        for record in trace.records:
            fh.write(record_to_bytes(record))
    meta = {
        "radio_id": trace.radio_id,
        "channel": trace.channel,
        "records": len(trace.records),
        "first_timestamp_us": trace.first_timestamp_us,
        "last_timestamp_us": trace.last_timestamp_us,
    }
    _meta_path(data_path).write_text(json.dumps(meta, indent=1))
    return data_path


def iter_trace_records(
    data_path: Path, chunk_bytes: int = _READ_CHUNK_BYTES
) -> Iterator[TraceRecord]:
    """Stream-decode records from a compressed trace file.

    The file handle is context-managed (no descriptor leak) and at most
    ``chunk_bytes`` of decompressed data plus one partial record is
    buffered at a time, so day-long traces decode in constant memory
    instead of materializing the whole decompressed stream.
    """
    with gzip.open(Path(data_path), "rb") as fh:
        buffer = b""
        offset = 0
        while True:
            chunk = fh.read(chunk_bytes)
            if not chunk:
                break
            buffer = buffer[offset:] + chunk
            offset = 0
            while True:
                span = record_span(buffer, offset)
                if span is None or offset + span > len(buffer):
                    break  # partial record: wait for the next chunk
                record, offset = record_from_bytes(buffer, offset)
                yield record
        if offset < len(buffer):
            raise ValueError(
                f"trailing truncated record ({len(buffer) - offset} bytes) "
                f"in {data_path}"
            )


def read_trace(data_path: Path) -> RadioTrace:
    """Read one radio's trace back from disk."""
    data_path = Path(data_path)
    meta = json.loads(_meta_path(data_path).read_text())
    records = list(iter_trace_records(data_path))
    if len(records) != meta["records"]:
        raise ValueError(
            f"index mismatch: {len(records)} records vs {meta['records']} indexed"
        )
    return RadioTrace(meta["radio_id"], meta["channel"], records)


def write_traces(traces: Iterable[RadioTrace], directory: Path) -> List[Path]:
    return [write_trace(trace, directory) for trace in traces]


def read_traces(directory: Path) -> List[RadioTrace]:
    directory = Path(directory)
    return [
        read_trace(path) for path in sorted(directory.glob("radio_*.jtr.gz"))
    ]
