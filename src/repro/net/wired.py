"""The wired distribution network.

Connects APs to wired hosts, injects wired-path delay and loss (the
non-wireless component of TCP loss that Figure 11 separates out), relays
broadcasts to every AP "at roughly the same time" (Section 7.1), and keeps
the wired-side trace used as ground truth by the Section 6 coverage
experiments: every unicast packet that crosses the distribution network on
its way to or from a wireless client.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..dot11.address import MacAddress
from ..mac.ap import AccessPoint
from ..sim.kernel import Kernel
from .packets import IpPacket, ip_to_bytes, try_parse_packet


@dataclass(frozen=True)
class WiredTraceRecord:
    """One packet observed on the distribution network.

    ``payload`` is the exact frame body the AP bridges, so the coverage
    analysis can match wired records against wireless captures by content —
    the same join the paper performs between its two traces.
    """

    time_us: int
    downlink: bool               # True: wire -> client; False: client -> wire
    client_mac: MacAddress
    ap_mac: MacAddress
    payload: bytes


class WiredHost:
    """A host on the wired side (server, management box)."""

    def __init__(self, ip: int) -> None:
        self.ip = ip
        self._sinks: List[Callable[[IpPacket], None]] = []

    def add_sink(self, sink: Callable[[IpPacket], None]) -> None:
        self._sinks.append(sink)

    def deliver(self, packet: IpPacket) -> None:
        for sink in self._sinks:
            sink(packet)


class WiredNetwork:
    """The building's distribution network plus its upstream path."""

    def __init__(
        self,
        kernel: Kernel,
        rng: np.random.Generator,
        loss_rate: float = 0.0,
        rtt_us: int = 20_000,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._kernel = kernel
        self._rng = rng
        self.loss_rate = loss_rate
        self.one_way_us = max(1, rtt_us // 2)
        self._hosts: Dict[int, WiredHost] = {}
        self._aps: List[AccessPoint] = []
        #: client MAC -> (IP, serving AP)
        self._clients: Dict[MacAddress, tuple] = {}
        self._ip_to_mac: Dict[int, MacAddress] = {}
        #: The wired trace (coverage ground truth).
        self.trace: List[WiredTraceRecord] = []
        # Counters for the Fig 11 decomposition's ground truth.
        self.wired_drops = 0
        self.packets_relayed = 0

    # --- topology ----------------------------------------------------------

    def add_host(self, ip: int) -> WiredHost:
        host = self._hosts.setdefault(ip, WiredHost(ip))
        return host

    def register_ap(self, ap: AccessPoint) -> None:
        self._aps.append(ap)
        ap.uplink_sink = lambda client, payload, ap=ap: self._on_uplink(
            ap, client, payload
        )

    def register_client(
        self, mac: MacAddress, ip: int, ap: AccessPoint
    ) -> None:
        self._clients[mac] = (ip, ap)
        self._ip_to_mac[ip] = mac

    def reassign_client(self, mac: MacAddress, ap: AccessPoint) -> None:
        """Repoint a roamed client's downlink bridging at its new AP.

        The real distribution network learns this from the new AP's
        bridge-table update on reassociation; here the roam scheduler
        tells us directly.
        """
        entry = self._clients.get(mac)
        if entry is None:
            raise KeyError(f"unknown wireless client {mac}")
        self._clients[mac] = (entry[0], ap)

    def client_ip(self, mac: MacAddress) -> Optional[int]:
        entry = self._clients.get(mac)
        return entry[0] if entry else None

    @property
    def aps(self) -> List[AccessPoint]:
        return list(self._aps)

    # --- downlink: wired host -> wireless client ------------------------------

    def send_to_client(self, packet: IpPacket) -> None:
        """A wired host sends toward a wireless client's IP."""
        mac = self._ip_to_mac.get(packet.dst)
        if mac is None:
            return
        if self._rng.random() < self.loss_rate:
            self.wired_drops += 1
            return
        _, ap = self._clients[mac]
        payload = ip_to_bytes(packet)

        def arrive() -> None:
            self.trace.append(
                WiredTraceRecord(
                    time_us=self._kernel.now_us,
                    downlink=True,
                    client_mac=mac,
                    ap_mac=ap.mac,
                    payload=payload,
                )
            )
            self.packets_relayed += 1
            ap.send_downlink(mac, payload)

        self._kernel.after(self.one_way_us, arrive)

    # --- uplink: client -> wired host -----------------------------------------

    def _on_uplink(
        self, ap: AccessPoint, client: MacAddress, payload: bytes
    ) -> None:
        self.trace.append(
            WiredTraceRecord(
                time_us=self._kernel.now_us,
                downlink=False,
                client_mac=client,
                ap_mac=ap.mac,
                payload=payload,
            )
        )
        self.packets_relayed += 1
        packet = try_parse_packet(payload)
        if packet is None or not isinstance(packet, IpPacket):
            return
        if self._rng.random() < self.loss_rate:
            self.wired_drops += 1
            return
        host = self._hosts.get(packet.dst)
        if host is None:
            return
        self._kernel.after(self.one_way_us, lambda: host.deliver(packet))

    # --- broadcast relay -----------------------------------------------------------

    def broadcast(self, payload: bytes) -> None:
        """Relay a wired broadcast to every AP at (roughly) the same time.

        "because they are delivered to all APs at the same time, they are
        broadcast on all APs on all channels at roughly the same time as
        well — likely interfering with themselves in the process"
        (Section 7.1).  Per-AP jitter is only the switch forwarding spread
        (microseconds), not the random jitter the paper recommends adding.
        """
        for ap in self._aps:
            jitter = int(self._rng.integers(0, 50))
            self._kernel.after(
                self.one_way_us + jitter,
                lambda ap=ap: ap.send_broadcast(payload),
            )
