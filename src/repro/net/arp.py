"""ARP broadcast sources.

Section 7.1 finds that "the largest source of ARP is due to an 802.11
management server from Vernier that uses regular ARPs to track the liveness
and network location of registered clients", with additional who-has probes
from "outside scans and worms ... as they probe unallocated IP address
space".  Both sources are modelled here; their output feeds
:meth:`WiredNetwork.broadcast`, which relays them through every AP at the
lowest rate — the broadcast-airtime inefficiency the paper quantifies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..sim.kernel import Kernel
from .packets import ArpPacket, arp_to_bytes
from .wired import WiredNetwork

_ZERO_MAC = b"\x00" * 6


def make_who_has(sender_ip: int, target_ip: int, sender_mac: bytes) -> ArpPacket:
    return ArpPacket(
        op=1,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac=_ZERO_MAC,
        target_ip=target_ip,
    )


class VernierTracker:
    """The management server's liveness ARP sweep.

    Cycles through registered client IPs, emitting one who-has broadcast per
    ``interval_us``.  The rate therefore "scales with the size of the
    network or the size of the user population while the capacity of the
    channel remains constant" — the paper's core complaint.
    """

    def __init__(
        self,
        kernel: Kernel,
        wired: WiredNetwork,
        client_ips: Sequence[int],
        interval_us: int,
        server_ip: int,
        server_mac: bytes = b"\x00\x0e\x0e\x00\x00\x01",
    ) -> None:
        self._kernel = kernel
        self._wired = wired
        self._client_ips: List[int] = list(client_ips)
        self._interval_us = interval_us
        self._server_ip = server_ip
        self._server_mac = server_mac
        self._cursor = 0
        self.broadcasts_sent = 0
        if self._client_ips:
            kernel.after(interval_us, self._tick)

    def _tick(self) -> None:
        target = self._client_ips[self._cursor % len(self._client_ips)]
        self._cursor += 1
        packet = make_who_has(self._server_ip, target, self._server_mac)
        self._wired.broadcast(arp_to_bytes(packet))
        self.broadcasts_sent += 1
        self._kernel.after(self._interval_us, self._tick)


class ScanArpSource:
    """Outside scans/worms probing unallocated address space."""

    def __init__(
        self,
        kernel: Kernel,
        wired: WiredNetwork,
        rng: np.random.Generator,
        mean_interval_us: int,
        subnet_base: int = 0x0A_00_00_00,
    ) -> None:
        self._kernel = kernel
        self._wired = wired
        self._rng = rng
        self._mean_interval_us = mean_interval_us
        self._subnet_base = subnet_base
        self.broadcasts_sent = 0
        kernel.after(self._next_gap(), self._tick)

    def _next_gap(self) -> int:
        return max(1, int(self._rng.exponential(self._mean_interval_us)))

    def _tick(self) -> None:
        target = self._subnet_base | int(self._rng.integers(1, 0xFFFF))
        packet = make_who_has(
            sender_ip=self._subnet_base | 0xFFFE,
            target_ip=target,
            sender_mac=b"\x00\x0e\x0e\xff\xff\xfe",
        )
        self._wired.broadcast(arp_to_bytes(packet))
        self.broadcasts_sent += 1
        self._kernel.after(self._next_gap(), self._tick)
