"""Minimal network-layer packet model: IPv4, TCP, UDP, ARP.

The transport reconstruction parses these out of the <=200-byte payload
snapshots the capture pipeline keeps ("each frame contains up to 200 bytes
of payload that can be used to identify MAC addresses, IP addresses and TCP
port numbers" — Section 5).  The wire format is a compact fixed layout, not
RFC 791/793 bit-for-bit, but it carries every field the algorithms use:
addresses, ports, sequence/ack numbers, flags, and payload length.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional, Union


class IpProto(enum.IntEnum):
    TCP = 6
    UDP = 17


class TcpFlags(enum.IntFlag):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


_IP_HEADER = struct.Struct("<4sIIBH")  # magic, src, dst, proto, payload_len
_TCP_HEADER = struct.Struct("<HHIIBH")  # sport, dport, seq, ack, flags, len
_UDP_HEADER = struct.Struct("<HHH")     # sport, dport, len
_ARP_HEADER = struct.Struct("<4sB6sI6sI")  # magic, op, sha, spa, tha, tpa

_IP_MAGIC = b"IPv4"
_ARP_MAGIC = b"ARP!"


def format_ip(addr: int) -> str:
    return ".".join(str((addr >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ip(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad octet in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment: header plus the *length* of its payload.

    We never materialize payload bytes — only their count matters to both
    the endpoints and the reconstruction (sequence arithmetic).
    """

    sport: int
    dport: int
    seq: int
    ack: int
    flags: TcpFlags
    payload_len: int = 0

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TcpFlags.ACK)

    @property
    def seq_end(self) -> int:
        """Sequence number after this segment (SYN/FIN consume one)."""
        length = self.payload_len
        if self.flags & (TcpFlags.SYN | TcpFlags.FIN):
            length += 1
        return (self.seq + length) & 0xFFFFFFFF


@dataclass(frozen=True)
class UdpDatagram:
    sport: int
    dport: int
    payload_len: int = 0


@dataclass(frozen=True)
class IpPacket:
    """An IPv4 packet wrapping a TCP segment or UDP datagram."""

    src: int
    dst: int
    payload: Union[TcpSegment, UdpDatagram]

    @property
    def proto(self) -> IpProto:
        if isinstance(self.payload, TcpSegment):
            return IpProto.TCP
        return IpProto.UDP

    @property
    def total_payload_len(self) -> int:
        return self.payload.payload_len


@dataclass(frozen=True)
class ArpPacket:
    """An ARP message (op 1 = who-has request, 2 = reply)."""

    op: int
    sender_mac: bytes
    sender_ip: int
    target_mac: bytes
    target_ip: int

    @property
    def is_request(self) -> bool:
        return self.op == 1


class PacketParseError(ValueError):
    """Raised when bytes cannot be decoded into a network packet."""


def ip_to_bytes(packet: IpPacket) -> bytes:
    header = _IP_HEADER.pack(
        _IP_MAGIC, packet.src, packet.dst, int(packet.proto),
        packet.total_payload_len,
    )
    if isinstance(packet.payload, TcpSegment):
        seg = packet.payload
        body = _TCP_HEADER.pack(
            seg.sport, seg.dport, seg.seq, seg.ack, int(seg.flags),
            seg.payload_len,
        )
    else:
        udp = packet.payload
        body = _UDP_HEADER.pack(udp.sport, udp.dport, udp.payload_len)
    # Payload bytes are represented by a deterministic filler so captures
    # have realistic lengths without storing real content.
    filler = b"\xda" * min(packet.total_payload_len, 64)
    return header + body + filler


def arp_to_bytes(packet: ArpPacket) -> bytes:
    return _ARP_HEADER.pack(
        _ARP_MAGIC, packet.op,
        packet.sender_mac, packet.sender_ip,
        packet.target_mac, packet.target_ip,
    )


def packet_from_bytes(raw: bytes) -> Union[IpPacket, ArpPacket]:
    """Decode a frame body back into a network packet.

    Tolerates trailing truncation of payload filler (captures are snapped
    to 200 bytes) but raises :class:`PacketParseError` when the headers
    themselves are unreadable.
    """
    if raw[:4] == _ARP_MAGIC:
        if len(raw) < _ARP_HEADER.size:
            raise PacketParseError("truncated ARP")
        _, op, sha, spa, tha, tpa = _ARP_HEADER.unpack_from(raw, 0)
        return ArpPacket(op, sha, spa, tha, tpa)
    if raw[:4] != _IP_MAGIC:
        raise PacketParseError("not an IP or ARP packet")
    if len(raw) < _IP_HEADER.size:
        raise PacketParseError("truncated IP header")
    _, src, dst, proto, payload_len = _IP_HEADER.unpack_from(raw, 0)
    offset = _IP_HEADER.size
    if proto == IpProto.TCP:
        if len(raw) < offset + _TCP_HEADER.size:
            raise PacketParseError("truncated TCP header")
        sport, dport, seq, ack, flags, seg_len = _TCP_HEADER.unpack_from(
            raw, offset
        )
        return IpPacket(
            src, dst,
            TcpSegment(sport, dport, seq, ack, TcpFlags(flags), seg_len),
        )
    if proto == IpProto.UDP:
        if len(raw) < offset + _UDP_HEADER.size:
            raise PacketParseError("truncated UDP header")
        sport, dport, udp_len = _UDP_HEADER.unpack_from(raw, offset)
        return IpPacket(src, dst, UdpDatagram(sport, dport, udp_len))
    raise PacketParseError(f"unknown protocol {proto}")


def try_parse_packet(raw: bytes) -> Optional[Union[IpPacket, ArpPacket]]:
    """Parse, returning ``None`` instead of raising on undecodable bytes."""
    try:
        return packet_from_bytes(raw)
    except (PacketParseError, struct.error):
        return None
