"""Network-layer substrate: packets, ARP sources, the wired network."""

from .arp import ScanArpSource, VernierTracker, make_who_has
from .packets import (
    ArpPacket,
    IpPacket,
    IpProto,
    PacketParseError,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
    arp_to_bytes,
    format_ip,
    ip_to_bytes,
    packet_from_bytes,
    parse_ip,
    try_parse_packet,
)
from .wired import WiredHost, WiredNetwork, WiredTraceRecord

__all__ = [
    "ScanArpSource",
    "VernierTracker",
    "make_who_has",
    "ArpPacket",
    "IpPacket",
    "IpProto",
    "PacketParseError",
    "TcpFlags",
    "TcpSegment",
    "UdpDatagram",
    "arp_to_bytes",
    "format_ip",
    "ip_to_bytes",
    "packet_from_bytes",
    "parse_ip",
    "try_parse_packet",
    "WiredHost",
    "WiredNetwork",
    "WiredTraceRecord",
]
