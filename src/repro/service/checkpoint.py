"""Versioned, integrity-checked checkpoint codec for the service daemon.

A checkpoint is one pickle of a :class:`CheckpointState` — engines,
drive, k-way FIFOs, ledger and counters serialized as a **single object
graph**.  One graph matters: the merge engines, the assemblers and the
materialized jframes share objects (instances, tracks, attempts), and
the assemblers' ``id()``-keyed working sets are rebuilt from object
identity on restore.  Pickling pieces separately would sever that
sharing and the restored daemon would silently diverge.

On-disk format::

    MAGIC (4 bytes) | version (u32 LE) | crc32 (u32 LE) | length (u64 LE)
    | pickle payload

Writes are atomic: the payload lands in a same-directory temp file which
is ``os.replace``-d over the target, so a crash mid-write leaves the
previous checkpoint intact — the recovery point is always the last
*complete* checkpoint.

Compatibility policy (documented in ``docs/service.md``): the version
is bumped whenever any pickled class's layout changes incompatibly;
``load_checkpoint`` refuses foreign magic, future versions and payloads
whose CRC or length disagree with the header, raising
:class:`CheckpointError` rather than unpickling garbage.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple

CHECKPOINT_MAGIC = b"JGSV"
CHECKPOINT_VERSION = 1

_CHECKPOINT_HEADER = struct.Struct("<4sIIQ")


class CheckpointError(RuntimeError):
    """The checkpoint file is foreign, damaged or from the future."""


@dataclass
class CheckpointState:
    """Everything a restarted daemon needs, minus the record source.

    The feed itself is *not* checkpointed — a restored daemon rebuilds
    it from configuration and seeks it to ``consumed`` (the simulator
    test double re-derives identical records; a live deployment replays
    from its upstream spool).  Everything else is the daemon's exact
    in-memory state at a deterministic loop boundary.
    """

    #: Per-radio records consumed from the feed (the seek target).
    consumed: Dict[int, int]
    #: Total records consumed (checkpoint cadence anchor).
    total_consumed: int
    #: One live merge engine per channel shard, mid-merge.
    engines: List[Any]
    #: Radio ids driven by each engine (schedule reconstruction).
    shard_radio_ids: List[List[int]]
    #: Per-shard jframes emitted but not yet released to the drive.
    fifos: List[List[Any]]
    #: Shards whose ``finish()`` already ran.
    finished: List[bool]
    #: The downstream drive: assemblers, flow collector, passes.
    drive: Any
    #: The offset ledger as :meth:`BootstrapResult.to_state` plain data
    #: (offsets, quarantine, islands) — inspectable without unpickling
    #: domain classes.
    bootstrap: Any
    #: Run health ledger accumulated so far.
    health: Any
    #: Quarantined-radio ingest counters (drained once, at first start).
    quarantine_stats: Any
    #: Track ordering for the final report (feed trace order).
    track_order: List[int]
    #: Published windows, in publication order, keyed for dedup.
    published: List[Any] = field(default_factory=list)
    #: Checkpoints written before this one (monotone counter).
    checkpoints_written: int = 0

    def published_keys(self) -> List[Tuple[str, int]]:
        return [window.key for window in self.published]


def save_checkpoint(path: Path, state: CheckpointState) -> None:
    """Atomically write ``state`` to ``path`` (temp file + rename)."""
    path = Path(path)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = _CHECKPOINT_HEADER.pack(
        CHECKPOINT_MAGIC,
        CHECKPOINT_VERSION,
        zlib.crc32(payload) & 0xFFFFFFFF,
        len(payload),
    )
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: Path) -> CheckpointState:
    """Read, validate and unpickle a checkpoint written by this codec."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < _CHECKPOINT_HEADER.size:
        raise CheckpointError(f"{path}: truncated header")
    magic, version, crc, length = _CHECKPOINT_HEADER.unpack_from(raw)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a Jigsaw service checkpoint")
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} is newer than this "
            f"build understands ({CHECKPOINT_VERSION}); upgrade before "
            "resuming"
        )
    payload = raw[_CHECKPOINT_HEADER.size:]
    if len(payload) != length:
        raise CheckpointError(
            f"{path}: payload length {len(payload)} != header {length} "
            "(truncated write?)"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise CheckpointError(f"{path}: payload CRC mismatch (corruption)")
    state = pickle.loads(payload)
    if not isinstance(state, CheckpointState):
        raise CheckpointError(
            f"{path}: payload is {type(state).__name__}, "
            "not CheckpointState"
        )
    return state


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointState",
    "load_checkpoint",
    "save_checkpoint",
]
