"""Always-on service mode: checkpointed live reconstruction.

:mod:`repro.service` turns the one-pass Jigsaw pipeline into a daemon:
records flow in per radio (live uplink or the simulator test double),
the merge/link/transport layers advance incrementally forever, windowed
pass output is sealed and published as the emission watermark passes it,
and the whole reconstruction state is periodically checkpointed so a
killed daemon resumes mid-trace bit-identically.

Public surface:

* :class:`~repro.service.daemon.JigsawDaemon` — the drive loop;
* :class:`~repro.service.daemon.ServiceReport` — final report plus the
  published-window ledger;
* :class:`~repro.service.windows.WindowedSummaryPass` /
  :class:`~repro.service.windows.WindowedInterferencePass` /
  :class:`~repro.service.windows.WindowedLossPass` — windowed passes
  with mid-stream sealing;
* :class:`~repro.service.queues.QueueFeed` — bounded per-radio ingest
  queues with backpressure and stall detection;
* :mod:`~repro.service.checkpoint` — the versioned checkpoint codec.
"""

from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
)
from .daemon import JigsawDaemon, ServiceReport
from .queues import QueueFeed, RadioQueue, ServiceStalled
from .windows import (
    WindowedInterferencePass,
    WindowedLossPass,
    WindowedSummaryPass,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointState",
    "JigsawDaemon",
    "QueueFeed",
    "RadioQueue",
    "ServiceReport",
    "ServiceStalled",
    "WindowedInterferencePass",
    "WindowedLossPass",
    "WindowedSummaryPass",
    "load_checkpoint",
    "save_checkpoint",
]
