"""Bounded per-radio ingest queues with backpressure and stall detection.

The daemon pulls records through a tiny *feed protocol* — any object
with ``next_record(radio_id) -> Optional[TraceRecord]`` (plus the
``traces`` / ``clock_groups()`` / ``consumed()`` / ``seek()`` surface
used at bootstrap and restore).  :class:`QueueFeed` is the protocol
implementation for push-style producers: each radio owns a bounded
:class:`RadioQueue`, producers push into it and observe backpressure
(``push`` returns ``False`` when the queue is full — the producer must
hold the record and retry), and the daemon drains the other end.

Two liveness properties live here, both held by
``tests/test_service_liveness.py``:

* **bounded depth** — a radio whose consumer has fallen behind buffers
  at most ``maxlen`` records, never O(trace): the producer is pushed
  back on, exactly like a full socket buffer pushes back on a live
  monitor uplink;
* **no deadlock on a stalled source** — when the daemon needs a record
  and the queue is empty, it invokes the registered pump; if the pump
  makes no progress ``idle_limit`` consecutive times,
  :class:`ServiceStalled` is raised instead of spinning forever.

Progress is counted in pump attempts, not wall-clock seconds, so the
stall machinery is fully deterministic (and the daemon stays free of
wall-clock reads, which the repo's invariant lint bans in library
code).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence

from ..jtrace.records import TraceRecord

#: Default bound on per-radio queue depth (records).
DEFAULT_QUEUE_DEPTH = 4096

#: Default number of consecutive no-progress pump attempts tolerated
#: before the feed declares the source stalled.
DEFAULT_IDLE_LIMIT = 1000


class ServiceStalled(RuntimeError):
    """The daemon needed a record and the source stopped producing."""


class RadioQueue:
    """One radio's bounded record queue (single-threaded, deterministic).

    ``push`` applies backpressure by refusing records at capacity; the
    producer keeps the record and retries after the consumer drains.
    ``close`` marks end-of-stream: a closed, drained queue yields
    ``None`` forever, which is the daemon's end-of-trace signal.
    """

    def __init__(self, radio_id: int, maxlen: int = DEFAULT_QUEUE_DEPTH) -> None:
        if maxlen <= 0:
            raise ValueError("queue depth must be positive")
        self.radio_id = radio_id
        self.maxlen = maxlen
        self.closed = False
        self._records: Deque[TraceRecord] = deque()

    @property
    def depth(self) -> int:
        return len(self._records)

    @property
    def full(self) -> bool:
        return len(self._records) >= self.maxlen

    def push(self, record: TraceRecord) -> bool:
        """Enqueue one record; ``False`` signals backpressure (retry)."""
        if self.closed:
            raise ValueError(
                f"push after close on radio {self.radio_id}'s queue"
            )
        if len(self._records) >= self.maxlen:
            return False
        self._records.append(record)
        return True

    def close(self) -> None:
        """Mark end-of-stream; already-queued records still drain."""
        self.closed = True

    def pop(self) -> Optional[TraceRecord]:
        """Dequeue one record; ``None`` when empty (check ``drained``)."""
        if self._records:
            return self._records.popleft()
        return None

    @property
    def drained(self) -> bool:
        """True once the stream ended and every record was consumed."""
        return self.closed and not self._records


#: A pump is invoked when the daemon needs a record for ``radio_id`` and
#: the queue is empty.  It should push records (respecting backpressure)
#: or close queues; returning without either is counted as no progress.
Pump = Callable[["QueueFeed", int], None]


class QueueFeed:
    """Push-style feed: bounded queues in front of the daemon's pull loop.

    ``pump`` bridges the pull side to the push side: whenever
    :meth:`next_record` finds the requested radio's queue empty (and not
    closed), the pump runs once and gets the chance to push.  A live
    deployment would instead have sockets pushing concurrently and the
    pump would merely wait; the deterministic single-threaded shape is
    what the crash/resume parity suite needs.
    """

    def __init__(
        self,
        radio_ids: Sequence[int],
        pump: Pump,
        maxlen: int = DEFAULT_QUEUE_DEPTH,
        idle_limit: int = DEFAULT_IDLE_LIMIT,
    ) -> None:
        if idle_limit <= 0:
            raise ValueError("idle limit must be positive")
        self.queues: Dict[int, RadioQueue] = {
            radio_id: RadioQueue(radio_id, maxlen) for radio_id in radio_ids
        }
        self._pump = pump
        self._idle_limit = idle_limit
        self._consumed: Dict[int, int] = {rid: 0 for rid in self.queues}

    def queue(self, radio_id: int) -> RadioQueue:
        return self.queues[radio_id]

    def push(self, radio_id: int, record: TraceRecord) -> bool:
        """Producer-side entry: push one record, observing backpressure."""
        return self.queues[radio_id].push(record)

    def close_radio(self, radio_id: int) -> None:
        self.queues[radio_id].close()

    def depths(self) -> Dict[int, int]:
        return {rid: q.depth for rid, q in self.queues.items()}

    def consumed(self) -> Dict[int, int]:
        return dict(self._consumed)

    def next_record(self, radio_id: int) -> Optional[TraceRecord]:
        """Pull the next record for ``radio_id``; ``None`` at end of stream.

        Raises :class:`ServiceStalled` after ``idle_limit`` consecutive
        pump invocations that neither produced a record for this radio
        nor closed its stream — the daemon surfaces the error instead of
        deadlocking on a dead source.
        """
        queue = self.queues[radio_id]
        idle = 0
        while True:
            record = queue.pop()
            if record is not None:
                self._consumed[radio_id] += 1
                return record
            if queue.closed:
                return None
            self._pump(self, radio_id)
            if queue.depth == 0 and not queue.closed:
                idle += 1
                if idle >= self._idle_limit:
                    raise ServiceStalled(
                        f"source for radio {radio_id} made no progress in "
                        f"{idle} pump attempts (queue empty, not closed)"
                    )
            else:
                idle = 0


def feed_pump_from_records(
    records_by_radio: Dict[int, Sequence[TraceRecord]],
) -> Pump:
    """A pump replaying materialized per-radio record lists (tests).

    Pushes each radio's records in order, respecting backpressure, and
    closes the queue at the end — the minimal faithful producer.
    """
    cursors: Dict[int, int] = {rid: 0 for rid in records_by_radio}

    def pump(feed: "QueueFeed", radio_id: int) -> None:
        for rid, queue in feed.queues.items():
            records: Sequence[TraceRecord] = records_by_radio.get(rid, ())
            index = cursors[rid]
            while index < len(records) and queue.push(records[index]):
                index += 1
            cursors[rid] = index
            if index >= len(records) and not queue.closed:
                queue.close()

    return pump


__all__ = [
    "DEFAULT_IDLE_LIMIT",
    "DEFAULT_QUEUE_DEPTH",
    "Pump",
    "QueueFeed",
    "RadioQueue",
    "ServiceStalled",
    "feed_pump_from_records",
]
