"""The always-on reconstruction daemon: live drive loop + checkpoints.

:class:`JigsawDaemon` runs the full Jigsaw pipeline as a service.  Where
``JigsawPipeline.run`` drains finite traces to exhaustion, the daemon
pulls records one at a time from a *feed* (a live uplink, a
:class:`~repro.service.queues.QueueFeed`, or the simulator test double
:class:`~repro.sim.stream.LiveScenarioFeed`), advances the merge
incrementally, publishes windowed pass output as the emission watermark
passes it, and periodically checkpoints the entire reconstruction state
so a killed daemon resumes mid-trace **bit-identically**.

Determinism is the load-bearing property, and it rests on three legs:

1. **Blocking-successor merge** — each channel shard runs a
   :class:`~repro.core.unify.unifier.LiveMergeShard`: after popping a
   radio's record the engine demands that radio's next record before
   anything else happens, so the processing order is a pure function of
   the per-radio record sequences, never of arrival timing or restart
   points.
2. **Watermark-gated k-way release** — a shard's emitted jframe is
   handed to the downstream drive only when every other shard provably
   cannot emit an earlier one (its FIFO head is later, or its emission
   watermark has passed the candidate).  The released sequence is
   therefore exactly the batch pipeline's ``heapq.merge`` order, just
   discovered incrementally.
3. **Checkpoints at deterministic loop boundaries** — state is captured
   only at the end of a full scheduling round, at a record count every
   incarnation passes through, so the uninterrupted run provably visits
   the exact state a restored run starts from.

The feed protocol: ``next_record(radio_id) -> Optional[TraceRecord]``
(``None`` = end of that radio's stream), plus ``traces`` /
``clock_groups()`` for the bootstrap prepass and ``consumed()`` /
``seek()`` for checkpoint alignment.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.faults import HealthReport
from ..core.link.exchange import EXCHANGE_REORDER_SLACK_US
from ..core.passes import PassContext, PipelinePass, SealedWindow
from ..core.pipeline import JigsawReport, ReconstructionDrive
from ..core.sync.bootstrap import BootstrapResult
from ..core.sync.sharded import ShardedBootstrap
from ..core.unify.jframe import JFrame
from ..core.unify.unifier import (
    LiveMergeShard,
    UnificationResult,
    Unifier,
    UnifyStats,
    partition_traces,
)
from .checkpoint import CheckpointState, load_checkpoint, save_checkpoint

#: Default checkpoint cadence, in consumed records.
DEFAULT_CHECKPOINT_EVERY = 2_000


@dataclass
class ServiceReport:
    """What a completed daemon run surrenders.

    ``report`` is the same :class:`~repro.core.pipeline.JigsawReport`
    the batch pipeline produces (bit-identical to one, for the same
    records); ``published`` is the at-least-once publication ledger in
    first-publication order — every window each registered windowed
    pass ever sealed, deduplicated by ``(pass_name, window_id)``.
    """

    report: JigsawReport
    published: List[SealedWindow] = field(default_factory=list)
    checkpoints_written: int = 0
    resumed: bool = False

    def published_for(self, pass_name: str) -> List[SealedWindow]:
        return [w for w in self.published if w.pass_name == pass_name]


class JigsawDaemon:
    """Checkpointed live reconstruction over a per-radio record feed."""

    def __init__(
        self,
        feed: Any,
        unifier: Optional[Unifier] = None,
        passes: Sequence[PipelinePass] = (),
        materialize: bool = True,
        checkpoint_path: Optional[Path] = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        bootstrap_window_us: int = 1_000_000,
        auto_widen_bootstrap: bool = True,
    ) -> None:
        if checkpoint_every <= 0:
            raise ValueError("checkpoint cadence must be positive")
        self.feed = feed
        self.unifier = unifier or Unifier()
        self.materialize = materialize
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.bootstrap_window_us = bootstrap_window_us
        self.auto_widen_bootstrap = auto_widen_bootstrap
        self._passes: List[PipelinePass] = list(passes)

        self._started = False
        self._resumed = False
        self._engines: List[LiveMergeShard] = []
        self._shard_radio_ids: List[List[int]] = []
        self._fifos: List[Deque[JFrame]] = []
        self._finished: List[bool] = []
        self._drive: Optional[ReconstructionDrive] = None
        self._bootstrap: Optional[BootstrapResult] = None
        self._health = HealthReport()
        self._quarantine_stats = UnifyStats()
        self._track_order: List[int] = []
        self._published: Dict[Tuple[str, int], SealedWindow] = {}
        self._total_consumed = 0
        self._last_checkpoint_at = 0
        self._checkpoints_written = 0

    # --- observability -----------------------------------------------------

    @property
    def watermark_us(self) -> float:
        """Conservative downstream watermark (monotone, never regresses)."""
        if self._drive is None:
            return float("-inf")
        return self._drive.watermark_us

    @property
    def total_consumed(self) -> int:
        return self._total_consumed

    @property
    def published_windows(self) -> List[SealedWindow]:
        return list(self._published.values())

    @property
    def checkpoints_written(self) -> int:
        return self._checkpoints_written

    # --- lifecycle ---------------------------------------------------------

    @classmethod
    def restore(
        cls,
        checkpoint_path: Path,
        feed: Any,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        materialize: bool = True,
    ) -> "JigsawDaemon":
        """Rebuild a daemon from its last complete checkpoint.

        ``feed`` must be a fresh feed over the *same* record source (the
        simulator test double re-derives it from the scenario config); it
        is ``seek``-ed to the checkpoint's consumed counts so the next
        ``next_record`` returns the first record the crashed daemon
        never consumed.
        """
        state = load_checkpoint(checkpoint_path)
        engines: List[LiveMergeShard] = state.engines
        unifier = engines[0].unifier if engines else Unifier()
        daemon = cls(
            feed,
            unifier=unifier,
            materialize=materialize,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )
        feed.seek(state.consumed)
        daemon._engines = engines
        daemon._shard_radio_ids = [list(r) for r in state.shard_radio_ids]
        daemon._fifos = [deque(f) for f in state.fifos]
        daemon._finished = list(state.finished)
        daemon._drive = state.drive
        daemon._passes = list(state.drive.passes)
        daemon._bootstrap = (
            None if state.bootstrap is None
            else BootstrapResult.from_state(state.bootstrap)
        )
        daemon._health = state.health
        daemon._quarantine_stats = state.quarantine_stats
        daemon._track_order = list(state.track_order)
        daemon._published = {w.key: w for w in state.published}
        daemon._total_consumed = state.total_consumed
        daemon._last_checkpoint_at = state.total_consumed
        daemon._checkpoints_written = state.checkpoints_written
        daemon._started = True
        daemon._resumed = True
        return daemon

    def serve(
        self, stop_after_records: Optional[int] = None
    ) -> Optional[ServiceReport]:
        """Run until the feed ends; return the final report.

        ``stop_after_records`` simulates a SIGKILL for the crash/resume
        suite: once the *total* consumed-record count reaches it, the
        daemon returns ``None`` immediately — mid-round, with no final
        checkpoint, no flushing, no cleanup.  Recovery is whatever the
        last periodic checkpoint captured, exactly as a real kill.
        """
        started_clock = time.perf_counter()
        if not self._started:
            self._start()
        crashed = self._loop(stop_after_records)
        if crashed:
            return None
        return self._finalize(started_clock)

    # --- startup -----------------------------------------------------------

    def _start(self) -> None:
        feed = self.feed
        coordinator = ShardedBootstrap(
            max_workers=1,
            window_us=self.bootstrap_window_us,
            auto_widen=self.auto_widen_bootstrap,
        )
        bootstrap = coordinator.bootstrap(
            feed.traces, clock_groups=feed.clock_groups()
        )
        self._bootstrap = bootstrap
        health = self._health
        health.bootstrap_shards.merge(coordinator.health)
        health.sync.quarantined = dict(bootstrap.quarantined)
        health.sync.islands = [list(i) for i in bootstrap.islands]
        health.sync.rejoined = list(bootstrap.rejoined)
        health.sync.widen_rounds = bootstrap.widen_rounds

        offsets = bootstrap.offsets_us
        # Quarantined radios contribute nothing; their record counts land
        # in the ledger exactly as the batch merge counts them.  Drained
        # once, here — the counters ride in every checkpoint, so a
        # restored daemon never re-drains.
        for trace in feed.traces:
            if trace.radio_id not in offsets:
                skipped = len(trace)
                self._quarantine_stats.records_in += skipped
                self._quarantine_stats.records_skipped_unsynchronized += (
                    skipped
                )

        # Same shard structure (and therefore the same k-way tie-break
        # order) as the batch pipeline; shards with no synchronized radio
        # are skipped — they can never emit.
        for shard in partition_traces(feed.traces):
            radio_ids = [t.radio_id for t in shard if t.radio_id in offsets]
            if not radio_ids:
                continue
            self._engines.append(
                LiveMergeShard(self.unifier, radio_ids, offsets)
            )
            self._shard_radio_ids.append(radio_ids)
            self._fifos.append(deque())
            self._finished.append(False)
        self._drive = ReconstructionDrive(
            self._passes, materialize=self.materialize
        )
        self._track_order = [t.radio_id for t in feed.traces]
        self._started = True

    # --- the drive loop ----------------------------------------------------

    def _loop(self, stop_after_records: Optional[int]) -> bool:
        """Round-robin the shards until the feed drains; True = crashed."""
        feed = self.feed
        engines = self._engines
        fifos = self._fifos
        finished = self._finished
        while True:
            for si, engine in enumerate(engines):
                if finished[si]:
                    continue
                radio_id = engine.needed()
                if radio_id is not None:
                    record = feed.next_record(radio_id)
                    engine.supply(radio_id, record)
                    if record is not None:
                        self._total_consumed += 1
                        if (
                            stop_after_records is not None
                            and self._total_consumed >= stop_after_records
                        ):
                            return True  # simulated SIGKILL: stop mid-round
                elif engine.exhausted:
                    fifos[si].extend(engine.finish())
                    finished[si] = True
                else:
                    fifos[si].extend(engine.step())
            self._release()
            assert self._drive is not None
            self._publish(self._drive.seal_ready())
            if (
                self.checkpoint_path is not None
                and self._total_consumed - self._last_checkpoint_at
                >= self.checkpoint_every
            ):
                self._write_checkpoint()
            if all(finished) and not any(fifos):
                return False

    def _release(self) -> None:
        """Feed the drive every jframe that is provably globally next.

        Replicates ``heapq.merge``'s (timestamp, shard index) order: the
        minimum FIFO head is released only when every other shard either
        shows a later head or has an emission watermark at or past the
        candidate (a shard's future emissions are strictly later than
        its watermark, so it can never produce an earlier jframe).
        """
        fifos = self._fifos
        engines = self._engines
        drive = self._drive
        assert drive is not None
        while True:
            best_si = -1
            best_ts = 0
            for si, fifo in enumerate(fifos):
                if fifo:
                    ts = fifo[0].timestamp_us
                    if best_si < 0 or ts < best_ts:
                        best_si, best_ts = si, ts
            if best_si < 0:
                return
            for si, engine in enumerate(engines):
                if si == best_si or fifos[si]:
                    continue
                if engine.watermark_us < best_ts:
                    return  # shard si could still emit something earlier
            drive.feed(fifos[best_si].popleft())

    def _publish(self, sealed: Sequence[SealedWindow]) -> None:
        """At-least-once publication with a dedup ledger.

        Re-publications happen by design after a restore (windows sealed
        between the recovered checkpoint and the crash seal again); the
        ledger keeps the first copy — determinism guarantees any repeat
        is bit-identical.
        """
        for window in sealed:
            if window.key not in self._published:
                self._published[window.key] = window

    def _write_checkpoint(self) -> None:
        assert self.checkpoint_path is not None
        state = CheckpointState(
            consumed=self.feed.consumed(),
            total_consumed=self._total_consumed,
            engines=self._engines,
            shard_radio_ids=[list(r) for r in self._shard_radio_ids],
            fifos=[list(f) for f in self._fifos],
            finished=list(self._finished),
            drive=self._drive,
            # The offset ledger goes through its explicit plain-data
            # schema, not object pickling: the one part of the format
            # an operator can inspect and other tools can parse.
            bootstrap=(
                None if self._bootstrap is None
                else self._bootstrap.to_state()
            ),
            health=self._health,
            quarantine_stats=self._quarantine_stats,
            track_order=list(self._track_order),
            published=list(self._published.values()),
            checkpoints_written=self._checkpoints_written + 1,
        )
        save_checkpoint(self.checkpoint_path, state)
        self._checkpoints_written += 1
        self._last_checkpoint_at = self._total_consumed

    # --- completion --------------------------------------------------------

    def _finalize(self, started_clock: float) -> ServiceReport:
        drive = self._drive
        bootstrap = self._bootstrap
        assert drive is not None and bootstrap is not None
        flows = drive.finish_streams(trim_exchange_refs=not self.materialize)
        # Everything has now been delivered to every hook; seal whatever
        # windows remain (watermark = +inf) and publish them.
        tail: List[SealedWindow] = []
        for p in drive.passes:
            tail.extend(p.seal_ready(float("inf")))
        self._publish(tail)

        stats = UnifyStats()
        for engine in self._engines:
            stats.merge(engine.stats)
        stats.merge(self._quarantine_stats)
        combined: Dict[int, Any] = {}
        for engine in self._engines:
            combined.update(engine.tracks)
        tracks = {
            rid: combined[rid] for rid in self._track_order if rid in combined
        }
        materializer = drive.materializer
        unification = UnificationResult(
            jframes=materializer.jframes if materializer is not None else [],
            tracks=tracks,
            stats=stats,
        )
        health = self._health
        for trace in self.feed.traces:
            decode_health = getattr(trace, "decode_health", None)
            if decode_health is not None:
                health.ingest.merge(decode_health)

        context = PassContext(
            bootstrap=bootstrap,
            tracks=tracks,
            unify_stats=stats,
            attempt_stats=drive.attempt_assembler.stats,
            exchange_stats=drive.exchange_assembler.stats,
            transport_stats=drive.transport_stats,
            traces=self.feed.traces,
            n_flows=len(flows),
        )
        results = {p.name: p.finish(context) for p in drive.passes}
        if materializer is not None:
            materializer.finish(context)

        report = JigsawReport(
            bootstrap=bootstrap,
            unification=unification,
            attempts=materializer.attempts if materializer is not None else [],
            attempt_stats=drive.attempt_assembler.stats,
            exchanges=(
                materializer.exchanges if materializer is not None else []
            ),
            exchange_stats=drive.exchange_assembler.stats,
            flows=flows,
            transport_stats=drive.transport_stats,
            elapsed_seconds=time.perf_counter() - started_clock,
            passes=results,
            materialized=self.materialize,
            health=health,
        )
        return ServiceReport(
            report=report,
            published=list(self._published.values()),
            checkpoints_written=self._checkpoints_written,
            resumed=self._resumed,
        )


#: Re-exported for callers sizing window widths against the emission lag.
__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "EXCHANGE_REORDER_SLACK_US",
    "JigsawDaemon",
    "ServiceReport",
]
