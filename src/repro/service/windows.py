"""Windowed analysis passes with mid-stream sealing (service mode).

Batch passes surrender one result at ``finish()``.  A daemon never
finishes, so these passes fold their hook events into fixed-width time
windows and surrender each window through
:meth:`~repro.core.passes.PipelinePass.seal_ready` as soon as the
pipeline's emission watermark guarantees no future event can land in it.

Sealing discipline (shared by every pass here):

* windows are half-open ``[id * width, (id + 1) * width)`` on the
  universal timeline, so a window id names the same interval in every
  run and every daemon incarnation;
* window ``w`` seals once ``watermark_us >= (w + 1) * width`` — the
  watermark contract says every jframe/attempt/exchange at or before it
  has been delivered, and events are binned by a timestamp inside their
  window;
* windows seal in ascending id order, each exactly once per instance,
  with empty windows included — the sealed sequence is gap-free, which
  is what makes the crash/resume parity assertion a plain list compare;
* payloads are pure functions of the events fed, never of when
  ``seal_ready`` was called, so a window sealed after a checkpoint
  restore is bit-identical to the uninterrupted run's.

State is plain dicts of counters, so the default pass snapshot protocol
(pickle the instance dict) checkpoints these passes unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.link.attempt import TransmissionAttempt
from ..core.link.exchange import FrameExchange
from ..core.passes import PassContext, PipelinePass, SealedWindow
from ..core.unify.jframe import JFrame, JFrameKind


class _WindowedPass(PipelinePass):
    """Shared windowing machinery: binning, sealing, final flush."""

    name = "windowed"

    def __init__(self, window_us: int) -> None:
        if window_us <= 0:
            raise ValueError("window width must be positive")
        self.window_us = int(window_us)
        #: Accumulators keyed by window id (created on first event).
        self._windows: Dict[int, Dict[str, Any]] = {}
        #: Next window id to seal; everything below is already out.
        self._next_seal = 0
        #: Highest window id any event landed in (-1: none yet).
        self._max_window = -1

    # --- subclass surface -------------------------------------------------

    def _new_payload(self) -> Dict[str, Any]:
        """A fresh (empty) window accumulator."""
        raise NotImplementedError

    # --- binning ----------------------------------------------------------

    def _window_for(self, timestamp_us: float) -> Dict[str, Any]:
        window_id = max(0, int(timestamp_us) // self.window_us)
        if window_id > self._max_window:
            self._max_window = window_id
        payload = self._windows.get(window_id)
        if payload is None:
            payload = self._windows[window_id] = self._new_payload()
        return payload

    # --- sealing ----------------------------------------------------------

    def seal_ready(self, watermark_us: float) -> List[SealedWindow]:
        sealed: List[SealedWindow] = []
        width = self.window_us
        while (
            self._next_seal <= self._max_window
            and (self._next_seal + 1) * width <= watermark_us
        ):
            sealed.append(self._seal_one())
        return sealed

    def _seal_one(self) -> SealedWindow:
        window_id = self._next_seal
        self._next_seal += 1
        width = self.window_us
        payload = self._windows.pop(window_id, None)
        if payload is None:
            payload = self._new_payload()
        return SealedWindow(
            pass_name=self.name,
            window_id=window_id,
            start_us=window_id * width,
            end_us=(window_id + 1) * width,
            payload=payload,
        )

    def finish(self, context: Optional[PassContext]) -> Dict[str, Any]:
        """Seal every remaining window and return the full sequence.

        The daemon publishes the remainder through a final
        ``seal_ready(inf)`` *before* calling ``finish`` — sealing here
        too keeps the pass correct under the plain batch pipeline,
        where nobody ever calls ``seal_ready``.  Both paths converge on
        the same result: sealing is idempotent per window.
        """
        tail: List[SealedWindow] = []
        while self._next_seal <= self._max_window:
            tail.append(self._seal_one())
        return {
            "window_us": self.window_us,
            "n_windows": self._next_seal,
            "tail": tail,
        }


class WindowedSummaryPass(_WindowedPass):
    """Per-window Table 1 digest: jframe kinds, attempts, exchanges."""

    name = "windowed_summary"

    def _new_payload(self) -> Dict[str, Any]:
        return {
            "jframes": 0,
            "valid": 0,
            "corrupt": 0,
            "phy_error": 0,
            "instances": 0,
            "attempts": 0,
            "exchanges": 0,
        }

    def on_jframe(self, jframe: JFrame) -> None:
        payload = self._window_for(jframe.timestamp_us)
        payload["jframes"] += 1
        payload["instances"] += jframe.n_instances
        if jframe.kind is JFrameKind.VALID:
            payload["valid"] += 1
        elif jframe.kind is JFrameKind.CORRUPT:
            payload["corrupt"] += 1
        else:
            payload["phy_error"] += 1

    def on_attempt(self, attempt: TransmissionAttempt) -> None:
        self._window_for(attempt.start_us)["attempts"] += 1

    def on_exchange(self, exchange: FrameExchange) -> None:
        self._window_for(exchange.start_us)["exchanges"] += 1


class WindowedInterferencePass(_WindowedPass):
    """Per-window interference signal: damage counts and dispersion.

    Corrupt and PHY-error jframes are the paper's interference
    observables (Section 6.2); wide dispersion marks transmissions whose
    receptions disagreed in time — both binned per channel so a live
    dashboard can watch contention build window by window.
    """

    name = "windowed_interference"

    def __init__(
        self, window_us: int, dispersion_threshold_us: float = 10.0
    ) -> None:
        super().__init__(window_us)
        self.dispersion_threshold_us = float(dispersion_threshold_us)

    def _new_payload(self) -> Dict[str, Any]:
        return {
            "damaged_by_channel": {},
            "wide_dispersion": 0,
            "dispersion_sum_us": 0.0,
        }

    def on_jframe(self, jframe: JFrame) -> None:
        payload = self._window_for(jframe.timestamp_us)
        if jframe.kind is not JFrameKind.VALID:
            by_channel = payload["damaged_by_channel"]
            by_channel[jframe.channel] = by_channel.get(jframe.channel, 0) + 1
        payload["dispersion_sum_us"] += jframe.dispersion_us
        if jframe.dispersion_us >= self.dispersion_threshold_us:
            payload["wide_dispersion"] += 1


class WindowedLossPass(_WindowedPass):
    """Per-window link-layer delivery: retries, losses, ambiguity."""

    name = "windowed_loss"

    def _new_payload(self) -> Dict[str, Any]:
        return {
            "exchanges": 0,
            "retransmissions": 0,
            "delivered": 0,
            "lost": 0,
            "ambiguous": 0,
        }

    def on_exchange(self, exchange: FrameExchange) -> None:
        payload = self._window_for(exchange.start_us)
        payload["exchanges"] += 1
        payload["retransmissions"] += exchange.retransmissions
        if exchange.delivered is True:
            payload["delivered"] += 1
        elif exchange.delivered is False:
            payload["lost"] += 1
        else:
            payload["ambiguous"] += 1
