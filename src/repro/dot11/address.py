"""48-bit IEEE MAC addresses.

Frames are addressed using 48-bit IEEE MAC addresses (Section 2).  We model
them as an immutable value type wrapping an integer, which keeps trace
records compact and hashing cheap — addresses are dictionary keys throughout
the reconstruction pipeline.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")

#: Locally-administered bit in the first octet.
_LOCAL_BIT = 0x02_00_00_00_00_00
#: Group (multicast/broadcast) bit in the first octet.
_GROUP_BIT = 0x01_00_00_00_00_00


@total_ordering
class MacAddress:
    """An immutable 48-bit IEEE MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF_FFFF_FFFF:
            raise ValueError(f"MAC address out of range: {value:#x}")
        self._value = value

    # --- constructors -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (or dash-separated) notation."""
        if not _MAC_RE.match(text):
            raise ValueError(f"not a MAC address: {text!r}")
        return cls(int(text.replace("-", ":").replace(":", ""), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    # --- representation -----------------------------------------------

    @property
    def value(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    def __str__(self) -> str:
        octets = self.to_bytes()
        return ":".join(f"{b:02x}" for b in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    # --- classification ------------------------------------------------

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFF_FFFF_FFFF

    @property
    def is_multicast(self) -> bool:
        """Group-addressed but not the all-ones broadcast address."""
        return bool(self._value & _GROUP_BIT) and not self.is_broadcast

    @property
    def is_group(self) -> bool:
        """Broadcast or multicast — frames to these are never ACKed."""
        return bool(self._value & _GROUP_BIT)

    @property
    def is_unicast(self) -> bool:
        return not self.is_group

    @property
    def oui(self) -> int:
        """The 24-bit organizationally unique identifier."""
        return self._value >> 24

    # --- dunder plumbing -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)


#: The link-layer broadcast address.
BROADCAST = MacAddress(0xFFFF_FFFF_FFFF)


class MacAllocator:
    """Hands out distinct, locally-administered unicast MAC addresses.

    Scenario construction uses separate allocators per device class so that
    address blocks are recognizable when debugging traces (APs live in one
    block, clients in another).  ``start`` offsets the low 24 bits so
    disjoint deployments (campus buildings) draw from disjoint blocks —
    two buildings must never mint the same BSSID, or their frames become
    content-identical and the unifier/bootstrap would spuriously link
    RF-isolated fleets.
    """

    def __init__(self, base_oui: int, start: int = 1) -> None:
        if not 0 <= base_oui <= 0xFFFFFF:
            raise ValueError("OUI must fit in 24 bits")
        if not 1 <= start <= 0xFFFFFF:
            raise ValueError("allocator start must fit in 24 bits")
        # Force locally-administered, individual (non-group) addressing.
        oui = (base_oui | 0x020000) & ~0x010000
        self._base = oui << 24
        self._next = start

    def allocate(self) -> MacAddress:
        if self._next > 0xFFFFFF:
            raise RuntimeError("MAC allocator exhausted")
        addr = MacAddress(self._base | self._next)
        self._next += 1
        return addr

    def allocate_many(self, count: int) -> Iterator[MacAddress]:
        for _ in range(count):
            yield self.allocate()


#: Conventional OUI blocks used by the scenario builder.
AP_OUI = 0x00_0A_0A        # access points
CLIENT_OUI = 0x00_0C_0C    # wireless clients
WIRED_OUI = 0x00_0E_0E     # wired-side hosts (servers, Vernier tracker)
