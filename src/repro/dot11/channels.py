"""2.4 GHz channel plan.

The monitoring platform captures "all 'non-overlapping' channels (1, 6 and
11) typically used in 802.11b/g deployments" (Section 3.1), and the analysis
notes that "since the platform monitors orthogonal channels, adjacent-channel
interference is rare and co-channel interference from hidden terminals is
likely the dominate cause" (Section 7.2).  We model the 2.4 GHz plan exactly:
channels 1..14, 5 MHz apart, ~22 MHz wide, with a simple spectral-overlap
fraction used by the PHY when deciding whether a transmission on a nearby
channel raises the noise floor at a receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Channels usable in the USA (the paper's deployment).
US_CHANNELS: Tuple[int, ...] = tuple(range(1, 12))

#: The non-overlapping trio used by the production network and monitors.
ORTHOGONAL_CHANNELS: Tuple[int, int, int] = (1, 6, 11)

#: Nominal occupied bandwidth of an 802.11b/g transmission.
CHANNEL_WIDTH_MHZ = 22.0

#: Spacing between adjacent channel center frequencies.
CHANNEL_SPACING_MHZ = 5.0


@dataclass(frozen=True)
class Channel:
    """A 2.4 GHz 802.11 channel."""

    number: int

    def __post_init__(self) -> None:
        if not 1 <= self.number <= 14:
            raise ValueError(f"invalid 2.4 GHz channel: {self.number}")

    @property
    def center_mhz(self) -> float:
        if self.number == 14:
            return 2484.0
        return 2412.0 + (self.number - 1) * CHANNEL_SPACING_MHZ

    def overlap_fraction(self, other: "Channel") -> float:
        """Fraction of spectral power from ``other`` landing in this channel.

        A triangular overlap model: 1.0 for co-channel, decaying linearly to
        zero at >= 5 channels (25 MHz) separation — which makes channels
        1/6/11 orthogonal, as the paper assumes.
        """
        separation_mhz = abs(self.center_mhz - other.center_mhz)
        if separation_mhz >= CHANNEL_WIDTH_MHZ + 3.0:
            return 0.0
        return max(0.0, 1.0 - separation_mhz / (CHANNEL_WIDTH_MHZ + 3.0))

    def is_orthogonal_to(self, other: "Channel") -> bool:
        return self.overlap_fraction(other) == 0.0

    def __str__(self) -> str:
        return f"ch{self.number}"


CHANNEL_1 = Channel(1)
CHANNEL_6 = Channel(6)
CHANNEL_11 = Channel(11)
