"""PHY rates and airtime arithmetic for 802.11b/g.

Every client "is responsible for choosing the rate to transmit each frame
and this choice is encoded in the PLCP header at a 'slow' rate" (Section 2).
Airtime math matters twice in this reproduction:

* the MAC simulator must occupy the medium for the correct duration, and
* the duration *field* carried in CTS/DATA frames is what the link-layer
  reconstruction uses "to deduce the future time in which an ACK, if sent,
  must have been received" (Section 5.1).

Footnote 7 of the paper works an explicit protection-mode overhead example;
:func:`protection_overhead_factor` reproduces that arithmetic and is checked
against the paper's 1.98 figure in the test suite.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from .constants import (
    ACK_FRAME_BYTES,
    CTS_FRAME_BYTES,
    OFDM_SIGNAL_EXTENSION_US,
    OFDM_SYMBOL_US,
    PLCP_LONG_US,
    PLCP_OFDM_US,
    PLCP_SHORT_US,
    SIFS_US,
)


class Modulation(enum.Enum):
    """Physical-layer family: DSSS/CCK (802.11b) or ERP-OFDM (802.11g)."""

    CCK = "cck"
    OFDM = "ofdm"


@dataclass(frozen=True)
class PhyRate:
    """A single PHY rate: coded bit rate plus the modulation that carries it."""

    mbps: float
    modulation: Modulation

    @property
    def bits_per_us(self) -> float:
        return self.mbps

    @property
    def is_ofdm(self) -> bool:
        return self.modulation is Modulation.OFDM

    @property
    def is_cck(self) -> bool:
        return self.modulation is Modulation.CCK

    def __str__(self) -> str:
        mbps = int(self.mbps) if self.mbps == int(self.mbps) else self.mbps
        return f"{mbps}Mbps/{self.modulation.value}"


# --- rate tables -------------------------------------------------------------

RATE_1 = PhyRate(1.0, Modulation.CCK)
RATE_2 = PhyRate(2.0, Modulation.CCK)
RATE_5_5 = PhyRate(5.5, Modulation.CCK)
RATE_11 = PhyRate(11.0, Modulation.CCK)

RATE_6 = PhyRate(6.0, Modulation.OFDM)
RATE_9 = PhyRate(9.0, Modulation.OFDM)
RATE_12 = PhyRate(12.0, Modulation.OFDM)
RATE_18 = PhyRate(18.0, Modulation.OFDM)
RATE_24 = PhyRate(24.0, Modulation.OFDM)
RATE_36 = PhyRate(36.0, Modulation.OFDM)
RATE_48 = PhyRate(48.0, Modulation.OFDM)
RATE_54 = PhyRate(54.0, Modulation.OFDM)

#: 802.11b rate set (CCK, coded rates up to 11 Mbps — Section 2).
B_RATES: Tuple[PhyRate, ...] = (RATE_1, RATE_2, RATE_5_5, RATE_11)

#: 802.11g OFDM rate set (coded up to 54 Mbps — Section 2).
G_RATES: Tuple[PhyRate, ...] = (
    RATE_6, RATE_9, RATE_12, RATE_18, RATE_24, RATE_36, RATE_48, RATE_54,
)

#: Full b/g rate set in ascending order.
ALL_RATES: Tuple[PhyRate, ...] = tuple(
    sorted(B_RATES + G_RATES, key=lambda r: r.mbps)
)

#: Minimum SNR (dB) required to decode each rate with high probability.
#: Derived from standard receiver-sensitivity ladders; the reception model
#: perturbs around these thresholds.
RATE_SNR_THRESHOLDS_DB = {
    RATE_1: 2.0,
    RATE_2: 4.0,
    RATE_5_5: 7.0,
    RATE_11: 10.0,
    RATE_6: 6.0,
    RATE_9: 8.0,
    RATE_12: 10.0,
    RATE_18: 12.0,
    RATE_24: 16.0,
    RATE_36: 20.0,
    RATE_48: 24.0,
    RATE_54: 26.0,
}


def rate_from_mbps(mbps: float) -> PhyRate:
    """Look up a canonical :class:`PhyRate` by its coded Mbps value."""
    for rate in ALL_RATES:
        if rate.mbps == mbps:
            return rate
    raise ValueError(f"no 802.11b/g rate with {mbps} Mbps")


def next_lower_rate(rate: PhyRate, allowed: Sequence[PhyRate]) -> PhyRate:
    """Rate to fall back to after a loss (never increases — Section 5.1).

    Returns the highest rate in ``allowed`` strictly below ``rate``, or
    ``rate`` itself when it is already the lowest allowed rate.
    """
    lower = [r for r in allowed if r.mbps < rate.mbps]
    if not lower:
        return rate
    return max(lower, key=lambda r: r.mbps)


# --- airtime -----------------------------------------------------------------


def plcp_duration_us(rate: PhyRate, short_preamble: bool = False) -> int:
    """PLCP preamble + header airtime for a frame sent at ``rate``."""
    if rate.is_ofdm:
        return PLCP_OFDM_US
    if short_preamble and rate is not RATE_1:
        return PLCP_SHORT_US
    return PLCP_LONG_US


def payload_duration_us(size_bytes: int, rate: PhyRate) -> int:
    """Airtime of the MAC frame body (header + payload + FCS) at ``rate``.

    OFDM transmissions are quantized to whole 4 us symbols (plus the 6 us
    signal extension ERP requires in 2.4 GHz); CCK is a straight
    bits-over-rate division rounded up to whole microseconds.
    """
    if size_bytes < 0:
        raise ValueError("frame size must be non-negative")
    bits = size_bytes * 8
    if rate.is_ofdm:
        # 16 service bits + 6 tail bits join the PSDU inside the DATA field.
        data_bits = 16 + bits + 6
        bits_per_symbol = rate.mbps * OFDM_SYMBOL_US
        symbols = math.ceil(data_bits / bits_per_symbol)
        return symbols * OFDM_SYMBOL_US + OFDM_SIGNAL_EXTENSION_US
    return math.ceil(bits / rate.bits_per_us)


def frame_airtime_us(
    size_bytes: int, rate: PhyRate, short_preamble: bool = False
) -> int:
    """Total on-air duration of one frame: PLCP + body."""
    return plcp_duration_us(rate, short_preamble) + payload_duration_us(
        size_bytes, rate
    )


def ack_airtime_us(rate: PhyRate) -> int:
    """Airtime of an ACK control frame sent at ``rate``."""
    return frame_airtime_us(ACK_FRAME_BYTES, rate)


def cts_airtime_us(rate: PhyRate) -> int:
    """Airtime of a CTS control frame sent at ``rate``."""
    return frame_airtime_us(CTS_FRAME_BYTES, rate)


def ack_rate_for(data_rate: PhyRate) -> PhyRate:
    """Basic rate used for the ACK answering a DATA frame at ``data_rate``.

    Control responses use the highest *basic* rate not exceeding the data
    rate; we use the conventional basic sets {1, 2, 5.5, 11} for CCK and
    {6, 12, 24} for OFDM.
    """
    if data_rate.is_ofdm:
        basics = (RATE_6, RATE_12, RATE_24)
    else:
        basics = B_RATES
    eligible = [r for r in basics if r.mbps <= data_rate.mbps]
    if not eligible:
        return basics[0]
    return max(eligible, key=lambda r: r.mbps)


def duration_field_us(payload_airtime_remaining_us: int) -> int:
    """Clamp a computed duration value into the 15-bit Duration/ID field."""
    return max(0, min(payload_airtime_remaining_us, 0x7FFF))


def data_duration_field_us(ack_rate: PhyRate) -> int:
    """Duration field carried by a unicast DATA frame.

    The field covers everything after this frame needed to finish the
    exchange: SIFS + ACK (Section 2: "the number of microseconds needed to
    complete the transaction (including any acknowledgments)").
    """
    return duration_field_us(SIFS_US + ack_airtime_us(ack_rate))


def cts_to_self_duration_field_us(
    data_size_bytes: int, data_rate: PhyRate, ack_rate: PhyRate
) -> int:
    """Duration field on a CTS-to-self protecting an 802.11g exchange.

    Reserves the channel for SIFS + DATA + SIFS + ACK.
    """
    remaining = (
        SIFS_US
        + frame_airtime_us(data_size_bytes, data_rate)
        + SIFS_US
        + ack_airtime_us(ack_rate)
    )
    return duration_field_us(remaining)


# --- footnote 7: protection overhead -----------------------------------------


def protection_overhead_factor(
    mss_bytes: int = 1500,
    data_rate: PhyRate = RATE_54,
    cts_rate: PhyRate = RATE_2,
) -> float:
    """Reproduce footnote 7's protection-mode overhead arithmetic.

    The paper computes the potential throughput improvement from disabling
    CTS-to-self protection for a full-size TCP segment at 54 Mbps:

        (248 + 16 + 248 + 16 + 28 + 32/2*20) / (248 + 16 + 28 + 16/2*20) = 1.98

    where 248 us is the CTS at 2 Mbps with long preamble, 16 us the (OFDM)
    SIFS, 248 us the MSS data frame at 54 Mbps, 28 us the OFDM ACK, and the
    backoff term uses the long slot (20 us) with CW/2 expected slots —
    CW 32 in mixed b/g mode, CW 16 in pure-g mode.

    We recompute each term from our own airtime model rather than hard-coding
    the paper's numbers; the test suite asserts the result is ~1.98.
    """
    cts_us = cts_airtime_us(cts_rate)
    sifs = 16  # the paper's footnote uses the OFDM SIFS figure
    data_us = frame_airtime_us(mss_bytes, data_rate)
    ack_us = ack_airtime_us(ack_rate_for(data_rate))
    backoff_protected = (32 / 2) * 20
    backoff_clean = (16 / 2) * 20
    protected = cts_us + sifs + data_us + sifs + ack_us + backoff_protected
    clean = data_us + sifs + ack_us + backoff_clean
    return protected / clean
