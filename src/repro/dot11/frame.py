"""802.11 MAC frame model.

A single :class:`Frame` dataclass covers the frame types Jigsaw's
reconstruction cares about (Section 2):

* DATA frames carrying LLC/IP/TCP payloads (with 12-bit sequence numbers
  and the retry bit used by the exchange FSM);
* ACK / RTS / CTS control frames, which "only specify the transmitter or
  receiver";
* BEACON and PROBE management frames "used to discover the presence and
  capabilities of access points";
* ASSOCIATION and AUTHENTICATION management frames "used to specifically
  connect a client to an access point".

Frames are *content*; transmission metadata (rate, channel, time, power)
lives on the simulator's transmission events and the monitors' trace
records, matching the real split between a frame and its radiotap header.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from .address import BROADCAST, MacAddress
from .constants import (
    ACK_FRAME_BYTES,
    CTS_FRAME_BYTES,
    DATA_HEADER_BYTES,
    DEFAULT_BEACON_BODY_BYTES,
    RTS_FRAME_BYTES,
    SEQ_MODULO,
)


class FrameType(enum.Enum):
    """MAC frame subtype, collapsed to the distinctions Jigsaw uses."""

    DATA = "data"
    ACK = "ack"
    RTS = "rts"
    CTS = "cts"
    BEACON = "beacon"
    PROBE_REQUEST = "probe_req"
    PROBE_RESPONSE = "probe_resp"
    ASSOC_REQUEST = "assoc_req"
    ASSOC_RESPONSE = "assoc_resp"
    AUTH = "auth"
    DEAUTH = "deauth"
    DISASSOC = "disassoc"

    @property
    def is_control(self) -> bool:
        return self in _CONTROL_TYPES

    @property
    def is_management(self) -> bool:
        return self in _MANAGEMENT_TYPES

    @property
    def is_data(self) -> bool:
        return self is FrameType.DATA

    @property
    def carries_sequence(self) -> bool:
        """DATA and MANAGEMENT frames carry sequence numbers (Section 2)."""
        return self not in _CONTROL_TYPES


_CONTROL_TYPES = frozenset((FrameType.ACK, FrameType.RTS, FrameType.CTS))
_MANAGEMENT_TYPES = frozenset(
    (
        FrameType.BEACON,
        FrameType.PROBE_REQUEST,
        FrameType.PROBE_RESPONSE,
        FrameType.ASSOC_REQUEST,
        FrameType.ASSOC_RESPONSE,
        FrameType.AUTH,
        FrameType.DEAUTH,
        FrameType.DISASSOC,
    )
)


@dataclass(frozen=True)
class Frame:
    """An 802.11 MAC frame.

    ``addr1`` is the receiver address (RA) and is present on every frame.
    ``addr2`` is the transmitter address (TA); it is ``None`` on ACK and CTS
    frames other than CTS-to-self (a CTS-to-self carries the sender in RA,
    so it is still addressable — see :func:`make_cts_to_self`).  ``addr3``
    carries the BSSID (or DA/SA depending on ToDS/FromDS) for DATA and
    management frames.
    """

    ftype: FrameType
    addr1: MacAddress
    addr2: Optional[MacAddress] = None
    addr3: Optional[MacAddress] = None
    duration_us: int = 0
    seq: Optional[int] = None
    retry: bool = False
    to_ds: bool = False
    from_ds: bool = False
    body: bytes = b""

    def __post_init__(self) -> None:
        seq = self.seq
        if self.ftype in _CONTROL_TYPES:
            if seq is not None:
                raise ValueError(f"{self.ftype} frames carry no sequence number")
        elif seq is None:
            raise ValueError(f"{self.ftype} frames require a sequence number")
        elif not 0 <= seq < SEQ_MODULO:
            raise ValueError(f"sequence number out of range: {seq}")
        if not 0 <= self.duration_us <= 0xFFFF:
            raise ValueError(f"duration field out of range: {self.duration_us}")

    # --- addressing helpers ------------------------------------------------

    @property
    def transmitter(self) -> Optional[MacAddress]:
        """The station that sent this frame, when the frame names it.

        For ACK and plain CTS frames the transmitter is anonymous; for
        CTS-to-self the RA *is* the transmitter, but a receiver cannot know
        that from the frame alone, so we conservatively return ``None`` and
        let the link-layer reconstruction resolve it from context.
        """
        return self.addr2

    @property
    def receiver(self) -> MacAddress:
        return self.addr1

    @property
    def bssid(self) -> Optional[MacAddress]:
        return self.addr3

    @property
    def is_broadcast(self) -> bool:
        return self.addr1.is_broadcast

    @property
    def is_group_addressed(self) -> bool:
        return self.addr1.is_group

    @property
    def expects_ack(self) -> bool:
        """Unicast DATA/management frames elicit an immediate ACK."""
        return (
            self.ftype.carries_sequence
            and self.addr1.is_unicast
        )

    # --- size ---------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """On-air MAC frame size including header and FCS."""
        if self.ftype is FrameType.ACK:
            return ACK_FRAME_BYTES
        if self.ftype is FrameType.CTS:
            return CTS_FRAME_BYTES
        if self.ftype is FrameType.RTS:
            return RTS_FRAME_BYTES
        # DATA and management frames share the 3-address header layout.
        return DATA_HEADER_BYTES + len(self.body)

    # --- mutation helpers ----------------------------------------------------

    def as_retry(self) -> "Frame":
        """A copy of this frame with the retry bit set (retransmission)."""
        return replace(self, retry=True)

    def with_duration(self, duration_us: int) -> "Frame":
        return replace(self, duration_us=duration_us)

    def __str__(self) -> str:
        seq = f" seq={self.seq}" if self.seq is not None else ""
        retry = " retry" if self.retry else ""
        src = f" {self.addr2}->" if self.addr2 is not None else " ?->"
        return f"<{self.ftype.value}{src}{self.addr1}{seq}{retry} dur={self.duration_us}>"


# --- factories ---------------------------------------------------------------


def make_data(
    src: MacAddress,
    dst: MacAddress,
    bssid: MacAddress,
    seq: int,
    body: bytes,
    duration_us: int = 0,
    retry: bool = False,
    to_ds: bool = False,
    from_ds: bool = False,
) -> Frame:
    """A DATA frame from ``src`` to ``dst`` within ``bssid``."""
    return Frame(
        ftype=FrameType.DATA,
        addr1=dst,
        addr2=src,
        addr3=bssid,
        duration_us=duration_us,
        seq=seq,
        retry=retry,
        to_ds=to_ds,
        from_ds=from_ds,
        body=body,
    )


def make_ack(receiver: MacAddress) -> Frame:
    """An ACK addressed to the station whose frame is being acknowledged."""
    return Frame(ftype=FrameType.ACK, addr1=receiver, duration_us=0)


def make_rts(src: MacAddress, dst: MacAddress, duration_us: int) -> Frame:
    return Frame(
        ftype=FrameType.RTS, addr1=dst, addr2=src, duration_us=duration_us
    )


def make_cts(receiver: MacAddress, duration_us: int) -> Frame:
    """A CTS answering an RTS (addressed to the RTS sender)."""
    return Frame(ftype=FrameType.CTS, addr1=receiver, duration_us=duration_us)


def make_cts_to_self(sender: MacAddress, duration_us: int) -> Frame:
    """A CTS-to-self used for 802.11g protection (Section 2).

    The RA is the *sender's own address*, which is how the link-layer
    reconstruction attributes the protection frame: "CTS-to-self frames
    (used for 802.11g protection) do as well [carry the sender address]"
    (Section 5.1).
    """
    return Frame(ftype=FrameType.CTS, addr1=sender, duration_us=duration_us)


def make_beacon(
    ap: MacAddress,
    seq: int,
    ssid: str = "jigsaw",
    body_bytes: int = DEFAULT_BEACON_BODY_BYTES,
    protection: bool = False,
) -> Frame:
    """A broadcast beacon from an AP.

    The body embeds the SSID and the ERP protection flag (as the real ERP
    information element does) then pads to ``body_bytes``, so beacons from
    different APs differ in content only via addr2/addr3/seq/flags —
    periodic and content-stable like the real thing.
    """
    flag = b"|prot" if protection else b"|free"
    ssid_bytes = ssid.encode()[:32] + flag
    padding = max(0, body_bytes - len(ssid_bytes))
    return Frame(
        ftype=FrameType.BEACON,
        addr1=BROADCAST,
        addr2=ap,
        addr3=ap,
        seq=seq,
        from_ds=True,
        body=ssid_bytes + b"\x00" * padding,
    )


def beacon_advertises_protection(frame: Frame) -> bool:
    """Read the ERP-protection flag back out of a beacon body."""
    return frame.ftype is FrameType.BEACON and b"|prot" in frame.body


def make_probe_request(
    client: MacAddress, seq: int, ssid: str = "", supports_ofdm: bool = True
) -> Frame:
    """A broadcast probe request from a client scanning for APs.

    The body carries the client's supported-rates marker, as real probe
    requests do — this is how APs (and the Section 7.3 analysis) learn that
    a legacy 802.11b client is in range.
    """
    marker = b"|ofdm" if supports_ofdm else b"|cck-only"
    return Frame(
        ftype=FrameType.PROBE_REQUEST,
        addr1=BROADCAST,
        addr2=client,
        addr3=BROADCAST,
        seq=seq,
        body=ssid.encode()[:32] + marker,
    )


def frame_marks_cck_only(frame: Frame) -> bool:
    """True when a probe/assoc request advertises CCK-only (802.11b) rates."""
    return frame.ftype in (FrameType.PROBE_REQUEST, FrameType.ASSOC_REQUEST) and (
        frame.body.endswith(b"cck-only")
    )


def make_probe_response(
    ap: MacAddress, client: MacAddress, seq: int, ssid: str = "jigsaw"
) -> Frame:
    """A unicast probe response; Section 7.3 uses these to estimate client
    transmission range for the protection-mode analysis."""
    return Frame(
        ftype=FrameType.PROBE_RESPONSE,
        addr1=client,
        addr2=ap,
        addr3=ap,
        seq=seq,
        from_ds=True,
        body=ssid.encode()[:32] + b"\x00" * 16,
    )


def make_assoc_request(
    client: MacAddress, ap: MacAddress, seq: int, supports_ofdm: bool
) -> Frame:
    """An association request; the body encodes the client's rate support so
    the AP can apply its protection-mode policy (Section 7.3)."""
    marker = b"ofdm" if supports_ofdm else b"cck-only"
    return Frame(
        ftype=FrameType.ASSOC_REQUEST,
        addr1=ap,
        addr2=client,
        addr3=ap,
        seq=seq,
        to_ds=False,
        body=marker,
    )


def make_assoc_response(
    ap: MacAddress, client: MacAddress, seq: int, success: bool = True
) -> Frame:
    status = b"\x00\x00" if success else b"\x01\x00"
    return Frame(
        ftype=FrameType.ASSOC_RESPONSE,
        addr1=client,
        addr2=ap,
        addr3=ap,
        seq=seq,
        body=status,
    )


def make_auth(
    initiator: MacAddress, responder: MacAddress, seq: int, step: int
) -> Frame:
    """An authentication frame (open system, two-step handshake)."""
    return Frame(
        ftype=FrameType.AUTH,
        addr1=responder,
        addr2=initiator,
        addr3=responder,
        seq=seq,
        body=step.to_bytes(2, "little"),
    )


def make_deauth(src: MacAddress, dst: MacAddress, seq: int, reason: int = 3) -> Frame:
    return Frame(
        ftype=FrameType.DEAUTH,
        addr1=dst,
        addr2=src,
        addr3=src,
        seq=seq,
        body=reason.to_bytes(2, "little"),
    )
