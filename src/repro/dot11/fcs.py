"""Frame check sequence (FCS) — the 32-bit CRC trailing every 802.11 frame.

The unification fast path "compares frame length, rate, and FCS fields first
and short-circuits the comparison on failure" (Section 4.2), and the capture
pipeline classifies receptions as valid or CRC-errored by FCS check, so we
carry a real CRC-32 rather than a boolean.
"""

from __future__ import annotations

import zlib


def fcs32(data: bytes) -> int:
    """Compute the 802.11 FCS over a serialized MAC frame body."""
    return zlib.crc32(data) & 0xFFFFFFFF


def append_fcs(data: bytes) -> bytes:
    """Return ``data`` with its 4-byte little-endian FCS appended."""
    return data + fcs32(data).to_bytes(4, "little")


def check_fcs(frame_with_fcs: bytes) -> bool:
    """True when the trailing FCS matches the frame contents."""
    if len(frame_with_fcs) < 4:
        return False
    body, trailer = frame_with_fcs[:-4], frame_with_fcs[-4:]
    return fcs32(body) == int.from_bytes(trailer, "little")


def strip_fcs(frame_with_fcs: bytes) -> bytes:
    """Drop the 4-byte FCS trailer (no validity check)."""
    if len(frame_with_fcs) < 4:
        raise ValueError("frame shorter than an FCS")
    return frame_with_fcs[:-4]
