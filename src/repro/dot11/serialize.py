"""Frame serialization — the byte representation monitors capture.

Jigsaw's unification works on captured *bytes*: it performs "content
comparisons" between instances, short-circuiting on length/FCS mismatch
(Section 4.2), and corrupted receptions are byte-level damaged copies.  We
therefore define a compact deterministic wire format with a trailing FCS.
The format is not the IEEE layout bit-for-bit (we collapse subtype encoding
into one byte), but it preserves every property the algorithms rely on:
per-frame FCS, truncatability, and byte-comparable content.
"""

from __future__ import annotations

import struct
from typing import Optional

from .address import MacAddress
from .fcs import append_fcs, check_fcs
from .frame import Frame, FrameType

#: Stable on-wire order of frame types (index = wire id).
_WIRE_TYPES = tuple(FrameType)
_TYPE_TO_WIRE = {ftype: i for i, ftype in enumerate(_WIRE_TYPES)}

_FLAG_RETRY = 1 << 0
_FLAG_TO_DS = 1 << 1
_FLAG_FROM_DS = 1 << 2
_FLAG_HAS_ADDR2 = 1 << 3
_FLAG_HAS_ADDR3 = 1 << 4
_FLAG_HAS_SEQ = 1 << 5

_HEADER = struct.Struct("<BBH")  # type, flags, duration


class FrameParseError(ValueError):
    """Raised when bytes cannot be decoded into a frame."""


def frame_to_bytes(frame: Frame) -> bytes:
    """Serialize ``frame`` to its on-air byte representation (with FCS)."""
    flags = 0
    if frame.retry:
        flags |= _FLAG_RETRY
    if frame.to_ds:
        flags |= _FLAG_TO_DS
    if frame.from_ds:
        flags |= _FLAG_FROM_DS
    if frame.addr2 is not None:
        flags |= _FLAG_HAS_ADDR2
    if frame.addr3 is not None:
        flags |= _FLAG_HAS_ADDR3
    if frame.seq is not None:
        flags |= _FLAG_HAS_SEQ

    parts = [
        _HEADER.pack(_TYPE_TO_WIRE[frame.ftype], flags, frame.duration_us),
        frame.addr1.to_bytes(),
    ]
    if frame.addr2 is not None:
        parts.append(frame.addr2.to_bytes())
    if frame.addr3 is not None:
        parts.append(frame.addr3.to_bytes())
    if frame.seq is not None:
        parts.append(struct.pack("<H", frame.seq))
    parts.append(frame.body)
    return append_fcs(b"".join(parts))


def frame_from_bytes(raw: bytes, verify_fcs: bool = True) -> Frame:
    """Decode bytes back into a :class:`Frame`.

    Raises :class:`FrameParseError` on truncation, unknown type codes, or —
    when ``verify_fcs`` — FCS mismatch.  Corrupted captures typically fail
    here and stay byte-blobs in the pipeline, as in the real system where
    "these frames are not directly used for any higher-layer
    reconstruction" (Section 4.2).
    """
    if verify_fcs and not check_fcs(raw):
        raise FrameParseError("FCS check failed")
    return frame_from_capture(raw[:-4])


def frame_from_capture(data: bytes) -> Frame:
    """Decode a *FCS-stripped, possibly payload-truncated* capture.

    The capture pipeline snaps frames to 200 payload bytes (Section 5), so
    a long DATA frame's trailing body — and its FCS — are absent from the
    record.  Header fields and the leading payload bytes are what the
    reconstruction consumes, and those parse fine from the snap.
    """
    if len(data) < _HEADER.size + 6:
        raise FrameParseError("frame too short")
    wire_type, flags, duration = _HEADER.unpack_from(data, 0)
    if wire_type >= len(_WIRE_TYPES):
        raise FrameParseError(f"unknown frame type code {wire_type}")
    offset = _HEADER.size
    try:
        addr1 = MacAddress.from_bytes(data[offset:offset + 6])
        offset += 6
        addr2: Optional[MacAddress] = None
        if flags & _FLAG_HAS_ADDR2:
            addr2 = MacAddress.from_bytes(data[offset:offset + 6])
            offset += 6
        addr3: Optional[MacAddress] = None
        if flags & _FLAG_HAS_ADDR3:
            addr3 = MacAddress.from_bytes(data[offset:offset + 6])
            offset += 6
        seq: Optional[int] = None
        if flags & _FLAG_HAS_SEQ:
            (seq,) = struct.unpack_from("<H", data, offset)
            offset += 2
    except (ValueError, struct.error) as exc:
        raise FrameParseError(str(exc)) from exc

    body = data[offset:]
    try:
        return Frame(
            ftype=_WIRE_TYPES[wire_type],
            addr1=addr1,
            addr2=addr2,
            addr3=addr3,
            duration_us=duration,
            seq=seq,
            retry=bool(flags & _FLAG_RETRY),
            to_ds=bool(flags & _FLAG_TO_DS),
            from_ds=bool(flags & _FLAG_FROM_DS),
            body=body,
        )
    except ValueError as exc:
        raise FrameParseError(str(exc)) from exc


def transmitter_from_corrupt_bytes(raw: bytes) -> Optional[MacAddress]:
    """Best-effort transmitter-address extraction from a damaged capture.

    For partially received or corrupted frames Jigsaw "simply matches on the
    transmitter's address field" (Section 4.2).  The address survives when
    the damage lies beyond the header, which is the common case for long
    data frames.
    """
    if len(raw) < _HEADER.size + 12:
        return None
    _, flags, _ = _HEADER.unpack_from(raw, 0)
    if not flags & _FLAG_HAS_ADDR2:
        return None
    offset = _HEADER.size + 6
    try:
        return MacAddress.from_bytes(raw[offset:offset + 6])
    except ValueError:
        return None
