"""802.11b/g MAC and PHY timing constants.

All times are in integer microseconds, matching the 1 us resolution of the
Atheros capture clock used by the paper's monitors (Section 3.3).  Values
follow IEEE 802.11-1999 (DSSS/CCK) and 802.11g-2003 (ERP-OFDM) for the
2.4 GHz band, which is the environment Jigsaw monitors (802.11b/g only).
"""

from __future__ import annotations

# --- Slot and interframe spacing (2.4 GHz) ---------------------------------

#: Slot time for 802.11b and for 802.11g when any non-ERP (11b) station is
#: present.  The paper uses 20 us as "the precision of a physical layer slot
#: time" target for synchronization (Section 4).
SLOT_TIME_LONG_US = 20

#: Short slot time available to pure-802.11g BSSes.
SLOT_TIME_SHORT_US = 9

#: Short interframe space: gap between a DATA frame and its ACK, or between
#: a CTS and the protected frame.
SIFS_US = 10

#: Extended SIFS used by ERP-OFDM in mixed mode (footnote 7 of the paper
#: uses 16 us as the SIFS figure in its protection-overhead arithmetic; that
#: value is SIFS + OFDM signal extension and we expose it separately).
SIFS_OFDM_US = 16

#: DIFS = SIFS + 2 * slot.  DCF waits this long on an idle channel before
#: transmitting or starting backoff.
DIFS_US = SIFS_US + 2 * SLOT_TIME_LONG_US

#: EIFS follows an erroneous reception (rough 802.11b value; exact value
#: depends on ACK duration at the lowest basic rate).
EIFS_US = 364

# --- Contention window ------------------------------------------------------

#: Initial contention window (CWmin) for DSSS/CCK PHYs.
CW_MIN = 31

#: Maximum contention window.
CW_MAX = 1023

#: 802.11 dot11LongRetryLimit default; transmissions are abandoned after
#: this many attempts.
RETRY_LIMIT = 7

# --- PLCP preamble/header durations ----------------------------------------

#: Long PLCP preamble + header (1 Mbps DBPSK), mandatory for 1 Mbps frames
#: and used by "legacy" devices: 144 us preamble + 48 us header.
PLCP_LONG_US = 192

#: Short PLCP preamble + header (allowed for 2/5.5/11 Mbps): 72 + 24 us.
PLCP_SHORT_US = 96

#: OFDM PLCP preamble (16 us) + SIGNAL field (4 us) for 802.11g rates.
PLCP_OFDM_US = 20

#: OFDM symbol duration; payload airtime is quantized to whole symbols.
OFDM_SYMBOL_US = 4

#: OFDM signal extension appended to ERP frames in the 2.4 GHz band.
OFDM_SIGNAL_EXTENSION_US = 6

# --- Frame sizes ------------------------------------------------------------

#: Bytes of MAC overhead on a DATA frame: frame control (2), duration (2),
#: three addresses (18), sequence control (2), FCS (4).
DATA_HEADER_BYTES = 28

#: ACK and CTS frames: frame control (2), duration (2), RA (6), FCS (4).
ACK_FRAME_BYTES = 14
CTS_FRAME_BYTES = 14

#: RTS frame: frame control (2), duration (2), RA (6), TA (6), FCS (4).
RTS_FRAME_BYTES = 20

#: Typical beacon body (timestamp, interval, capabilities, SSID, rates,
#: TIM...) used when a scenario does not specify a size.
DEFAULT_BEACON_BODY_BYTES = 80

#: LLC/SNAP encapsulation header preceding IP payloads on 802.11.
LLC_SNAP_BYTES = 8

#: The capture pipeline stores at most this many payload bytes per frame
#: ("each frame contains up to 200 bytes of payload", Section 5).
CAPTURE_SNAP_BYTES = 200

# --- Sequence numbers -------------------------------------------------------

#: DATA/MANAGEMENT frames carry a 12-bit monotonically increasing sequence
#: number (Section 2).
SEQ_MODULO = 4096

# --- Timing facts used by reconstruction ------------------------------------

#: "almost all frame exchanges can complete within 500 ms" (Section 5.1);
#: the exchange FSM uses this as its staleness horizon.
EXCHANGE_HORIZON_US = 500_000

#: Beacon period: "rarely over 100 ms since this is roughly the period
#: between AP beacon frames" (Section 4.2).
BEACON_INTERVAL_US = 102_400  # 100 TU of 1024 us, the common default

#: 802.11 mandates clock accuracy of at least 100 PPM (Section 4.2).
MAX_CLOCK_SKEW_PPM = 100.0

#: ACK timeout: how long a sender waits for the ACK before scheduling a
#: retransmission (SIFS + slot + PLCP is the standard formulation).
ACK_TIMEOUT_US = SIFS_US + SLOT_TIME_LONG_US + PLCP_LONG_US

#: Propagation delay is "effectively instantaneous -- less than 1
#: microsecond to cover 500 meters" (Section 4); the simulator treats all
#: receptions of a transmission as simultaneous, as Jigsaw assumes.
PROPAGATION_DELAY_US = 0
