"""Scenario runner: build the world, run it, hand back every artifact.

This is the substrate's top-level entry point.  Given a
:class:`ScenarioConfig` it assembles the building, the production network
(APs + clients + wired distribution), the monitoring infrastructure (pods
of monitor radios with imperfect clocks), ARP broadcast sources, and the
TCP workload; runs the discrete-event kernel; and returns a
:class:`SimulationArtifacts` bundle containing

* the 150+ per-radio monitor traces (Jigsaw's *input*),
* the wired distribution-network trace (the Section 6 coverage oracle),
* the medium's ground-truth transmission history and flow outcomes (the
  oracle the evaluation scores reconstruction against).

The build phase is separated from execution (:func:`build_scenario` /
:func:`finalize_scenario`) so the streaming feed in
:mod:`repro.sim.stream` can advance the same world incrementally, handing
monitor records to the pipeline as the simulation produces them.

Randomness is split two ways.  The *core* draws — AP/pod/station seeds,
office placements, wired loss, the flow schedule — come from one
seed-chained master generator whose draw order is frozen (regression
suites pin traces produced by it).  Every *composable* behavior on top
(roaming schedules, arrival-wave start times, and any future component)
draws from its own :class:`~repro.sim.scenario.ScenarioStreams` spawn-key
stream, so enabling one component never perturbs another's randomness —
the property the scenario registry's seed-stability tests hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..dot11.address import AP_OUI, CLIENT_OUI, MacAddress, MacAllocator
from ..jtrace.io import RadioTrace
from ..mac.ap import AccessPoint
from ..mac.medium import Medium, Transmission
from ..mac.station import Station
from ..monitor.radio import SensorPod, build_pod
from ..net.arp import ScanArpSource, VernierTracker
from ..net.wired import WiredNetwork, WiredTraceRecord
from ..phy.noisefloor import BroadbandInterferer
from ..phy.propagation import Point, PropagationModel
from ..sim.building import (
    Building,
    Placement,
    assign_channels,
    pod_reduction_order,
)
from ..sim.kernel import Kernel
from ..sim.scenario import ScenarioConfig, ScenarioStreams
from ..sim.workload import FlowRequest, generate_flows
from ..tcp.driver import FlowDriver, FlowOutcome, HostStack, StationStack

#: Wired-side IP plan.
SERVER_IP_BASE = 0xAC_10_00_00      # 172.16.0.0/16: servers
CLIENT_IP_BASE = 0x0A_00_00_00      # 10.0.0.0/16: wireless clients
VERNIER_IP = SERVER_IP_BASE | 0xFFFF


@dataclass(frozen=True)
class RoamEvent:
    """Ground truth for one client handoff (AP actually changed)."""

    time_us: int
    station_index: int
    from_ap: MacAddress
    to_ap: MacAddress
    position: Point


@dataclass
class SimulationArtifacts:
    """Everything a run produces, oracle included."""

    config: ScenarioConfig
    building: Building
    medium: Medium
    wired: WiredNetwork
    aps: List[AccessPoint]
    ap_placements: List[Placement]
    stations: List[Station]
    station_placements: List[Placement]
    pods: List[SensorPod]
    pod_placements: List[Placement]
    flows: List[FlowRequest]
    flow_outcomes: List[FlowOutcome]
    events_run: int
    roam_events: List[RoamEvent] = field(default_factory=list)

    @property
    def radio_traces(self) -> List[RadioTrace]:
        """The monitor traces — Jigsaw's input.

        Empty for a streamed run: :func:`repro.sim.stream.stream_scenario`
        moves record ownership into the consuming
        :class:`~repro.jtrace.io.StreamingRadioTrace` readers.
        """
        return [radio.trace for pod in self.pods for radio in pod.radios]

    @property
    def ground_truth(self) -> List[Transmission]:
        """Every transmission that ever hit the air, in true-time order."""
        return self.medium.history

    @property
    def wired_trace(self) -> List[WiredTraceRecord]:
        return self.wired.trace

    def pod_reduction_order(self) -> List[int]:
        """Pod indices in Figure 7 removal order (most redundant first)."""
        return pod_reduction_order(self.pod_placements)

    def radios_of_pods(self, pod_indices) -> List[int]:
        """Radio ids belonging to the given pod indices."""
        wanted = set(pod_indices)
        return [
            radio.radio_id
            for index, pod in enumerate(self.pods)
            if index in wanted
            for radio in pod.radios
        ]

    def clock_groups(self) -> List[List[int]]:
        """Radio ids sharing one capture clock (the two radios per monitor)."""
        return clock_groups_of(self.pods)


def clock_groups_of(pods: List[SensorPod]) -> List[List[int]]:
    """Radio ids sharing one capture clock, per monitor, across ``pods``.

    This is infrastructure metadata, not trace content: the real
    deployment knows it from its driver configuration (Section 3.3), and
    bootstrap synchronization uses it to bridge across channels.
    """
    groups: List[List[int]] = []
    for pod in pods:
        by_clock: Dict[int, List[int]] = {}
        for radio in pod.radios:
            by_clock.setdefault(id(radio.clock), []).append(radio.radio_id)
        groups.extend(ids for ids in by_clock.values() if len(ids) > 1)
    return groups


@dataclass
class ScenarioWorld:
    """A fully wired, not-yet-run scenario.

    :func:`build_scenario` produces one; either :func:`run_scenario`
    drives its kernel to the configured duration in one go, or the
    streaming feed (:mod:`repro.sim.stream`) advances it chunk by chunk
    while the pipeline consumes records.
    """

    config: ScenarioConfig
    kernel: Kernel
    medium: Medium
    wired: WiredNetwork
    building: Building
    aps: List[AccessPoint]
    ap_placements: List[Placement]
    stations: List[Station]
    station_placements: List[Placement]
    pods: List[SensorPod]
    pod_placements: List[Placement]
    flows: List[FlowRequest]
    drivers: List[FlowDriver]
    roam_events: List[RoamEvent]

    def clock_groups(self) -> List[List[int]]:
        return clock_groups_of(self.pods)


def build_scenario(config: ScenarioConfig) -> ScenarioWorld:
    """Assemble (but do not run) one scenario's complete world."""
    master_rng = np.random.default_rng(config.seed)
    streams = config.streams()
    kernel = Kernel()
    propagation = PropagationModel(shadowing_seed=config.seed)
    interferers = []
    if config.microwave:
        # A microwave oven in a mid-building kitchenette.  Burst length
        # (~40 ms) deliberately exceeds a full ARQ exchange (7 attempts in
        # ~15 ms), so nearby stations suffer whole-exchange failures — the
        # wireless TCP losses of Figure 11 — not just extra retries.
        interferers.append(
            BroadbandInterferer(
                position=(55.0, 5.0, 2.5),
                power_dbm=28.0,
                period_us=200_000,
                duty_cycle=0.55,
            )
        )
        # A second oven on the third floor widens the affected population.
        interferers.append(
            BroadbandInterferer(
                position=(30.0, 12.0, 10.5),
                power_dbm=28.0,
                period_us=260_000,
                duty_cycle=0.5,
                start_us=40_000,
            )
        )
    medium = Medium(kernel, propagation, interferers)
    building = Building(floors=config.floors)

    # --- production network -------------------------------------------------
    exclude_wings = [(0, 0)] if config.uncovered_wing else []
    # Campus buildings mint from disjoint 4096-address blocks: identical
    # addresses across RF-isolated buildings would make frames content-
    # identical, and content identity is how the unifier and the bootstrap
    # recognize one transmission (building 0 keeps the standalone block).
    mac_block = 1 + config.building_index * 0x1000
    ap_alloc = MacAllocator(AP_OUI, start=mac_block)
    ap_placements = building.place_aps(
        config.aps_per_floor, exclude_wings=exclude_wings
    )
    ap_channels = assign_channels(ap_placements)
    aps: List[AccessPoint] = []
    for placement, channel in zip(ap_placements, ap_channels):
        aps.append(
            AccessPoint(
                kernel,
                medium,
                ap_alloc.allocate(),
                placement.position,
                channel,
                config.tx_power_ap_dbm,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                protection_timeout_us=config.protection_timeout_us,
            )
        )

    # --- monitoring infrastructure ---------------------------------------------
    pod_placements = building.place_pods(
        config.n_pods, exclude_wings=exclude_wings
    )
    pods: List[SensorPod] = []
    for pod_id, placement in enumerate(pod_placements):
        pods.append(
            build_pod(
                kernel,
                medium,
                pod_id,
                placement.position,
                config.clocks,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                first_radio_id=pod_id * 4,
            )
        )

    # --- clients -----------------------------------------------------------------
    behavior = config.behavior
    client_alloc = MacAllocator(CLIENT_OUI, start=mac_block)
    if config.fleet.placement == "hotspot":
        station_placements = building.place_clients_hotspot(
            config.n_clients, master_rng
        )
    else:
        station_placements = building.place_clients(
            config.n_clients, master_rng, config.corner_client_fraction
        )
    n_11b = int(round(config.n_clients * config.fraction_11b_clients))
    stations: List[Station] = []
    for index, placement in enumerate(station_placements):
        ap = _strongest_ap(
            placement.position, aps, ap_placements, propagation, config
        )
        # The legacy stagger draw is always consumed (the master chain's
        # draw order is frozen); an arrival-wave window replaces only the
        # value, from the behavior component's own stream.
        start_us = int(
            master_rng.uniform(0, min(500_000, config.duration_us // 4))
        )
        if behavior.start_window_us is not None:
            window = min(behavior.start_window_us, config.duration_us)
            start_us = int(
                streams.entity("arrival", index).uniform(0, window)
            )
        stations.append(
            Station(
                kernel,
                medium,
                client_alloc.allocate(),
                placement.position,
                config.tx_power_client_dbm,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                ap=ap,
                supports_ofdm=index >= n_11b,
                start_us=start_us,
                rescan_interval_us=behavior.rescan_interval_us,
                probe_burst=behavior.probe_burst,
                scan_sweep=behavior.scan_sweep,
            )
        )

    # --- wired side -----------------------------------------------------------------
    wired = WiredNetwork(
        kernel,
        np.random.default_rng(master_rng.integers(0, 2**63)),
        loss_rate=config.wired_loss_rate,
        rtt_us=config.wired_rtt_us,
    )
    for ap in aps:
        wired.register_ap(ap)
    client_ips: Dict[int, int] = {}
    for index, station in enumerate(stations):
        ip = CLIENT_IP_BASE | (index + 1)
        client_ips[index] = ip
        wired.register_client(station.mac, ip, station.ap)

    VernierTracker(
        kernel,
        wired,
        client_ips=list(client_ips.values()),
        interval_us=config.arp_interval_us,
        server_ip=VERNIER_IP,
    )
    ScanArpSource(
        kernel,
        wired,
        np.random.default_rng(master_rng.integers(0, 2**63)),
        mean_interval_us=config.arp_interval_us * 4,
    )

    # --- roaming ---------------------------------------------------------------------
    roam_events: List[RoamEvent] = []
    if behavior.roam_fraction > 0 and behavior.roam_interval_us > 0:
        _RoamScheduler(
            kernel=kernel,
            config=config,
            building=building,
            propagation=propagation,
            wired=wired,
            aps=aps,
            ap_placements=ap_placements,
            stations=stations,
            streams=streams,
            roam_events=roam_events,
        )

    # --- workload --------------------------------------------------------------------
    flows = generate_flows(
        config, np.random.default_rng(master_rng.integers(0, 2**63))
    )
    station_stacks = [StationStack(station) for station in stations]
    host_stacks: Dict[int, HostStack] = {}
    drivers: List[FlowDriver] = []
    next_client_port: Dict[int, int] = {}
    for flow_index, flow in enumerate(flows):
        server_ip = SERVER_IP_BASE | (1 + flow_index % 32)
        if server_ip not in host_stacks:
            host_stacks[server_ip] = HostStack(wired.add_host(server_ip))
        port = next_client_port.get(flow.client_index, 40_000)
        next_client_port[flow.client_index] = port + 1
        drivers.append(
            FlowDriver(
                kernel,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                flow,
                station_stacks[flow.client_index],
                client_ips[flow.client_index],
                host_stacks[server_ip],
                wired,
                client_port=port,
            )
        )

    return ScenarioWorld(
        config=config,
        kernel=kernel,
        medium=medium,
        wired=wired,
        building=building,
        aps=aps,
        ap_placements=ap_placements,
        stations=stations,
        station_placements=station_placements,
        pods=pods,
        pod_placements=pod_placements,
        flows=flows,
        drivers=drivers,
        roam_events=roam_events,
    )


def finalize_scenario(world: ScenarioWorld) -> SimulationArtifacts:
    """Close out a world whose kernel has reached the configured duration."""
    for driver in world.drivers:
        driver.client.abort() if not driver.client.finished else None
        driver.server.abort() if not driver.server.finished else None
    return SimulationArtifacts(
        config=world.config,
        building=world.building,
        medium=world.medium,
        wired=world.wired,
        aps=world.aps,
        ap_placements=world.ap_placements,
        stations=world.stations,
        station_placements=world.station_placements,
        pods=world.pods,
        pod_placements=world.pod_placements,
        flows=world.flows,
        flow_outcomes=[driver.outcome for driver in world.drivers],
        events_run=world.kernel.events_run,
        roam_events=world.roam_events,
    )


def run_scenario(config: ScenarioConfig) -> SimulationArtifacts:
    """Build and run one scenario end to end."""
    world = build_scenario(config)
    world.kernel.run_until(config.duration_us)
    return finalize_scenario(world)


class _RoamScheduler:
    """Moves roaming clients between offices (and APs) during the run.

    Which clients roam, when they move, and where they go all come from
    the ``roam`` spawn-key streams — one per roaming station — so the
    roaming component composes with every other scenario component
    without perturbing the master chain's draws.
    """

    def __init__(
        self,
        kernel: Kernel,
        config: ScenarioConfig,
        building: Building,
        propagation: PropagationModel,
        wired: WiredNetwork,
        aps: List[AccessPoint],
        ap_placements: List[Placement],
        stations: List[Station],
        streams: ScenarioStreams,
        roam_events: List[RoamEvent],
    ) -> None:
        self._kernel = kernel
        self._config = config
        self._building = building
        self._propagation = propagation
        self._wired = wired
        self._aps = aps
        self._ap_placements = ap_placements
        self._stations = stations
        self._roam_events = roam_events
        self._interval_us = config.behavior.roam_interval_us
        n_roamers = int(round(config.n_clients * config.behavior.roam_fraction))
        if n_roamers == 0:
            return
        chooser = streams.component("roam")
        roamers = sorted(
            int(i)
            for i in chooser.choice(
                config.n_clients, size=n_roamers, replace=False
            )
        )
        for index in roamers:
            self._schedule_move(index, streams.entity("roam", index))

    def _schedule_move(self, index: int, rng: np.random.Generator) -> None:
        delay = max(1, int(rng.exponential(self._interval_us)))
        self._kernel.after(delay, lambda: self._move(index, rng))

    def _move(self, index: int, rng: np.random.Generator) -> None:
        placement = self._building.random_client_placement(
            rng, self._config.corner_client_fraction
        )
        station = self._stations[index]
        best = _strongest_ap(
            placement.position,
            self._aps,
            self._ap_placements,
            self._propagation,
            self._config,
        )
        previous = station.ap
        station.roam_to(placement.position, best)
        if best is not previous:
            self._wired.reassign_client(station.mac, best)
            self._roam_events.append(
                RoamEvent(
                    time_us=self._kernel.now_us,
                    station_index=index,
                    from_ap=previous.mac,
                    to_ap=best.mac,
                    position=placement.position,
                )
            )
        self._schedule_move(index, rng)


def _strongest_ap(
    position: Point,
    aps: List[AccessPoint],
    ap_placements: List[Placement],
    propagation: PropagationModel,
    config: ScenarioConfig,
) -> AccessPoint:
    """The AP a client at ``position`` would associate with: best RSSI."""
    best_ap = aps[0]
    best_rssi = float("-inf")
    for ap, ap_placement in zip(aps, ap_placements):
        rssi = propagation.rssi_dbm(
            config.tx_power_ap_dbm, ap_placement.position, position
        )
        if rssi > best_rssi:
            best_rssi = rssi
            best_ap = ap
    return best_ap
