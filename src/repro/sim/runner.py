"""Scenario runner: build the world, run it, hand back every artifact.

This is the substrate's top-level entry point.  Given a
:class:`ScenarioConfig` it assembles the building, the production network
(APs + clients + wired distribution), the monitoring infrastructure (pods
of monitor radios with imperfect clocks), ARP broadcast sources, and the
TCP workload; runs the discrete-event kernel; and returns a
:class:`SimulationArtifacts` bundle containing

* the 150+ per-radio monitor traces (Jigsaw's *input*),
* the wired distribution-network trace (the Section 6 coverage oracle),
* the medium's ground-truth transmission history and flow outcomes (the
  oracle the evaluation scores reconstruction against).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..dot11.address import AP_OUI, CLIENT_OUI, MacAllocator
from ..jtrace.io import RadioTrace
from ..mac.ap import AccessPoint
from ..mac.medium import Medium, Transmission
from ..mac.station import Station
from ..monitor.radio import SensorPod, build_pod
from ..net.arp import ScanArpSource, VernierTracker
from ..net.wired import WiredNetwork, WiredTraceRecord
from ..phy.noisefloor import BroadbandInterferer
from ..phy.propagation import PropagationModel
from ..sim.building import (
    Building,
    Placement,
    assign_channels,
    pod_reduction_order,
)
from ..sim.kernel import Kernel
from ..sim.scenario import ScenarioConfig
from ..sim.workload import FlowRequest, generate_flows
from ..tcp.driver import FlowDriver, FlowOutcome, HostStack, StationStack

#: Wired-side IP plan.
SERVER_IP_BASE = 0xAC_10_00_00      # 172.16.0.0/16: servers
CLIENT_IP_BASE = 0x0A_00_00_00      # 10.0.0.0/16: wireless clients
VERNIER_IP = SERVER_IP_BASE | 0xFFFF


@dataclass
class SimulationArtifacts:
    """Everything a run produces, oracle included."""

    config: ScenarioConfig
    building: Building
    medium: Medium
    wired: WiredNetwork
    aps: List[AccessPoint]
    ap_placements: List[Placement]
    stations: List[Station]
    station_placements: List[Placement]
    pods: List[SensorPod]
    pod_placements: List[Placement]
    flows: List[FlowRequest]
    flow_outcomes: List[FlowOutcome]
    events_run: int

    @property
    def radio_traces(self) -> List[RadioTrace]:
        """The monitor traces — Jigsaw's input."""
        return [radio.trace for pod in self.pods for radio in pod.radios]

    @property
    def ground_truth(self) -> List[Transmission]:
        """Every transmission that ever hit the air, in true-time order."""
        return self.medium.history

    @property
    def wired_trace(self) -> List[WiredTraceRecord]:
        return self.wired.trace

    def pod_reduction_order(self) -> List[int]:
        """Pod indices in Figure 7 removal order (most redundant first)."""
        return pod_reduction_order(self.pod_placements)

    def radios_of_pods(self, pod_indices) -> List[int]:
        """Radio ids belonging to the given pod indices."""
        wanted = set(pod_indices)
        return [
            radio.radio_id
            for index, pod in enumerate(self.pods)
            if index in wanted
            for radio in pod.radios
        ]

    def clock_groups(self) -> List[List[int]]:
        """Radio ids sharing one capture clock (the two radios per monitor).

        This is infrastructure metadata, not trace content: the real
        deployment knows it from its driver configuration (Section 3.3),
        and bootstrap synchronization uses it to bridge across channels.
        """
        groups: List[List[int]] = []
        for pod in self.pods:
            by_clock: Dict[int, List[int]] = {}
            for radio in pod.radios:
                by_clock.setdefault(id(radio.clock), []).append(radio.radio_id)
            groups.extend(ids for ids in by_clock.values() if len(ids) > 1)
        return groups


def run_scenario(config: ScenarioConfig) -> SimulationArtifacts:
    """Build and run one scenario end to end."""
    master_rng = np.random.default_rng(config.seed)
    kernel = Kernel()
    propagation = PropagationModel(shadowing_seed=config.seed)
    interferers = []
    if config.microwave:
        # A microwave oven in a mid-building kitchenette.  Burst length
        # (~40 ms) deliberately exceeds a full ARQ exchange (7 attempts in
        # ~15 ms), so nearby stations suffer whole-exchange failures — the
        # wireless TCP losses of Figure 11 — not just extra retries.
        interferers.append(
            BroadbandInterferer(
                position=(55.0, 5.0, 2.5),
                power_dbm=28.0,
                period_us=200_000,
                duty_cycle=0.55,
            )
        )
        # A second oven on the third floor widens the affected population.
        interferers.append(
            BroadbandInterferer(
                position=(30.0, 12.0, 10.5),
                power_dbm=28.0,
                period_us=260_000,
                duty_cycle=0.5,
                start_us=40_000,
            )
        )
    medium = Medium(kernel, propagation, interferers)
    building = Building(floors=config.floors)

    # --- production network -------------------------------------------------
    exclude_wings = [(0, 0)] if config.uncovered_wing else []
    ap_alloc = MacAllocator(AP_OUI)
    ap_placements = building.place_aps(
        config.aps_per_floor, exclude_wings=exclude_wings
    )
    ap_channels = assign_channels(ap_placements)
    aps: List[AccessPoint] = []
    for placement, channel in zip(ap_placements, ap_channels):
        aps.append(
            AccessPoint(
                kernel,
                medium,
                ap_alloc.allocate(),
                placement.position,
                channel,
                config.tx_power_ap_dbm,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                protection_timeout_us=config.protection_timeout_us,
            )
        )

    # --- monitoring infrastructure ---------------------------------------------
    pod_placements = building.place_pods(
        config.n_pods, exclude_wings=exclude_wings
    )
    pods: List[SensorPod] = []
    for pod_id, placement in enumerate(pod_placements):
        pods.append(
            build_pod(
                kernel,
                medium,
                pod_id,
                placement.position,
                config.clocks,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                first_radio_id=pod_id * 4,
            )
        )

    # --- clients -----------------------------------------------------------------
    client_alloc = MacAllocator(CLIENT_OUI)
    station_placements = building.place_clients(
        config.n_clients, master_rng, config.corner_client_fraction
    )
    n_11b = int(round(config.n_clients * config.fraction_11b_clients))
    stations: List[Station] = []
    for index, placement in enumerate(station_placements):
        ap = _strongest_ap(
            placement, aps, ap_placements, propagation, config
        )
        start_us = int(master_rng.uniform(0, min(500_000, config.duration_us // 4)))
        stations.append(
            Station(
                kernel,
                medium,
                client_alloc.allocate(),
                placement.position,
                config.tx_power_client_dbm,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                ap=ap,
                supports_ofdm=index >= n_11b,
                start_us=start_us,
                rescan_interval_us=config.client_rescan_interval_us,
            )
        )

    # --- wired side -----------------------------------------------------------------
    wired = WiredNetwork(
        kernel,
        np.random.default_rng(master_rng.integers(0, 2**63)),
        loss_rate=config.wired_loss_rate,
        rtt_us=config.wired_rtt_us,
    )
    for ap in aps:
        wired.register_ap(ap)
    client_ips: Dict[int, int] = {}
    for index, station in enumerate(stations):
        ip = CLIENT_IP_BASE | (index + 1)
        client_ips[index] = ip
        wired.register_client(station.mac, ip, station.ap)

    VernierTracker(
        kernel,
        wired,
        client_ips=list(client_ips.values()),
        interval_us=config.arp_interval_us,
        server_ip=VERNIER_IP,
    )
    ScanArpSource(
        kernel,
        wired,
        np.random.default_rng(master_rng.integers(0, 2**63)),
        mean_interval_us=config.arp_interval_us * 4,
    )

    # --- workload --------------------------------------------------------------------
    flows = generate_flows(
        config, np.random.default_rng(master_rng.integers(0, 2**63))
    )
    station_stacks = [StationStack(station) for station in stations]
    host_stacks: Dict[int, HostStack] = {}
    drivers: List[FlowDriver] = []
    next_client_port: Dict[int, int] = {}
    for flow_index, flow in enumerate(flows):
        server_ip = SERVER_IP_BASE | (1 + flow_index % 32)
        if server_ip not in host_stacks:
            host_stacks[server_ip] = HostStack(wired.add_host(server_ip))
        port = next_client_port.get(flow.client_index, 40_000)
        next_client_port[flow.client_index] = port + 1
        drivers.append(
            FlowDriver(
                kernel,
                np.random.default_rng(master_rng.integers(0, 2**63)),
                flow,
                station_stacks[flow.client_index],
                client_ips[flow.client_index],
                host_stacks[server_ip],
                wired,
                client_port=port,
            )
        )

    # --- run --------------------------------------------------------------------------
    kernel.run_until(config.duration_us)
    for driver in drivers:
        driver.client.abort() if not driver.client.finished else None
        driver.server.abort() if not driver.server.finished else None

    return SimulationArtifacts(
        config=config,
        building=building,
        medium=medium,
        wired=wired,
        aps=aps,
        ap_placements=ap_placements,
        stations=stations,
        station_placements=station_placements,
        pods=pods,
        pod_placements=pod_placements,
        flows=flows,
        flow_outcomes=[driver.outcome for driver in drivers],
        events_run=kernel.events_run,
    )


def _strongest_ap(
    placement: Placement,
    aps: List[AccessPoint],
    ap_placements: List[Placement],
    propagation: PropagationModel,
    config: ScenarioConfig,
) -> AccessPoint:
    """The AP a client would associate with: best beacon RSSI."""
    best_ap = aps[0]
    best_rssi = float("-inf")
    for ap, ap_placement in zip(aps, ap_placements):
        rssi = propagation.rssi_dbm(
            config.tx_power_ap_dbm, ap_placement.position, placement.position
        )
        if rssi > best_rssi:
            best_rssi = rssi
            best_ap = ap
    return best_ap
