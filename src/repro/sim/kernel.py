"""Discrete-event simulation kernel.

A minimal, deterministic event loop: integer-microsecond clock, a binary
heap of (time, tiebreak, callback) entries, and cancellable handles.  Every
substrate (MAC, TCP endpoints, monitors, workload generator) schedules
against one shared kernel, which is what lets the ground truth, the monitor
captures, and the wired trace all line up on a single true timeline — the
oracle the evaluation compares Jigsaw's reconstructed universal time
against.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class _Entry:
    time_us: int
    tiebreak: int
    callback: Optional[Callable[[], None]] = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Cancel the event; a no-op when it already fired."""
        self._entry.callback = None

    @property
    def cancelled(self) -> bool:
        return self._entry.callback is None

    @property
    def time_us(self) -> int:
        return self._entry.time_us


class Kernel:
    """The discrete-event scheduler."""

    def __init__(self) -> None:
        self._queue: List[_Entry] = []
        self._counter = itertools.count()
        self._now_us = 0
        self._events_run = 0

    @property
    def now_us(self) -> int:
        """Current simulation (true) time in integer microseconds."""
        return self._now_us

    @property
    def events_run(self) -> int:
        return self._events_run

    def at(self, time_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time_us``."""
        if time_us < self._now_us:
            raise ValueError(
                f"cannot schedule in the past: {time_us} < {self._now_us}"
            )
        entry = _Entry(int(time_us), next(self._counter), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def after(self, delay_us: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay_us`` microseconds from now."""
        if delay_us < 0:
            raise ValueError(f"negative delay: {delay_us}")
        return self.at(self._now_us + int(delay_us), callback)

    def run_until(self, end_us: int) -> None:
        """Run events with time <= ``end_us``; leaves ``now_us`` at ``end_us``."""
        while self._queue and self._queue[0].time_us <= end_us:
            entry = heapq.heappop(self._queue)
            if entry.callback is None:
                continue
            self._now_us = entry.time_us
            callback, entry.callback = entry.callback, None
            callback()
            self._events_run += 1
        self._now_us = max(self._now_us, end_us)

    def run(self) -> None:
        """Run until the queue drains."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.callback is None:
                continue
            self._now_us = entry.time_us
            callback, entry.callback = entry.callback, None
            callback()
            self._events_run += 1

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if e.callback is not None)
