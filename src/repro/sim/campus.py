"""Campus composition: many RF-isolated buildings, one trace set.

The paper's deployment is one building; campus scale grows the fleet by
*buildings*, not by densifying one building.  Buildings are RF-isolated
— no transmission is audible in two of them — so a campus simulation is
exactly the composition of independent single-building simulations:

* each building runs :func:`repro.sim.runner.run_scenario` with its own
  sub-seed (derived from the campus seed through the fixed ``campus``
  spawn key, so building b's world is stable no matter how many
  buildings exist or in what order they run);
* radio ids are offset by a per-building stride (``4 * n_pods``, the
  id space one building's pods can occupy) into disjoint ranges, MAC
  allocators onto disjoint per-building address blocks, and every trace
  is stamped with its ``building_id`` — the locality key hierarchical
  sharding partitions on;
* clock groups are offset the same way.  Buildings share no
  observations and no clocks, so each is its own synchronization
  island; the ``building_id`` stamps switch the bootstrap into
  ``island_mode="local"`` (each building's island synchronizes on its
  own local timeline, no radio is quarantined — verified by the campus
  tests).  Cross-building timestamps are only aligned up to the
  per-island reference offsets, which is exactly the paper's situation
  for radios that never hear a common frame — and harmless here,
  because no transmission spans buildings.

Composition deliberately does **not** build one giant scenario world:
a single world's master RNG draw order would shift with every fleet
change (breaking the frozen golden traces), and an n-building event
kernel would serialize n buildings' events through one heap for no
physical reason.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from ..jtrace.io import RadioTrace
from .runner import SimulationArtifacts, run_scenario
from .scenario import ScenarioConfig, _STREAM_KEYS


def building_stride(config: ScenarioConfig) -> int:
    """Radio-id stride between buildings (one building's full id space)."""
    return 4 * config.n_pods


def building_config(config: ScenarioConfig, building: int) -> ScenarioConfig:
    """The single-building configuration campus building ``b`` runs.

    The sub-seed comes from ``SeedSequence(seed, spawn_key=(campus, b))``
    — stable per (campus seed, building index), independent of
    ``n_buildings`` — so growing a campus from 4 to 8 buildings reruns
    nothing in the first 4.  Sub-seeding de-correlates placements and
    workloads; ``building_index`` additionally moves each building's MAC
    allocators onto a disjoint address block, because sub-seeding alone
    does *not* de-correlate addresses (allocation is sequential): two
    buildings sharing AP #1's BSSID would emit content-identical frames
    that the unifier would coalesce and the bootstrap would treat as
    shared references, spuriously bridging RF-isolated islands.
    """
    sub_seed = int(
        np.random.SeedSequence(
            config.seed, spawn_key=(_STREAM_KEYS["campus"], building)
        ).generate_state(1)[0]
    )
    return config.with_overrides(
        seed=sub_seed,
        geometry=replace(
            config.geometry, n_buildings=1, building_index=building
        ),
    )


@dataclass
class CampusArtifacts:
    """What a campus run produces: the merge pipeline's campus input.

    Unlike :class:`~repro.sim.runner.SimulationArtifacts` this holds the
    cross-building views the pipeline consumes — id-offset, building-
    stamped traces and clock groups — plus the per-building artifacts
    for analyses that want one building's oracle.
    """

    config: ScenarioConfig
    traces: List[RadioTrace]
    clock_groups: List[List[int]]
    events_run: int
    n_flows: int
    buildings: List[SimulationArtifacts]

    @property
    def n_radios(self) -> int:
        return len(self.traces)

    @property
    def n_records(self) -> int:
        return sum(len(t.records) for t in self.traces)


def campus_subset(campus: CampusArtifacts, n_buildings: int) -> CampusArtifacts:
    """The first ``n_buildings`` buildings of a larger campus run.

    Composition makes this exact, not approximate: building b's world
    depends only on (campus seed, b), so the first k buildings of a
    12-building campus are bit-identical to a k-building run — the
    radio-scaling sweep simulates the largest campus once and slices.
    """
    if n_buildings > len(campus.buildings):
        raise ValueError(
            f"campus has {len(campus.buildings)} buildings, "
            f"asked for {n_buildings}"
        )
    stride = building_stride(campus.config)
    limit = n_buildings * stride
    return CampusArtifacts(
        config=campus.config.with_overrides(
            geometry=replace(campus.config.geometry, n_buildings=n_buildings)
        ),
        traces=[t for t in campus.traces if t.radio_id < limit],
        clock_groups=[
            g for g in campus.clock_groups if all(r < limit for r in g)
        ],
        events_run=sum(
            a.events_run for a in campus.buildings[:n_buildings]
        ),
        n_flows=sum(len(a.flows) for a in campus.buildings[:n_buildings]),
        buildings=list(campus.buildings[:n_buildings]),
    )


def run_campus(config: ScenarioConfig) -> CampusArtifacts:
    """Run ``config.n_buildings`` independent buildings and compose them.

    A 1-building campus is exactly ``run_scenario(config)`` (same seed,
    same world, same draws) with ``building_id=0`` stamped on the
    traces.
    """
    n = config.n_buildings
    stride = building_stride(config)
    traces: List[RadioTrace] = []
    clock_groups: List[List[int]] = []
    buildings: List[SimulationArtifacts] = []
    events_run = 0
    n_flows = 0
    for b in range(n):
        sub = config if n == 1 else building_config(config, b)
        artifacts = run_scenario(sub)
        buildings.append(artifacts)
        offset = b * stride
        for trace in artifacts.radio_traces:
            # Reuses the record lists — the per-building artifacts and
            # the campus view share them (records are immutable).
            traces.append(
                RadioTrace(
                    trace.radio_id + offset,
                    trace.channel,
                    trace.records,
                    building_id=b,
                )
            )
        for group in artifacts.clock_groups():
            clock_groups.append([rid + offset for rid in group])
        events_run += artifacts.events_run
        n_flows += len(artifacts.flows)
    return CampusArtifacts(
        config=config,
        traces=traces,
        clock_groups=clock_groups,
        events_run=events_run,
        n_flows=n_flows,
        buildings=buildings,
    )
