"""The scenario registry: named workload families built from components.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
this module is where imagined scenarios become named, reproducible
configurations.  A :class:`ScenarioFamily` couples a component recipe to
the paper analyses it stresses, at three scales:

* ``tiny``  — sub-second, a handful of nodes; unit tests and CI matrices.
* ``small`` — seconds, a dozen-plus clients; integration tests, sweeps.
* ``full``  — the building-scale deployment shape; benchmarks.

Registered families (see ``docs/scenarios.md`` for the full map):

``building``         the paper's canonical enterprise deployment;
``roaming``          clients carried between offices mid-run, handing off
                     between APs — stresses coverage (Fig 6) and
                     dispersion (Fig 4) under moving vantage points;
``hidden_terminal``  two mutually-inaudible client clusters sharing one
                     AP — stresses the interference estimator (Fig 9,
                     Section 7.2) and protection (Fig 10, Section 7.3);
``scanning``         clients sweeping all monitored channels with probe
                     bursts — densifies bootstrap's broadcast reference
                     sets (Section 4.1) and exercises off-channel loss;
``flash_crowd``      an arrival wave of clients and flows mid-run —
                     stresses the activity timelines (Fig 8) and TCP-loss
                     attribution under congestion (Fig 11, Section 7.4);
``campus``           several RF-isolated buildings composed into one
                     trace set (``repro.sim.campus``) — stresses
                     hierarchical sharding and the merge's radio-count
                     scaling at 500+ radios.

Cache compatibility: any change to the component schema or to a family's
meaning must bump :data:`SCENARIO_SCHEMA_VERSION`; the experiment
run-cache folds the version and family name into its fingerprint so
artifacts cached under an older schema can never be served for a
new-style scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Tuple

from .scenario import ScenarioConfig

#: Bump when the component schema or a registered family's semantics
#: change in a way that invalidates previously cached runs.
SCENARIO_SCHEMA_VERSION = 1

#: The scales every family must provide.
SCALES: Tuple[str, ...] = ("tiny", "small", "full")


@dataclass(frozen=True)
class ScenarioFamily:
    """One named workload family and the analyses it stresses."""

    name: str
    description: str
    #: The paper sections/figures this family exercises.
    paper_focus: str
    #: What the analyses are expected to show on this family.
    expectations: str
    #: scale -> (seed -> ScenarioConfig)
    builders: Mapping[str, Callable[[int], ScenarioConfig]] = field(
        repr=False
    )

    def __post_init__(self) -> None:
        missing = [s for s in SCALES if s not in self.builders]
        if missing:
            raise ValueError(
                f"family {self.name!r} is missing scales {missing}"
            )

    def config(
        self, scale: str = "small", seed: int = 0, **overrides
    ) -> ScenarioConfig:
        """Build this family's configuration at the given scale.

        ``overrides`` accepts everything :class:`ScenarioConfig` does —
        whole components or flat field names.
        """
        try:
            builder = self.builders[scale]
        except KeyError:
            raise ValueError(
                f"family {self.name!r} has no scale {scale!r} "
                f"(choose from {sorted(self.builders)})"
            ) from None
        config = builder(seed)
        if overrides:
            config = config.with_overrides(**overrides)
        return config


class ScenarioRegistry:
    """Name -> :class:`ScenarioFamily` lookup with loud failure modes."""

    def __init__(self) -> None:
        self._families: Dict[str, ScenarioFamily] = {}

    def register(self, family: ScenarioFamily) -> ScenarioFamily:
        if family.name in self._families:
            raise ValueError(f"family {family.name!r} already registered")
        self._families[family.name] = family
        return family

    def get(self, name: str) -> ScenarioFamily:
        try:
            return self._families[name]
        except KeyError:
            raise KeyError(
                f"no scenario family named {name!r} "
                f"(registered: {self.names()})"
            ) from None

    def names(self) -> list:
        return sorted(self._families)

    def __iter__(self) -> Iterator[ScenarioFamily]:
        return iter(self._families[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)


#: The process-wide registry of named families.
REGISTRY = ScenarioRegistry()


def scenario_config(
    family: str, scale: str = "small", seed: int = 0, **overrides
) -> ScenarioConfig:
    """Convenience: ``REGISTRY.get(family).config(scale, seed, ...)``."""
    return REGISTRY.get(family).config(scale=scale, seed=seed, **overrides)


# --- registered families ---------------------------------------------------

REGISTRY.register(
    ScenarioFamily(
        name="building",
        description=(
            "The paper's canonical enterprise deployment: four floors, "
            "corridor APs on channels 1/6/11, office clients, diurnal "
            "traffic, microwave interference."
        ),
        paper_focus="Sections 3-7 end to end (the acceptance scenario)",
        expectations=(
            "Every analysis produces its headline result: >3 observations "
            "per transmission, dispersion under tens of microseconds, "
            "wireless-dominant TCP loss."
        ),
        builders={
            "tiny": lambda seed: ScenarioConfig.tiny(seed=seed),
            "small": lambda seed: ScenarioConfig.small(seed=seed),
            "full": lambda seed: ScenarioConfig.building(seed=seed),
        },
    )
)

REGISTRY.register(
    ScenarioFamily(
        name="roaming",
        description=(
            "Laptops carried between offices mid-run: roaming clients "
            "move, pick the then-strongest AP, and re-run the association "
            "handshake — coverage and dispersion under moving vantage "
            "points, reassociation bursts on the air."
        ),
        paper_focus="Fig 4 (dispersion), Fig 6 (coverage), Section 6",
        expectations=(
            "Roam events appear in the oracle; per-client coverage varies "
            "as clients cross well- and poorly-monitored rooms; the merge "
            "keeps dispersion bounded across handoffs."
        ),
        builders={
            "tiny": lambda seed: ScenarioConfig.tiny(
                seed=seed,
                duration_us=800_000,
                n_clients=6,
                roam_fraction=0.5,
                roam_interval_us=150_000,
            ),
            "small": lambda seed: ScenarioConfig.small(
                seed=seed,
                n_clients=14,
                roam_fraction=0.4,
                roam_interval_us=500_000,
                client_rescan_interval_us=800_000,
            ),
            "full": lambda seed: ScenarioConfig.building(
                seed=seed,
                roam_fraction=0.3,
                roam_interval_us=1_200_000,
            ),
        },
    )
)

REGISTRY.register(
    ScenarioFamily(
        name="hidden_terminal",
        description=(
            "A hotspot with two tight client clusters at opposite ends of "
            "a floor, ~66 m apart — beyond carrier-sense range of each "
            "other but both served by a mid-building AP — under an "
            "upload-heavy workload, with 802.11b clients mixed in so "
            "protection engages."
        ),
        paper_focus="Fig 9 / Section 7.2 (interference), Fig 10 / 7.3",
        expectations=(
            "The interference estimator finds sender/receiver pairs with "
            "elevated conditional loss; collisions produce corrupt "
            "captures; CTS-to-self appears once 11b clients are sensed."
        ),
        builders={
            "tiny": lambda seed: ScenarioConfig.tiny(
                seed=seed,
                duration_us=700_000,
                aps_per_floor=1,
                n_clients=6,
                placement="hotspot",
                fraction_11b_clients=0.34,
                flows_per_client_per_s=2.0,
                upload_fraction=0.7,
            ),
            "small": lambda seed: ScenarioConfig.small(
                seed=seed,
                floors=1,
                aps_per_floor=1,
                n_pods=6,
                n_clients=12,
                placement="hotspot",
                fraction_11b_clients=0.25,
                flows_per_client_per_s=1.5,
                upload_fraction=0.7,
            ),
            "full": lambda seed: ScenarioConfig.building(
                seed=seed,
                floors=2,
                aps_per_floor=1,
                n_pods=18,
                n_clients=28,
                placement="hotspot",
                fraction_11b_clients=0.25,
                flows_per_client_per_s=1.2,
                upload_fraction=0.6,
                diurnal=False,
                uncovered_wing=False,
            ),
        },
    )
)

REGISTRY.register(
    ScenarioFamily(
        name="scanning",
        description=(
            "Aggressively scanning clients: background rescans sweep every "
            "monitored channel with multi-probe bursts, landing broadcast "
            "probe requests in all three channels' monitor traces and "
            "losing downlink frames while off-channel."
        ),
        paper_focus="Section 4.1 (bootstrap references), Section 7.1",
        expectations=(
            "Bootstrap reference sets densify (probes join beacons/ARP as "
            "cross-radio anchors); probe traffic appears on all channels; "
            "off-channel dwell shows up as extra link-layer retries."
        ),
        builders={
            "tiny": lambda seed: ScenarioConfig.tiny(
                seed=seed,
                duration_us=900_000,
                client_rescan_interval_us=250_000,
                probe_burst=3,
                scan_sweep=True,
            ),
            "small": lambda seed: ScenarioConfig.small(
                seed=seed,
                client_rescan_interval_us=400_000,
                probe_burst=3,
                scan_sweep=True,
            ),
            "full": lambda seed: ScenarioConfig.building(
                seed=seed,
                client_rescan_interval_us=600_000,
                probe_burst=4,
                scan_sweep=True,
            ),
        },
    )
)

REGISTRY.register(
    ScenarioFamily(
        name="flash_crowd",
        description=(
            "An arrival wave: clients associate within a compressed "
            "window and flow arrivals surge mid-run to several times the "
            "base rate (a meeting letting out, a lecture starting) — "
            "congestion, queue overflows, and a burst of TCP loss."
        ),
        paper_focus="Fig 8 (activity timelines), Fig 11 / Section 7.4",
        expectations=(
            "Activity timelines show the wave against a quiet baseline; "
            "TCP-loss attribution finds the loss burst concentrated in "
            "the wave; airtime saturates at the peak."
        ),
        builders={
            "tiny": lambda seed: ScenarioConfig.tiny(
                seed=seed,
                n_clients=8,
                flows_per_client_per_s=3.0,
                flash_crowd=True,
                flash_center=0.55,
                flash_width=0.10,
                flash_intensity=5.0,
                start_window_us=120_000,
            ),
            "small": lambda seed: ScenarioConfig.small(
                seed=seed,
                n_clients=18,
                flows_per_client_per_s=0.8,
                flash_crowd=True,
                flash_center=0.5,
                flash_width=0.07,
                flash_intensity=6.0,
                start_window_us=300_000,
            ),
            "full": lambda seed: ScenarioConfig.building(
                seed=seed,
                n_clients=70,
                flash_crowd=True,
                flash_center=0.6,
                flash_width=0.05,
                flash_intensity=6.0,
                start_window_us=800_000,
            ),
        },
    )
)

REGISTRY.register(
    ScenarioFamily(
        name="campus",
        description=(
            "Several RF-isolated buildings composed into one trace set "
            "(repro.sim.campus.run_campus): disjoint radio-id ranges, "
            "building_id stamps on every trace, one synchronization "
            "island per building (the bootstrap covering family elects "
            "a reference radio in each).  The full scale is the "
            "hierarchical-sharding "
            "benchmark shape — 4 buildings x 32 pods x 4 radios = 512 "
            "monitor radios; override n_buildings for 1024/1536."
        ),
        paper_focus=(
            "Section 4's scaling claim taken past one building: merge "
            "throughput and shard planning at 500+ radios"
        ),
        expectations=(
            "partition_traces yields one (building, channel) leaf per "
            "pair; MergeTree output is bit-identical to ShardedUnifier; "
            "merge stays faster than real time at 512 radios."
        ),
        builders={
            # Per-building shapes stay deliberately light: campus runs
            # n_buildings full simulations, and the benchmark's subject
            # is the merge, not the air.
            "tiny": lambda seed: ScenarioConfig.tiny(
                seed=seed, n_buildings=2
            ),
            "small": lambda seed: ScenarioConfig.small(
                seed=seed, n_buildings=2
            ),
            "full": lambda seed: ScenarioConfig.building(
                seed=seed,
                n_buildings=4,
                duration_us=4_000_000,
                aps_per_floor=8,
                n_pods=32,
                # Light per-building traffic: the merge must stay faster
                # than real time at 512 radios on one core, and fewer
                # clients must not thin the broadcast reference density
                # below what stable clock fits need (12 clients over 32
                # APs holds zero quarantined radios; 10 does too but
                # nearly doubles the record rate through retry churn).
                n_clients=12,
                diurnal=False,
                uncovered_wing=False,
            ),
        },
    )
)
