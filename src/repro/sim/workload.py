"""Workload generation: who transfers what, when.

Produces the flow schedule the TCP substrate executes.  Flow archetypes
follow the paper's oracle workload (Section 6): web browsing (short,
bursty, download-heavy), interactive ssh (long-lived, thin, small packets)
and scp bulk copies (long flows of full-size segments, both directions).
Under diurnal shaping (Figure 8) arrivals thin out overnight; bursts
preferentially start on hour/half-hour boundaries, echoing the paper's
observation that "many of the bursts start on an hour or half-hour time
boundary, likely indicating laptop usage during meetings".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .scenario import ScenarioConfig


class FlowArchetype(enum.Enum):
    WEB = "web"
    SSH = "ssh"
    SCP = "scp"


@dataclass(frozen=True)
class FlowRequest:
    """One TCP flow to be executed by the transport substrate."""

    start_us: int
    client_index: int
    archetype: FlowArchetype
    download: bool          # True: wired server -> client; False: upload
    total_bytes: int
    segment_bytes: int

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError("flow must carry at least one byte")
        if self.segment_bytes <= 0:
            raise ValueError("segment size must be positive")


#: Per-archetype typical segment size: ssh is interactive small writes; web
#: and scp move MSS-sized segments.
_SSH_SEGMENT_BYTES = 120


def generate_flows(
    config: ScenarioConfig, rng: np.random.Generator
) -> List[FlowRequest]:
    """Generate the full flow schedule for a scenario.

    Arrival process: per-client Poisson with rate modulated by the
    arrival envelope — the diurnal curve times the flash-crowd wave, both
    applied by thinning against the envelope's peak.  (With neither
    enabled the envelope is flat at 1 and the process is plain Poisson.)
    Sizes are exponential around each archetype's mean, clamped to at
    least one segment.
    """
    workload = config.workload
    weights = workload.archetype_weights()
    archetypes = (FlowArchetype.WEB, FlowArchetype.SSH, FlowArchetype.SCP)
    means = {
        FlowArchetype.WEB: workload.web_bytes_mean,
        FlowArchetype.SSH: workload.ssh_bytes_mean,
        FlowArchetype.SCP: workload.scp_bytes_mean,
    }

    flows: List[FlowRequest] = []
    # Generate at the envelope's peak rate and thin down to the local
    # envelope value; a flash wave multiplies the peak by (1 + intensity).
    peak = workload.flash_peak
    rate_per_us = workload.flows_per_client_per_s / 1e6 * peak
    for client in range(config.n_clients):
        t = 0.0
        while True:
            # Poisson thinning against the arrival envelope.
            t += rng.exponential(1.0 / rate_per_us)
            if t >= config.duration_us:
                break
            if rng.random() > config.arrival_envelope(int(t)) / peak:
                continue
            start = _snap_to_meeting_boundary(int(t), config, rng)
            archetype = archetypes[int(rng.choice(3, p=weights))]
            total = max(
                workload.mss_bytes,
                int(rng.exponential(means[archetype])),
            )
            segment = (
                _SSH_SEGMENT_BYTES
                if archetype is FlowArchetype.SSH
                else workload.mss_bytes
            )
            download = rng.random() > workload.upload_fraction
            flows.append(
                FlowRequest(
                    start_us=start,
                    client_index=client,
                    archetype=archetype,
                    download=download,
                    total_bytes=total,
                    segment_bytes=segment,
                )
            )
    flows.sort(key=lambda f: f.start_us)
    return flows


def _snap_to_meeting_boundary(
    t_us: int, config: ScenarioConfig, rng: np.random.Generator
) -> int:
    """With small probability, snap a flow start to an hour/half-hour mark.

    Only meaningful under diurnal shaping, where the run maps to a day;
    produces the on-the-boundary burstiness of Figure 8(b).
    """
    if not config.diurnal or rng.random() > 0.2:
        return t_us
    half_hour_us = config.duration_us / 48.0
    snapped = round(t_us / half_hour_us) * half_hour_us
    jitter = rng.uniform(0, half_hour_us * 0.05)
    result = int(min(max(0, snapped + jitter), config.duration_us - 1))
    return result


def flow_counts_by_archetype(flows: Sequence[FlowRequest]) -> dict:
    """Histogram of flows per archetype (reporting helper)."""
    counts = {archetype: 0 for archetype in FlowArchetype}
    for flow in flows:
        counts[flow.archetype] += 1
    return counts
