"""Streaming scenario execution: simulator records feed the pipeline live.

:func:`stream_scenario` runs a scenario *incrementally*: instead of
driving the kernel to completion and materializing every monitor trace,
it exposes one :class:`~repro.jtrace.io.StreamingRadioTrace` per radio —
the same reader interface trace files use — whose records are produced by
advancing the shared discrete-event kernel in bounded time slices on
demand.  ``JigsawPipeline.run`` therefore consumes a simulated run through
the identical single-read path it uses for on-disk traces:

* the bootstrap prepass pulls only each radio's examination-window
  prefix, which advances the simulation just far enough to produce it;
* unification replays the buffered prefix and drains the remainder,
  pulling the rest of the simulation through the same read;
* record ownership moves from the monitor radios to the consuming
  readers (:meth:`~repro.monitor.radio.MonitorRadio.drain_captured`), so
  a streamed run never holds a second materialized copy of the traces.

Because the simulation itself is deterministic and oblivious to when its
records are harvested, a streamed run is bit-identical — jframe for
jframe — to materializing the same scenario with
:func:`~repro.sim.runner.run_scenario` and piping the traces in
afterwards (``tests/test_sim_stream.py`` holds this, including on the
building scenario).

Typical use::

    from repro.core import JigsawPipeline
    from repro.sim.stream import stream_scenario

    streamed = stream_scenario(ScenarioConfig.small(seed=7))
    report = JigsawPipeline().run(
        streamed.traces, clock_groups=streamed.clock_groups()
    )
    artifacts = streamed.artifacts()   # oracle: ground truth, flows, wired
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from ..jtrace.io import StreamingRadioTrace
from ..jtrace.records import TraceRecord
from ..sim.runner import (
    ScenarioWorld,
    SimulationArtifacts,
    build_scenario,
    finalize_scenario,
)
from ..sim.scenario import ScenarioConfig

#: Default kernel advance per pull, in simulated microseconds.  Small
#: enough that the bootstrap prepass only simulates a little past its
#: examination window; large enough that slice overhead stays negligible.
DEFAULT_CHUNK_US = 250_000


class StreamedScenario:
    """A scenario being executed lazily behind streaming trace readers.

    ``traces`` are genuine :class:`StreamingRadioTrace` objects; any
    consumer pulling records (the pipeline's bootstrap window feed, the
    merge's drain) advances the shared kernel chunk by chunk until the
    requested records exist.  All readers share one simulation: advancing
    for one radio harvests newly captured records into every radio's
    queue.
    """

    def __init__(self, world: ScenarioWorld, chunk_us: int) -> None:
        if chunk_us <= 0:
            raise ValueError("chunk_us must be positive")
        self._world = world
        self._chunk_us = chunk_us
        self._duration_us = world.config.duration_us
        self._complete = False
        self._artifacts: Optional[SimulationArtifacts] = None
        self._radios = [
            radio for pod in world.pods for radio in pod.radios
        ]
        self._queues: Dict[int, Deque[TraceRecord]] = {
            radio.radio_id: deque() for radio in self._radios
        }
        #: One streaming reader per radio — the pipeline's input.
        self.traces: List[StreamingRadioTrace] = [
            StreamingRadioTrace(
                radio.radio_id,
                radio.channel.number,
                self._source(radio.radio_id),
                building_id=radio.trace.building_id,
            )
            for radio in self._radios
        ]

    @property
    def config(self) -> ScenarioConfig:
        return self._world.config

    def clock_groups(self) -> List[List[int]]:
        """Radio ids sharing one capture clock (bootstrap metadata)."""
        return self._world.clock_groups()

    def artifacts(self) -> SimulationArtifacts:
        """The oracle bundle; runs any remaining simulation to the end.

        The bundle's ``radio_traces`` are empty — record ownership moved
        into :attr:`traces` as they were consumed — but ground truth,
        flow outcomes, the wired trace and roam events are all present.
        """
        while self._advance():
            pass
        assert self._artifacts is not None
        return self._artifacts

    # --- the shared feed --------------------------------------------------

    def _advance(self) -> bool:
        """Run one more kernel slice; False once the run has completed."""
        if self._complete:
            return False
        kernel = self._world.kernel
        target = min(kernel.now_us + self._chunk_us, self._duration_us)
        kernel.run_until(target)
        self._harvest()
        if target >= self._duration_us:
            self._artifacts = finalize_scenario(self._world)
            self._complete = True
        return True

    def _harvest(self) -> None:
        for radio in self._radios:
            drained = radio.drain_captured()
            if drained:
                self._queues[radio.radio_id].extend(drained)

    def _source(self, radio_id: int) -> Iterator[TraceRecord]:
        queue = self._queues[radio_id]
        while True:
            while queue:
                yield queue.popleft()
            if not self._advance():
                return


def stream_scenario(
    config: ScenarioConfig, chunk_us: int = DEFAULT_CHUNK_US
) -> StreamedScenario:
    """Build a scenario for lazy, pipeline-driven execution."""
    return StreamedScenario(build_scenario(config), chunk_us)


class LiveScenarioFeed:
    """Service-mode source adapter: one record at a time, per radio.

    The service daemon's merge shards request exactly one successor
    record after each heap pop (the blocking-successor discipline), so
    the daemon's input is a per-radio cursor rather than a bulk trace
    drain.  This adapter wraps a :class:`StreamedScenario` in that
    shape — it is the test double for a live radio uplink: calling
    :meth:`next_record` may advance the shared simulation kernel just
    far enough to produce the requested record, exactly as a socket
    read would block until a monitor pushed one.

    Resume: the simulation is deterministic and oblivious to when its
    records are harvested, so the record at index ``i`` of a radio's
    stream is identical across daemon incarnations.  A restored daemon
    rebuilds the feed from the same :class:`ScenarioConfig` and calls
    :meth:`seek` with the checkpoint's per-radio consumed counts; the
    replay prefix re-decodes (cheap at service-test scale) and the
    cursors land on the first unconsumed record.
    """

    def __init__(self, scenario: StreamedScenario) -> None:
        self._scenario = scenario
        self._by_radio: Dict[int, StreamingRadioTrace] = {
            trace.radio_id: trace for trace in scenario.traces
        }
        self._cursor: Dict[int, int] = {
            radio_id: 0 for radio_id in self._by_radio
        }

    @property
    def config(self) -> ScenarioConfig:
        return self._scenario.config

    @property
    def traces(self) -> List[StreamingRadioTrace]:
        """The underlying streaming traces (bootstrap prepass input)."""
        return self._scenario.traces

    def clock_groups(self) -> List[List[int]]:
        return self._scenario.clock_groups()

    def artifacts(self) -> SimulationArtifacts:
        return self._scenario.artifacts()

    def consumed(self) -> Dict[int, int]:
        """Per-radio count of records handed out (checkpoint state)."""
        return dict(self._cursor)

    def seek(self, consumed: Dict[int, int]) -> None:
        """Position every cursor at a checkpoint's consumed counts."""
        for radio_id, count in consumed.items():
            if radio_id not in self._cursor:
                raise KeyError(f"unknown radio id {radio_id}")
            if count < 0:
                raise ValueError("consumed counts must be non-negative")
            self._cursor[radio_id] = count

    def next_record(self, radio_id: int) -> Optional[TraceRecord]:
        """The next unconsumed record for ``radio_id``; None at EOF."""
        trace = self._by_radio[radio_id]
        index = self._cursor[radio_id]
        if not trace.ensure_index(index):
            return None
        self._cursor[radio_id] = index + 1
        return trace.replay_buffer[index]


def live_feed(
    config: ScenarioConfig, chunk_us: int = DEFAULT_CHUNK_US
) -> LiveScenarioFeed:
    """Open a scenario as a live per-radio record feed (service mode)."""
    return LiveScenarioFeed(stream_scenario(config, chunk_us))
