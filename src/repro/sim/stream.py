"""Streaming scenario execution: simulator records feed the pipeline live.

:func:`stream_scenario` runs a scenario *incrementally*: instead of
driving the kernel to completion and materializing every monitor trace,
it exposes one :class:`~repro.jtrace.io.StreamingRadioTrace` per radio —
the same reader interface trace files use — whose records are produced by
advancing the shared discrete-event kernel in bounded time slices on
demand.  ``JigsawPipeline.run`` therefore consumes a simulated run through
the identical single-read path it uses for on-disk traces:

* the bootstrap prepass pulls only each radio's examination-window
  prefix, which advances the simulation just far enough to produce it;
* unification replays the buffered prefix and drains the remainder,
  pulling the rest of the simulation through the same read;
* record ownership moves from the monitor radios to the consuming
  readers (:meth:`~repro.monitor.radio.MonitorRadio.drain_captured`), so
  a streamed run never holds a second materialized copy of the traces.

Because the simulation itself is deterministic and oblivious to when its
records are harvested, a streamed run is bit-identical — jframe for
jframe — to materializing the same scenario with
:func:`~repro.sim.runner.run_scenario` and piping the traces in
afterwards (``tests/test_sim_stream.py`` holds this, including on the
building scenario).

Typical use::

    from repro.core import JigsawPipeline
    from repro.sim.stream import stream_scenario

    streamed = stream_scenario(ScenarioConfig.small(seed=7))
    report = JigsawPipeline().run(
        streamed.traces, clock_groups=streamed.clock_groups()
    )
    artifacts = streamed.artifacts()   # oracle: ground truth, flows, wired
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from ..jtrace.io import StreamingRadioTrace
from ..jtrace.records import TraceRecord
from ..sim.runner import (
    ScenarioWorld,
    SimulationArtifacts,
    build_scenario,
    finalize_scenario,
)
from ..sim.scenario import ScenarioConfig

#: Default kernel advance per pull, in simulated microseconds.  Small
#: enough that the bootstrap prepass only simulates a little past its
#: examination window; large enough that slice overhead stays negligible.
DEFAULT_CHUNK_US = 250_000


class StreamedScenario:
    """A scenario being executed lazily behind streaming trace readers.

    ``traces`` are genuine :class:`StreamingRadioTrace` objects; any
    consumer pulling records (the pipeline's bootstrap window feed, the
    merge's drain) advances the shared kernel chunk by chunk until the
    requested records exist.  All readers share one simulation: advancing
    for one radio harvests newly captured records into every radio's
    queue.
    """

    def __init__(self, world: ScenarioWorld, chunk_us: int) -> None:
        if chunk_us <= 0:
            raise ValueError("chunk_us must be positive")
        self._world = world
        self._chunk_us = chunk_us
        self._duration_us = world.config.duration_us
        self._complete = False
        self._artifacts: Optional[SimulationArtifacts] = None
        self._radios = [
            radio for pod in world.pods for radio in pod.radios
        ]
        self._queues: Dict[int, Deque[TraceRecord]] = {
            radio.radio_id: deque() for radio in self._radios
        }
        #: One streaming reader per radio — the pipeline's input.
        self.traces: List[StreamingRadioTrace] = [
            StreamingRadioTrace(
                radio.radio_id,
                radio.channel.number,
                self._source(radio.radio_id),
            )
            for radio in self._radios
        ]

    @property
    def config(self) -> ScenarioConfig:
        return self._world.config

    def clock_groups(self) -> List[List[int]]:
        """Radio ids sharing one capture clock (bootstrap metadata)."""
        return self._world.clock_groups()

    def artifacts(self) -> SimulationArtifacts:
        """The oracle bundle; runs any remaining simulation to the end.

        The bundle's ``radio_traces`` are empty — record ownership moved
        into :attr:`traces` as they were consumed — but ground truth,
        flow outcomes, the wired trace and roam events are all present.
        """
        while self._advance():
            pass
        assert self._artifacts is not None
        return self._artifacts

    # --- the shared feed --------------------------------------------------

    def _advance(self) -> bool:
        """Run one more kernel slice; False once the run has completed."""
        if self._complete:
            return False
        kernel = self._world.kernel
        target = min(kernel.now_us + self._chunk_us, self._duration_us)
        kernel.run_until(target)
        self._harvest()
        if target >= self._duration_us:
            self._artifacts = finalize_scenario(self._world)
            self._complete = True
        return True

    def _harvest(self) -> None:
        for radio in self._radios:
            drained = radio.drain_captured()
            if drained:
                self._queues[radio.radio_id].extend(drained)

    def _source(self, radio_id: int) -> Iterator[TraceRecord]:
        queue = self._queues[radio_id]
        while True:
            while queue:
                yield queue.popleft()
            if not self._advance():
                return


def stream_scenario(
    config: ScenarioConfig, chunk_us: int = DEFAULT_CHUNK_US
) -> StreamedScenario:
    """Build a scenario for lazy, pipeline-driven execution."""
    return StreamedScenario(build_scenario(config), chunk_us)
