"""Building geometry and device placement.

Models the UCSD CSE building of Section 3.1 at the fidelity the experiments
need: four floors of ~150,000 sq ft total, two wings per floor joined by a
central corridor, production APs mounted in corridors on channels 1/6/11,
and sensor pods deployed "between and among these production APs".  Clients
are placed inside offices; a fraction sit in far corners, reproducing the
"rooms that consistently lack good coverage" of Figure 6.

The pod list carries a *redundancy order* used by the Figure 7 experiment:
the paper removes pods "at locations that appear to have overlapping
coverage by other pods as seen in building floor plans" — i.e. the most
visually redundant first — and we rank redundancy by proximity to the
nearest surviving pod.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..dot11.channels import Channel, ORTHOGONAL_CHANNELS
from ..phy.propagation import FLOOR_HEIGHT_M, Point, distance_m


@dataclass(frozen=True)
class Placement:
    """A placed device: position plus floor/wing bookkeeping."""

    position: Point
    floor: int
    wing: int

    @property
    def x(self) -> float:
        return self.position[0]

    @property
    def y(self) -> float:
        return self.position[1]


#: Hidden-terminal hotspot cluster centers, as fractions of building length.
HOTSPOT_CLUSTER_FRACTIONS: Tuple[float, float] = (0.2, 0.8)

#: Uniform jitter around each hotspot cluster center, in meters.
HOTSPOT_CLUSTER_SPREAD_M = 4.0


@dataclass
class Building:
    """Simplified four-story two-wing building."""

    floors: int = 4
    wing_length_m: float = 55.0
    wing_width_m: float = 18.0
    corridor_y_m: float = 9.0       # corridor runs along the wing center
    device_height_m: float = 2.5    # APs/pods are ceiling-mounted

    @property
    def length_m(self) -> float:
        """Total building length: two wings end to end."""
        return 2 * self.wing_length_m

    def floor_z(self, floor: int) -> float:
        return floor * FLOOR_HEIGHT_M + self.device_height_m

    def client_z(self, floor: int) -> float:
        return floor * FLOOR_HEIGHT_M + 1.0  # laptop on a desk

    def wing_of(self, x: float) -> int:
        return 0 if x < self.wing_length_m else 1

    # --- placement ------------------------------------------------------

    def place_aps(
        self,
        per_floor: int = 10,
        exclude_wings: Sequence[Tuple[int, int]] = (),
    ) -> List[Placement]:
        """Corridor-mounted APs, evenly spaced, per floor.

        ``exclude_wings`` lists (floor, wing) pairs with no infrastructure —
        the paper's administrative half-wing ("not under our administrative
        control", footnote 2) hosts clients but neither APs nor monitors.
        """
        excluded = set(exclude_wings)
        placements = []
        for floor in range(self.floors):
            xs = np.linspace(
                self.length_m * 0.5 / per_floor,
                self.length_m * (1 - 0.5 / per_floor),
                per_floor,
            )
            for x in xs:
                if (floor, self.wing_of(x)) in excluded:
                    continue
                pos = (float(x), self.corridor_y_m, self.floor_z(floor))
                placements.append(Placement(pos, floor, self.wing_of(x)))
        return placements

    def place_pods(
        self,
        total: int = 39,
        exclude_wings: Sequence[Tuple[int, int]] = (),
    ) -> List[Placement]:
        """Sensor pods in corridors, interleaved between AP positions."""
        excluded = set(exclude_wings)
        placements = []
        per_floor = [total // self.floors] * self.floors
        for i in range(total % self.floors):
            per_floor[i] += 1
        for floor, count in enumerate(per_floor):
            if count == 0:
                continue
            # Offset from AP grid by half a spacing so pods sit between APs.
            xs = np.linspace(
                self.length_m * 0.25 / count,
                self.length_m * (1 - 0.75 / count),
                count,
            ) + self.length_m * 0.25 / count
            for x in xs:
                if (floor, self.wing_of(float(x))) in excluded:
                    continue
                pos = (
                    float(min(x, self.length_m - 1.0)),
                    self.corridor_y_m + 1.0,
                    self.floor_z(floor),
                )
                placements.append(Placement(pos, floor, self.wing_of(x)))
        return placements

    def place_clients(
        self,
        count: int,
        rng: np.random.Generator,
        corner_fraction: float = 0.15,
    ) -> List[Placement]:
        """Clients in offices; ``corner_fraction`` of them in far corners.

        Corner clients model the poorly covered rooms of Figure 6 — their
        distance from corridor-mounted pods depresses their per-station
        coverage.
        """
        return [
            self.random_client_placement(rng, corner_fraction)
            for _ in range(count)
        ]

    def random_client_placement(
        self, rng: np.random.Generator, corner_fraction: float = 0.15
    ) -> Placement:
        """One office placement drawn from ``rng``.

        This is the per-client draw :meth:`place_clients` makes; the
        roaming scheduler reuses it to pick each move's destination so a
        roamer's new position is distributed like any other client's.
        """
        floor = int(rng.integers(0, self.floors))
        if rng.random() < corner_fraction:
            # Far corner of a wing: max distance from the corridor.
            x = float(rng.choice([1.5, self.length_m - 1.5]))
            y = float(rng.choice([0.8, self.wing_width_m - 0.8]))
        else:
            x = float(rng.uniform(2.0, self.length_m - 2.0))
            y = float(rng.uniform(1.0, self.wing_width_m - 1.0))
        pos = (x, y, self.client_z(floor))
        return Placement(pos, floor, self.wing_of(x))

    def place_clients_hotspot(
        self,
        count: int,
        rng: np.random.Generator,
        floor: int = 0,
        cluster_fractions: Sequence[float] = HOTSPOT_CLUSTER_FRACTIONS,
        spread_m: float = HOTSPOT_CLUSTER_SPREAD_M,
    ) -> List[Placement]:
        """Two tight client clusters at opposite ends of one floor.

        The cluster centers sit ~66 m apart — beyond carrier-sense range
        at client transmit power under the default propagation model
        (path loss exceeds the ~97 dB carrier-sense budget past ~53 m) —
        while both clusters remain in good range of a mid-building AP:
        the canonical hidden-terminal hotspot.  Clients alternate between
        clusters so the two sides stay balanced.
        """
        centers = [f * self.length_m for f in cluster_fractions]
        placements = []
        for i in range(count):
            cx = centers[i % len(centers)]
            x = float(
                np.clip(
                    cx + rng.uniform(-spread_m, spread_m),
                    1.0,
                    self.length_m - 1.0,
                )
            )
            y = float(
                rng.uniform(self.corridor_y_m - 3.0, self.corridor_y_m + 3.0)
            )
            pos = (x, y, self.client_z(floor))
            placements.append(Placement(pos, floor, self.wing_of(x)))
        return placements


def assign_channels(placements: Sequence[Placement]) -> List[Channel]:
    """Assign channels 1/6/11 round-robin along each floor's AP row.

    Round-robin along the corridor keeps co-channel APs maximally separated,
    the standard enterprise plan; co-channel neighbours on different floors
    still overlap — one source of the cross-AP interference Section 7.2
    observes.
    """
    channels = []
    per_floor_index: dict = {}
    for placement in placements:
        idx = per_floor_index.get(placement.floor, 0)
        channels.append(Channel(ORTHOGONAL_CHANNELS[idx % 3]))
        per_floor_index[placement.floor] = idx + 1
    return channels


def pod_reduction_order(pods: Sequence[Placement]) -> List[int]:
    """Indices of pods in removal order, most visually redundant first.

    Greedy farthest-point-style elimination: repeatedly drop the pod whose
    nearest surviving neighbour is closest (i.e. whose coverage visually
    overlaps another pod's the most).  Matches the paper's manual
    "visual redundancy" procedure in spirit and is deterministic.
    """
    remaining = list(range(len(pods)))
    order: List[int] = []
    while len(remaining) > 1:
        best_idx = None
        best_gap = float("inf")
        for i in remaining:
            gap = min(
                distance_m(pods[i].position, pods[j].position)
                for j in remaining
                if j != i
            )
            if gap < best_gap:
                best_gap = gap
                best_idx = i
        assert best_idx is not None
        order.append(best_idx)
        remaining.remove(best_idx)
    order.extend(remaining)
    return order
