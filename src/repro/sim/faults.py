"""Fault injection between simulated capture and trace files.

The :class:`~repro.sim.scenario.FaultConfig` component describes damage
on the capture path — corruption on the way to disk, files cut short,
radios going dark, clocks stepping — and this module applies it, in two
stages matching where real damage happens:

* **record-level** (:func:`inject_record_faults`) — faults that change
  *what the radio captured*: blackout/reboot holes and clock jumps.
  Applied in memory, so both file-backed and in-memory pipeline runs can
  use them;
* **byte-level** (:func:`write_faulty_traces`) — faults that damage *the
  bytes on disk*: header corruption and truncated files.  Applied while
  writing, producing trace files whose damage exercises the tolerant
  decoder's resynchronization, truncated-tail and stream-error paths.

Everything drawn is deterministic per scenario seed via the dedicated
``faults`` spawn-keyed stream (PR 4 conventions): enabling a fault cannot
reshuffle workload, placement or clock draws, and an all-off
``FaultConfig`` makes both functions exact no-ops — the written traces
decode to records identical to :func:`repro.jtrace.io.write_traces`
output.

The returned :class:`FaultPlan` records exactly what was injected
(which radios, which records, where the cuts landed) so tests can assert
the pipeline's :class:`~repro.core.faults.HealthReport` against ground
truth rather than eyeballing counters.
"""

from __future__ import annotations

import base64
import gzip
import json
import struct
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from ..jtrace.io import RadioTrace, _meta_path
from ..jtrace.records import _HEADER, record_to_bytes
from .scenario import FaultConfig, ScenarioConfig

#: Sub-stream indices under the ``faults`` spawn key — one per fault
#: type, so enabling one fault never reshuffles another's draws.
_CORRUPT_STREAM = 1
_TRUNCATE_STREAM = 2
_BLACKOUT_STREAM = 3
_JUMP_STREAM = 4

#: Byte offsets inside the packed record header (see ``records._HEADER``).
_KIND_BYTE_OFFSET = 10
_SNAP_LEN_OFFSET = 26


@dataclass
class FaultPlan:
    """Ground truth of everything the injector did to one trace set."""

    #: radio -> record indices whose on-disk header bytes were smashed.
    corrupted_records: Dict[int, List[int]] = field(default_factory=dict)
    #: radio -> truncate mode ("record" or "stream").
    truncated: Dict[int, str] = field(default_factory=dict)
    #: radio -> (start_us, end_us) local-time hole (records dropped).
    blackouts: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: radio -> (cut_timestamp_us, jump_us): records at/after the cut
    #: moved by jump_us.
    clock_jumps: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: radio -> number of records dropped by its blackout.
    blackout_dropped: Dict[int, int] = field(default_factory=dict)

    @property
    def any(self) -> bool:
        return bool(
            self.corrupted_records
            or self.truncated
            or self.blackouts
            or self.clock_jumps
        )

    def summary(self) -> str:
        return (
            f"corrupted_radios={len(self.corrupted_records)} "
            f"corrupted_records={sum(len(v) for v in self.corrupted_records.values())} "
            f"truncated={sorted(self.truncated)} "
            f"blackouts={sorted(self.blackouts)} "
            f"clock_jumps={sorted(self.clock_jumps)}"
        )


def _pick_radios(config: ScenarioConfig, stream: int, count: int,
                 candidates: Sequence[int]) -> List[int]:
    """Deterministically choose ``count`` victim radios for one fault type."""
    if count <= 0 or not candidates:
        return []
    rng = config.streams().entity("faults", stream)
    count = min(count, len(candidates))
    picked = rng.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[i] for i in picked)


def inject_record_faults(
    traces: Sequence[RadioTrace], config: ScenarioConfig
) -> Tuple[List[RadioTrace], FaultPlan]:
    """Apply capture-content faults (blackouts, clock jumps) in memory.

    Input traces are never mutated; affected traces are rebuilt.  With an
    all-off :class:`~repro.sim.scenario.FaultConfig` the input list is
    returned unchanged (same objects) and the plan is empty.
    """
    fc: FaultConfig = config.faults
    plan = FaultPlan()
    if not fc.blackout_radios and not fc.clock_jump_radios:
        return list(traces), plan

    candidates = sorted(t.radio_id for t in traces if len(t))
    blackout_set = set(
        _pick_radios(config, _BLACKOUT_STREAM, fc.blackout_radios, candidates)
    )
    jump_set = set(
        _pick_radios(config, _JUMP_STREAM, fc.clock_jump_radios, candidates)
    )

    out: List[RadioTrace] = []
    for trace in traces:
        records = trace.records
        radio = trace.radio_id
        touched = False
        if radio in blackout_set and records:
            first = records[0].timestamp_us
            span = records[-1].timestamp_us - first
            start = first + int(fc.blackout_start_fraction * span)
            end = start + int(fc.blackout_duration_fraction * span)
            kept = [
                r for r in records if not (start <= r.timestamp_us < end)
            ]
            plan.blackouts[radio] = (start, end)
            plan.blackout_dropped[radio] = len(records) - len(kept)
            records = kept
            touched = True
        if radio in jump_set and records:
            first = records[0].timestamp_us
            span = records[-1].timestamp_us - first
            cut = first + int(fc.clock_jump_at_fraction * span)
            records = [
                replace(r, timestamp_us=r.timestamp_us + fc.clock_jump_us)
                if r.timestamp_us >= cut
                else r
                for r in records
            ]
            plan.clock_jumps[radio] = (cut, fc.clock_jump_us)
            touched = True
        out.append(
            RadioTrace(
                radio, trace.channel, records, building_id=trace.building_id
            )
            if touched
            else trace
        )
    return out, plan


def _smash_header(encoded: bytearray) -> None:
    """Make a record's header detectably implausible (and mis-framed)."""
    encoded[_KIND_BYTE_OFFSET] = 0xEE               # invalid RecordKind
    encoded[_SNAP_LEN_OFFSET] = 0xFF                # absurd snap_len ->
    encoded[_SNAP_LEN_OFFSET + 1] = 0xFF            # framing is lost too


def write_faulty_traces(
    traces: Sequence[RadioTrace], directory: Path, config: ScenarioConfig
) -> FaultPlan:
    """Write traces to ``directory`` with the configured faults injected.

    Record-level faults (blackouts, clock jumps) are applied first; then
    each trace is encoded and damaged at the byte level: every record of
    every radio independently corrupts its header with probability
    ``corrupt_rate`` (drawn from the per-radio ``faults`` sub-stream, so
    the damage pattern is stable under fleet growth), and the chosen
    ``truncate_radios`` victims are cut at ``truncate_at_fraction`` —
    mid-record in the decompressed stream (``"record"`` mode: a clean
    gzip whose payload just stops) or mid-file in the compressed bytes
    (``"stream"`` mode: the gzip stream itself is damaged).

    The metadata sidecar always indexes the *pre-damage* record count —
    the count the radio believed it wrote — which is what makes strict
    reads of a damaged trace fail loudly and tolerant reads measurable.

    With an all-off config the written traces decode to exactly what
    :func:`repro.jtrace.io.write_traces` would have produced.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    fc: FaultConfig = config.faults

    faulted, plan = inject_record_faults(traces, config)
    candidates = sorted(t.radio_id for t in faulted if len(t))
    truncate_targets = dict.fromkeys(
        _pick_radios(config, _TRUNCATE_STREAM, fc.truncate_radios, candidates),
        fc.truncate_mode,
    )

    for trace in faulted:
        radio = trace.radio_id
        records = trace.records
        encoded = [bytearray(record_to_bytes(r)) for r in records]

        if fc.corrupt_rate > 0 and encoded:
            # Per-radio sub-stream: damage on radio 7 is the same whether
            # the fleet has 10 radios or 200.
            rng = config.streams().entity(
                "faults", _CORRUPT_STREAM * 1_000_000 + radio
            )
            draws = rng.random(len(encoded))
            hit = [i for i, p in enumerate(draws) if p < fc.corrupt_rate]
            for i in hit:
                _smash_header(encoded[i])
            if hit:
                plan.corrupted_records[radio] = hit

        blob = b"".join(bytes(e) for e in encoded)
        mode = truncate_targets.get(radio)
        data_path = directory / f"radio_{radio:04d}.jtr.gz"
        if mode == "record" and blob:
            # Cut inside the record that spans the fraction point, so the
            # decompressed stream ends with a partial record.
            cut = int(fc.truncate_at_fraction * len(blob))
            boundary = 0
            for e in encoded:
                if boundary + len(e) > cut:
                    cut = boundary + max(1, min(len(e) - 1, _HEADER.size // 2))
                    break
                boundary += len(e)
            else:
                cut = max(1, len(blob) - 1)
            blob = blob[:cut]
            plan.truncated[radio] = mode
        with gzip.open(data_path, "wb") as fh:
            fh.write(blob)
        if mode == "stream":
            gz = data_path.read_bytes()
            # Chop the compressed file itself; keep the gzip header so the
            # reader starts decoding before hitting the damage.
            cut = max(24, int(fc.truncate_at_fraction * len(gz)))
            data_path.write_bytes(gz[: min(cut, len(gz) - 1)])
            plan.truncated[radio] = mode
        # Like the record count, the framing index describes the
        # *pre-damage* stream the radio believed it wrote.  On a damaged
        # file the batch decoder's byte verification rejects the claims
        # the corruption invalidated and degrades to its serial scan at
        # exactly those offsets — which is precisely the adversarial
        # path the fault parity suite pins against the scalar decoder.
        snap_lens = [len(r.snap) for r in records]
        meta = {
            "radio_id": radio,
            "channel": trace.channel,
            "records": len(records),
            "first_timestamp_us": records[0].timestamp_us if records else None,
            "last_timestamp_us": records[-1].timestamp_us if records else None,
            "snap_lens_b64": base64.b64encode(
                struct.pack(f"<{len(snap_lens)}H", *snap_lens)
            ).decode("ascii"),
        }
        _meta_path(data_path).write_text(json.dumps(meta, indent=1))
    return plan
