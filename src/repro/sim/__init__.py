"""Simulation substrate: kernel, building, scenarios, workload, runner."""

from .building import Building, Placement, assign_channels, pod_reduction_order
from .kernel import EventHandle, Kernel
from .scenario import ClockConfig, ScenarioConfig, WorkloadConfig
from .workload import FlowArchetype, FlowRequest, generate_flows

__all__ = [
    "Building",
    "Placement",
    "assign_channels",
    "pod_reduction_order",
    "EventHandle",
    "Kernel",
    "SimulationArtifacts",
    "run_scenario",
    "ClockConfig",
    "ScenarioConfig",
    "WorkloadConfig",
    "FlowArchetype",
    "FlowRequest",
    "generate_flows",
]

_LAZY = ("SimulationArtifacts", "run_scenario")


def __getattr__(name):
    # The runner pulls in the MAC/monitor/TCP substrates, which themselves
    # import scenario configuration from this package; loading it lazily
    # keeps `repro.sim` import-light and breaks the cycle.
    if name in _LAZY:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
