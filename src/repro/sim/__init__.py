"""Simulation substrate: kernel, building, scenarios, workload, runner.

Scenario configuration is componentized (:mod:`repro.sim.scenario`),
named workload families live in the registry (:mod:`repro.sim.registry`),
and runs can execute either materialized (:func:`run_scenario`) or
streamed straight into the pipeline (:func:`repro.sim.stream.stream_scenario`).
"""

from .building import Building, Placement, assign_channels, pod_reduction_order
from .faults import FaultPlan, inject_record_faults, write_faulty_traces
from .kernel import EventHandle, Kernel
from .registry import (
    REGISTRY,
    SCALES,
    SCENARIO_SCHEMA_VERSION,
    ScenarioFamily,
    ScenarioRegistry,
    scenario_config,
)
from .scenario import (
    ClientBehaviorConfig,
    ClockConfig,
    FaultConfig,
    FleetConfig,
    GeometryConfig,
    ImpairmentConfig,
    ScenarioConfig,
    ScenarioStreams,
    WorkloadConfig,
)
from .workload import FlowArchetype, FlowRequest, generate_flows

__all__ = [
    "Building",
    "Placement",
    "assign_channels",
    "pod_reduction_order",
    "EventHandle",
    "Kernel",
    "SimulationArtifacts",
    "run_scenario",
    "build_scenario",
    "finalize_scenario",
    "RoamEvent",
    "ScenarioWorld",
    "stream_scenario",
    "StreamedScenario",
    "CampusArtifacts",
    "run_campus",
    "ClientBehaviorConfig",
    "ClockConfig",
    "FaultConfig",
    "FaultPlan",
    "inject_record_faults",
    "write_faulty_traces",
    "FleetConfig",
    "GeometryConfig",
    "ImpairmentConfig",
    "ScenarioConfig",
    "ScenarioStreams",
    "WorkloadConfig",
    "REGISTRY",
    "SCALES",
    "SCENARIO_SCHEMA_VERSION",
    "ScenarioFamily",
    "ScenarioRegistry",
    "scenario_config",
    "FlowArchetype",
    "FlowRequest",
    "generate_flows",
]

_LAZY = {
    # The runner pulls in the MAC/monitor/TCP substrates, which themselves
    # import scenario configuration from this package; loading it lazily
    # keeps `repro.sim` import-light and breaks the cycle.
    "SimulationArtifacts": "runner",
    "run_scenario": "runner",
    "build_scenario": "runner",
    "finalize_scenario": "runner",
    "RoamEvent": "runner",
    "ScenarioWorld": "runner",
    # The streaming feed sits on top of the runner; same cycle, same fix.
    "stream_scenario": "stream",
    "StreamedScenario": "stream",
    # Campus composition runs the runner per building; same cycle, same fix.
    "CampusArtifacts": "campus",
    "run_campus": "campus",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
