"""Scenario configuration.

One :class:`ScenarioConfig` fixes everything about a run — geometry, fleet
sizes, client mix, clock error magnitudes, workload, wired-path behaviour —
and a single seed makes the whole simulation reproducible.  Named
constructors give the scales used throughout the tests and benchmarks:

* :meth:`ScenarioConfig.tiny` — a handful of nodes, sub-second; unit tests.
* :meth:`ScenarioConfig.small` — one floor, seconds; integration tests.
* :meth:`ScenarioConfig.building` — the paper's shape (4 floors, 39 pods /
  156 radios, channels 1/6/11), compressed in time; benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ClockConfig:
    """Per-radio clock error magnitudes (Section 4.2).

    The 802.11 standard mandates <= 100 PPM skew; "our experience is that
    Atheros hardware has far better frequency stability in practice", so the
    default sigma is well under the mandate.  Drift — the change in skew
    over time — is a random walk in PPM.
    """

    offset_spread_us: float = 250_000.0
    skew_ppm_sigma: float = 15.0
    max_skew_ppm: float = 100.0
    drift_ppm_per_s_sigma: float = 0.02
    update_interval_us: int = 1_000_000


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic mix: the paper's oracle workload was "a combination of Web
    browsing ..., interactive ssh sessions ..., and scp copies of large
    files (producing both short and long flows as well as small and large
    packets)" (Section 6)."""

    flows_per_client_per_s: float = 0.5
    web_weight: float = 0.6
    ssh_weight: float = 0.2
    scp_weight: float = 0.2
    web_bytes_mean: float = 24_000.0
    ssh_bytes_mean: float = 4_000.0
    scp_bytes_mean: float = 400_000.0
    upload_fraction: float = 0.25
    mss_bytes: int = 1460

    def archetype_weights(self) -> tuple:
        total = self.web_weight + self.ssh_weight + self.scp_weight
        if total <= 0:
            raise ValueError("workload weights must sum to a positive value")
        return (
            self.web_weight / total,
            self.ssh_weight / total,
            self.scp_weight / total,
        )


@dataclass(frozen=True)
class ScenarioConfig:
    """Complete description of one simulated deployment and run."""

    seed: int = 0
    duration_us: int = 5_000_000

    # Geometry and fleet
    floors: int = 4
    aps_per_floor: int = 10
    n_pods: int = 39
    n_clients: int = 40
    corner_client_fraction: float = 0.15

    # Client capability mix: Section 7.3's protection analysis needs both
    # 802.11b ("legacy") and 802.11g clients present.
    fraction_11b_clients: float = 0.2

    # Radio parameters
    tx_power_ap_dbm: float = 18.0
    tx_power_client_dbm: float = 15.0

    # AP protection-mode policy: the paper's APs "will not turn off
    # protection until an hour has passed without sensing an 802.11b
    # client in range" (Section 7.3).
    protection_timeout_us: int = 3_600_000_000

    # Wired side (for the Fig 11 decomposition and the coverage oracle)
    wired_loss_rate: float = 0.003
    wired_rtt_us: int = 20_000
    arp_interval_us: int = 400_000   # Vernier-style tracker ARP cadence

    # Clients emit a background probe on their serving channel at this
    # interval (0 = never); probe responses are the range evidence the
    # Section 7.3 protection analysis consumes.
    client_rescan_interval_us: int = 0

    # The paper's building has an administrative wing (first floor, left)
    # with clients but no monitors or APs (footnote 2); clients there reach
    # distant APs and drag the Figure 6 client coverage tail down.
    uncovered_wing: bool = False

    # Environment
    microwave: bool = False

    # Diurnal shaping: when true, client activity follows a day curve
    # compressed into ``duration_us`` (midnight..midnight).
    diurnal: bool = False

    clocks: ClockConfig = field(default_factory=ClockConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.duration_us <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 <= self.fraction_11b_clients <= 1.0:
            raise ValueError("fraction_11b_clients must be in [0, 1]")
        if self.n_pods < 1 or self.n_clients < 1 or self.aps_per_floor < 1:
            raise ValueError("fleet sizes must be positive")

    # --- named scales -----------------------------------------------------

    @classmethod
    def tiny(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """A few nodes on one floor for sub-second unit tests."""
        base = cls(
            seed=seed,
            duration_us=500_000,
            floors=1,
            aps_per_floor=2,
            n_pods=3,
            n_clients=4,
        )
        return replace(base, **overrides)

    @classmethod
    def small(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """One floor, a dozen clients, a few seconds."""
        base = cls(
            seed=seed,
            duration_us=3_000_000,
            floors=2,
            aps_per_floor=4,
            n_pods=8,
            n_clients=12,
        )
        return replace(base, **overrides)

    @classmethod
    def building(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """The paper's deployment shape, compressed in time.

        ~39 pods x 4 radios ~ 156 monitor radios over 4 floors, ~35 APs on
        channels 1/6/11 — the fleet of Section 3 — with the day-long trace
        compressed into the configured duration.  ``n_pods`` is the nominal
        grid before the uncovered administrative wing (no APs, no pods,
        footnote 2) removes its share, leaving the paper's ~39 deployed
        pods.
        """
        base = cls(
            seed=seed,
            duration_us=10_000_000,
            floors=4,
            aps_per_floor=10,
            n_pods=45,
            n_clients=60,
            diurnal=True,
            client_rescan_interval_us=1_500_000,
            uncovered_wing=True,
            # The paper's trace sees broadband interference from microwave
            # ovens (Section 7.1); the duty-cycled noise bursts are also a
            # source of genuine wireless TCP loss for Figure 11.
            microwave=True,
            # The campus wired path is clean relative to the air (the
            # paper's Figure 11 finds the wireless component dominant).
            wired_loss_rate=0.0015,
        )
        return replace(base, **overrides)

    # --- derived ----------------------------------------------------------

    @property
    def n_aps(self) -> int:
        return self.floors * self.aps_per_floor

    @property
    def n_radios(self) -> int:
        """Monitor radios: each pod is 2 monitors x 2 radios (Section 3.2)."""
        return self.n_pods * 4

    def diurnal_activity(self, t_us: int) -> float:
        """Relative client activity level at simulated time ``t_us``.

        Maps ``[0, duration]`` onto a 24-hour day and returns a smooth
        curve matching Figure 8's description: most clients active from
        late morning (10am) until late afternoon (5pm), some in the early
        morning and well into the night, a low overnight floor of
        always-on devices.
        """
        if not self.diurnal:
            return 1.0
        hour = 24.0 * (t_us % self.duration_us) / self.duration_us
        # Sum of two gaussian bumps (morning ramp-in, afternoon peak) over
        # a 0.15 overnight floor.
        peak = math.exp(-((hour - 13.5) ** 2) / (2 * 3.2**2))
        evening = 0.35 * math.exp(-((hour - 20.0) ** 2) / (2 * 2.0**2))
        return 0.15 + 0.85 * min(1.0, peak + evening)
