"""Scenario configuration: pluggable components, one composed config.

A scenario is described by five orthogonal components, each a small frozen
dataclass that can be swapped or overridden independently:

* :class:`GeometryConfig` — the building and where infrastructure sits
  (floors, AP grid, pod count, the uncovered administrative wing);
* :class:`FleetConfig` — who is deployed (client count and placement
  style, capability mix, transmit powers, the AP protection policy);
* :class:`ClientBehaviorConfig` — how clients *act* (background rescans,
  probe bursts, channel sweeps, roaming between APs, arrival staggering);
* :class:`WorkloadConfig` — what they transfer (archetype mix, sizes,
  diurnal shaping, flash-crowd arrival waves);
* :class:`ImpairmentConfig` — what the environment does to them
  (microwave interference, wired-path loss and delay, ARP broadcast
  cadence);

plus :class:`ClockConfig` for the monitors' capture-clock error model.
:class:`ScenarioConfig` composes the six and stays drop-in compatible
with the old monolithic config: every historical flat field name is
accepted as a constructor keyword (routed into the owning component) and
readable as a property, so ``ScenarioConfig.small(fraction_11b_clients=0.5)``
keeps meaning what it always did.

Components compose without perturbing each other's randomness: every
*optional* behavior draws from its own :class:`ScenarioStreams` stream,
derived via ``np.random.SeedSequence`` spawn keys, so enabling roaming
(say) cannot shift the random draws that place clients or set clock
errors.  The named constructors give the scales used throughout the
tests and benchmarks:

* :meth:`ScenarioConfig.tiny` — a handful of nodes, sub-second; unit tests.
* :meth:`ScenarioConfig.small` — one floor, seconds; integration tests.
* :meth:`ScenarioConfig.building` — the paper's shape (4 floors, 39 pods /
  156 radios, channels 1/6/11), compressed in time; benchmarks.

Named scenario *families* built from these components live in
:mod:`repro.sim.registry`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ClockConfig:
    """Per-radio clock error magnitudes (Section 4.2).

    The 802.11 standard mandates <= 100 PPM skew; "our experience is that
    Atheros hardware has far better frequency stability in practice", so the
    default sigma is well under the mandate.  Drift — the change in skew
    over time — is a random walk in PPM.
    """

    offset_spread_us: float = 250_000.0
    skew_ppm_sigma: float = 15.0
    max_skew_ppm: float = 100.0
    drift_ppm_per_s_sigma: float = 0.02
    update_interval_us: int = 1_000_000


@dataclass(frozen=True)
class GeometryConfig:
    """The building and where the infrastructure is mounted."""

    floors: int = 4
    aps_per_floor: int = 10
    n_pods: int = 39

    # Campus scale: how many RF-isolated copies of this building the
    # deployment spans.  ``1`` is the paper's single building; larger
    # values are consumed by :func:`repro.sim.campus.run_campus`, which
    # composes that many independent building simulations (disjoint
    # radio-id ranges, per-building ``building_id`` stamps on every
    # trace) rather than growing one simulation — buildings never share
    # air, so composition is exact.
    n_buildings: int = 1

    # Which campus building this configuration simulates (always 0 for a
    # standalone building).  Campus composition sets it per sub-config so
    # each building mints MAC addresses from a disjoint block — building
    # 0's addresses are unchanged from a standalone run, keeping the
    # golden traces and the 1-building == ``run_scenario`` identity.
    building_index: int = 0

    # The paper's building has an administrative wing (first floor, left)
    # with clients but no monitors or APs (footnote 2); clients there reach
    # distant APs and drag the Figure 6 client coverage tail down.
    uncovered_wing: bool = False

    def __post_init__(self) -> None:
        if self.n_pods < 1 or self.aps_per_floor < 1 or self.floors < 1:
            raise ValueError("fleet sizes must be positive")
        if self.n_buildings < 1:
            raise ValueError("n_buildings must be positive")
        if self.building_index < 0:
            raise ValueError("building_index must be non-negative")


#: Client placement styles understood by the runner (see
#: :meth:`repro.sim.building.Building.place_clients`).
CLIENT_PLACEMENTS = ("offices", "hotspot")


@dataclass(frozen=True)
class FleetConfig:
    """The production population: clients, capabilities, radio policy."""

    n_clients: int = 40
    corner_client_fraction: float = 0.15

    # Client capability mix: Section 7.3's protection analysis needs both
    # 802.11b ("legacy") and 802.11g clients present.
    fraction_11b_clients: float = 0.2

    # Radio parameters
    tx_power_ap_dbm: float = 18.0
    tx_power_client_dbm: float = 15.0

    # AP protection-mode policy: the paper's APs "will not turn off
    # protection until an hour has passed without sensing an 802.11b
    # client in range" (Section 7.3).
    protection_timeout_us: int = 3_600_000_000

    # "offices" spreads clients through the building; "hotspot" packs them
    # into two mutually-hidden clusters (the hidden-terminal family).
    placement: str = "offices"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction_11b_clients <= 1.0:
            raise ValueError("fraction_11b_clients must be in [0, 1]")
        if self.n_clients < 1:
            raise ValueError("fleet sizes must be positive")
        if self.placement not in CLIENT_PLACEMENTS:
            raise ValueError(
                f"unknown client placement {self.placement!r} "
                f"(choose from {CLIENT_PLACEMENTS})"
            )


@dataclass(frozen=True)
class ClientBehaviorConfig:
    """How clients behave on the air, beyond carrying traffic."""

    # Clients emit a background probe on their serving channel at this
    # interval (0 = never); probe responses are the range evidence the
    # Section 7.3 protection analysis consumes.
    rescan_interval_us: int = 0

    # Probe requests per background rescan (real chipsets burst several).
    probe_burst: int = 1

    # When true, background rescans sweep every monitored channel (dwelling
    # briefly off the serving channel) instead of probing in place — the
    # channel-scanning client family.  Broadcast probes on all channels
    # densify bootstrap's cross-channel reference sets.
    scan_sweep: bool = False

    # Roaming: this fraction of clients periodically move to a new office
    # position and re-associate with the then-strongest AP.  Intervals are
    # exponential with the given mean.  0 disables roaming entirely.
    roam_fraction: float = 0.0
    roam_interval_us: int = 0

    # When set, client start times compress into [0, start_window_us]
    # instead of the default stagger — the flash-crowd arrival wave.
    start_window_us: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.roam_fraction <= 1.0:
            raise ValueError("roam_fraction must be in [0, 1]")
        if self.probe_burst < 1:
            raise ValueError("probe_burst must be at least 1")
        if self.roam_fraction > 0 and self.roam_interval_us <= 0:
            raise ValueError(
                "roaming clients need a positive roam_interval_us"
            )
        if self.start_window_us is not None and self.start_window_us <= 0:
            raise ValueError("start_window_us must be positive when set")


@dataclass(frozen=True)
class ImpairmentConfig:
    """Environmental and wired-side impairments."""

    # Environment: duty-cycled broadband interference from microwave ovens
    # (Section 7.1); also a source of genuine wireless TCP loss (Fig 11).
    microwave: bool = False

    # Wired side (for the Fig 11 decomposition and the coverage oracle)
    wired_loss_rate: float = 0.003
    wired_rtt_us: int = 20_000
    arp_interval_us: int = 400_000   # Vernier-style tracker ARP cadence

    def __post_init__(self) -> None:
        if not 0.0 <= self.wired_loss_rate < 1.0:
            raise ValueError("wired_loss_rate must be in [0, 1)")


@dataclass(frozen=True)
class WorkloadConfig:
    """Traffic mix: the paper's oracle workload was "a combination of Web
    browsing ..., interactive ssh sessions ..., and scp copies of large
    files (producing both short and long flows as well as small and large
    packets)" (Section 6)."""

    flows_per_client_per_s: float = 0.5
    web_weight: float = 0.6
    ssh_weight: float = 0.2
    scp_weight: float = 0.2
    web_bytes_mean: float = 24_000.0
    ssh_bytes_mean: float = 4_000.0
    scp_bytes_mean: float = 400_000.0
    upload_fraction: float = 0.25
    mss_bytes: int = 1460

    # Diurnal shaping: when true, client activity follows a day curve
    # compressed into the scenario duration (midnight..midnight).
    diurnal: bool = False

    # Flash crowd: a gaussian arrival wave multiplying the base rate by up
    # to (1 + flash_intensity), centered at flash_center (fraction of the
    # run) with flash_width (fraction of the run) standard deviation.
    flash_crowd: bool = False
    flash_center: float = 0.5
    flash_width: float = 0.08
    flash_intensity: float = 6.0

    def __post_init__(self) -> None:
        weights = (self.web_weight, self.ssh_weight, self.scp_weight)
        if any(w < 0 for w in weights):
            raise ValueError(
                f"archetype weights must be non-negative, got {weights}"
            )
        if sum(weights) <= 0:
            raise ValueError(
                "workload weights must sum to a positive value "
                f"(got web={self.web_weight}, ssh={self.ssh_weight}, "
                f"scp={self.scp_weight})"
            )
        if self.flash_crowd and self.flash_intensity <= 0:
            raise ValueError("flash_intensity must be positive")
        if self.flash_crowd and not 0 < self.flash_width:
            raise ValueError("flash_width must be positive")
        if self.flash_crowd and not 0.0 <= self.flash_center <= 1.0:
            raise ValueError(
                "flash_center is a fraction of the run, must be in [0, 1] "
                f"(got {self.flash_center})"
            )

    def archetype_weights(self) -> tuple:
        """The (web, ssh, scp) mix, explicitly normalized to sum to 1.

        A zero or negative sum cannot reach here: construction already
        rejects it in ``__post_init__``.
        """
        total = self.web_weight + self.ssh_weight + self.scp_weight
        return (
            self.web_weight / total,
            self.ssh_weight / total,
            self.scp_weight / total,
        )

    def flash_envelope(self, t_us: int, duration_us: int) -> float:
        """Arrival-rate multiplier of the flash wave at ``t_us`` (>= 1)."""
        if not self.flash_crowd:
            return 1.0
        center = self.flash_center * duration_us
        width = max(1.0, self.flash_width * duration_us)
        return 1.0 + self.flash_intensity * math.exp(
            -((t_us - center) ** 2) / (2 * width**2)
        )

    @property
    def flash_peak(self) -> float:
        """Maximum value :meth:`flash_envelope` can take."""
        return 1.0 + self.flash_intensity if self.flash_crowd else 1.0


#: Capture fault modes understood by the trace writer (see
#: :mod:`repro.sim.faults`).
TRUNCATE_MODES = ("record", "stream")


@dataclass(frozen=True)
class FaultConfig:
    """Injected capture-path faults (the robustness harness).

    Everything here models damage *between* the radio's antenna and the
    trace file the pipeline reads — the failure modes a real day-scale
    deployment accumulates — so every recovery path in ``jtrace``/``core``
    is exercised by generated workloads rather than hand-crafted fixtures:

    * ``corrupt_rate`` — per-record probability that the encoded record's
      header bytes are smashed on the way to disk (disk/DMA corruption;
      exercises the skip-policy resynchronization scanner);
    * ``truncate_radios`` — this many radios' trace files are cut at
      ``truncate_at_fraction`` of the run: ``"record"`` mode cuts the
      decompressed byte stream mid-record (radio power loss), ``"stream"``
      mode chops the compressed file itself (incomplete flush at
      collection time);
    * ``blackout_radios`` — this many radios go dark (capture nothing) for
      ``blackout_duration_fraction`` of the run starting at
      ``blackout_start_fraction``, then resume — the radio
      blackout/reboot-mid-trace fault (the trace stays decodable; the
      timeline simply has a hole);
    * ``clock_jump_radios`` — this many radios' capture clocks step by
      ``clock_jump_us`` at ``clock_jump_at_fraction`` of the run
      (firmware reboot resetting the TSF; exercises the bootstrap's
      unstable-clock-fit quarantine when the jump lands inside the
      examination window).

    All-off defaults mean a scenario with a ``FaultConfig()`` is
    bit-identical to one without: the component draws nothing from its
    random stream unless a fault is enabled (the spawn-key discipline of
    PR 4), and fault radio selection uses the dedicated ``faults`` stream
    so enabling corruption cannot reshuffle workload draws.
    """

    corrupt_rate: float = 0.0
    truncate_radios: int = 0
    truncate_at_fraction: float = 0.8
    truncate_mode: str = "record"
    blackout_radios: int = 0
    blackout_start_fraction: float = 0.4
    blackout_duration_fraction: float = 0.2
    clock_jump_radios: int = 0
    clock_jump_us: int = 2_000_000
    clock_jump_at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.corrupt_rate <= 1.0:
            raise ValueError("corrupt_rate must be in [0, 1]")
        if self.truncate_radios < 0 or self.blackout_radios < 0:
            raise ValueError("fault radio counts must be >= 0")
        if self.clock_jump_radios < 0:
            raise ValueError("fault radio counts must be >= 0")
        if self.truncate_mode not in TRUNCATE_MODES:
            raise ValueError(
                f"unknown truncate_mode {self.truncate_mode!r} "
                f"(choose from {TRUNCATE_MODES})"
            )
        for name in (
            "truncate_at_fraction",
            "blackout_start_fraction",
            "blackout_duration_fraction",
            "clock_jump_at_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.clock_jump_radios and self.clock_jump_us == 0:
            raise ValueError("clock_jump_us must be nonzero when jumps are on")

    @property
    def any(self) -> bool:
        """True when at least one fault is enabled."""
        return bool(
            self.corrupt_rate > 0
            or self.truncate_radios
            or self.blackout_radios
            or self.clock_jump_radios
        )


#: Component attribute names on :class:`ScenarioConfig`.
COMPONENT_NAMES = (
    "geometry",
    "fleet",
    "behavior",
    "impairments",
    "workload",
    "faults",
    "clocks",
)

#: Historical flat spellings that differ from the component field name.
_FLAT_ALIASES = {
    "client_rescan_interval_us": ("behavior", "rescan_interval_us"),
}


def _build_flat_routes() -> Dict[str, Tuple[str, str]]:
    """Map every component field name to its owning component.

    Field names are required to be unique across components so any of
    them can be passed flat to :class:`ScenarioConfig` unambiguously.
    """
    routes: Dict[str, Tuple[str, str]] = dict(_FLAT_ALIASES)
    for component, cls in (
        ("geometry", GeometryConfig),
        ("fleet", FleetConfig),
        ("behavior", ClientBehaviorConfig),
        ("impairments", ImpairmentConfig),
        ("workload", WorkloadConfig),
        ("faults", FaultConfig),
    ):
        for f in fields(cls):
            if f.name in routes:
                raise TypeError(
                    f"scenario component field {f.name!r} is ambiguous: "
                    f"declared by both {routes[f.name][0]} and {component}"
                )
            routes[f.name] = (component, f.name)
    return routes


_FLAT_ROUTES = _build_flat_routes()

#: Spawn keys for the per-component random streams.  Fixed integers (never
#: reused, never renumbered) so a stream's identity survives unrelated
#: components gaining or losing features.
_STREAM_KEYS = {
    "geometry": 1,
    "fleet": 2,
    "behavior": 3,
    "workload": 4,
    "impairments": 5,
    "clocks": 6,
    "roam": 7,
    "arrival": 8,
    "faults": 9,
    # Per-building sub-seed derivation for campus composition
    # (:mod:`repro.sim.campus`): building b of a campus simulates with
    # seed ``SeedSequence(seed, spawn_key=(10, b))``.
    "campus": 10,
}


@dataclass(frozen=True)
class ScenarioStreams:
    """Per-component random streams for one scenario seed.

    Streams are derived with ``np.random.SeedSequence`` spawn keys —
    ``SeedSequence(seed, spawn_key=(key,))`` is exactly the child
    ``SeedSequence(seed).spawn(...)`` would hand out for that index, but
    addressed by a stable per-component key instead of call order.  Two
    consequences the scenario subsystem relies on:

    * components cannot perturb each other: the roaming component's draws
      come from the ``roam`` stream no matter how many draws the workload
      stream made;
    * per-entity streams (``entity("roam", 3)`` for roamer #3) are
      independent of how many entities exist, so adding a client does not
      reshuffle the others' behavior.
    """

    seed: int

    def component(self, name: str) -> np.random.Generator:
        """The named component's own generator."""
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(_STREAM_KEYS[name],))
        )

    def entity(self, name: str, index: int) -> np.random.Generator:
        """A per-entity generator under the named component stream."""
        return np.random.default_rng(
            np.random.SeedSequence(
                self.seed, spawn_key=(_STREAM_KEYS[name], index)
            )
        )


@dataclass(frozen=True, init=False)
class ScenarioConfig:
    """Complete description of one simulated deployment and run.

    Construct it from components::

        ScenarioConfig(seed=7, geometry=GeometryConfig(floors=2),
                       workload=WorkloadConfig(flash_crowd=True))

    or with the historical flat keywords, which route into the owning
    component (and may be mixed with component keywords, flat winning)::

        ScenarioConfig(seed=7, floors=2, flash_crowd=True)

    Every flat name is also readable as a property (``config.floors``),
    so pre-component call sites keep working unchanged.
    """

    seed: int
    duration_us: int
    geometry: GeometryConfig
    fleet: FleetConfig
    behavior: ClientBehaviorConfig
    impairments: ImpairmentConfig
    workload: WorkloadConfig
    faults: FaultConfig
    clocks: ClockConfig

    def __init__(
        self,
        seed: int = 0,
        duration_us: int = 5_000_000,
        *,
        geometry: Optional[GeometryConfig] = None,
        fleet: Optional[FleetConfig] = None,
        behavior: Optional[ClientBehaviorConfig] = None,
        impairments: Optional[ImpairmentConfig] = None,
        workload: Optional[WorkloadConfig] = None,
        faults: Optional[FaultConfig] = None,
        clocks: Optional[ClockConfig] = None,
        **flat,
    ) -> None:
        components = {
            "geometry": geometry if geometry is not None else GeometryConfig(),
            "fleet": fleet if fleet is not None else FleetConfig(),
            "behavior": behavior
            if behavior is not None
            else ClientBehaviorConfig(),
            "impairments": impairments
            if impairments is not None
            else ImpairmentConfig(),
            "workload": workload if workload is not None else WorkloadConfig(),
            "faults": faults if faults is not None else FaultConfig(),
        }
        routed: Dict[str, Dict[str, object]] = {}
        for name, value in flat.items():
            route = _FLAT_ROUTES.get(name)
            if route is None:
                raise TypeError(
                    f"ScenarioConfig got an unexpected keyword {name!r}"
                )
            component, attr = route
            routed.setdefault(component, {})[attr] = value
        for component, attrs in routed.items():
            components[component] = replace(components[component], **attrs)
        if duration_us <= 0:
            raise ValueError("duration must be positive")
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "duration_us", int(duration_us))
        for name, value in components.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self, "clocks", clocks if clocks is not None else ClockConfig()
        )

    # --- composition helpers ---------------------------------------------

    def with_overrides(self, **overrides) -> "ScenarioConfig":
        """This config with components and/or flat fields replaced.

        Accepts exactly the constructor's keywords; unspecified components
        carry over from this config.
        """
        kwargs = {name: getattr(self, name) for name in COMPONENT_NAMES}
        kwargs["seed"] = self.seed
        kwargs["duration_us"] = self.duration_us
        for name in ("seed", "duration_us", *COMPONENT_NAMES):
            if name in overrides:
                kwargs[name] = overrides.pop(name)
        return ScenarioConfig(**kwargs, **overrides)

    def streams(self) -> ScenarioStreams:
        """The per-component random streams for this config's seed."""
        return ScenarioStreams(self.seed)

    # --- named scales -----------------------------------------------------

    @classmethod
    def tiny(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """A few nodes on one floor for sub-second unit tests."""
        return cls._scaled(
            dict(
                seed=seed,
                duration_us=500_000,
                floors=1,
                aps_per_floor=2,
                n_pods=3,
                n_clients=4,
            ),
            overrides,
        )

    @classmethod
    def small(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """One floor, a dozen clients, a few seconds."""
        return cls._scaled(
            dict(
                seed=seed,
                duration_us=3_000_000,
                floors=2,
                aps_per_floor=4,
                n_pods=8,
                n_clients=12,
            ),
            overrides,
        )

    @classmethod
    def building(cls, seed: int = 0, **overrides) -> "ScenarioConfig":
        """The paper's deployment shape, compressed in time.

        ~39 pods x 4 radios ~ 156 monitor radios over 4 floors, ~35 APs on
        channels 1/6/11 — the fleet of Section 3 — with the day-long trace
        compressed into the configured duration.  ``n_pods`` is the nominal
        grid before the uncovered administrative wing (no APs, no pods,
        footnote 2) removes its share, leaving the paper's ~39 deployed
        pods.
        """
        return cls._scaled(
            dict(
                seed=seed,
                duration_us=10_000_000,
                floors=4,
                aps_per_floor=10,
                n_pods=45,
                n_clients=60,
                diurnal=True,
                client_rescan_interval_us=1_500_000,
                uncovered_wing=True,
                # The paper's trace sees broadband interference from
                # microwave ovens (Section 7.1); the duty-cycled noise
                # bursts are also a source of genuine wireless TCP loss
                # for Figure 11.
                microwave=True,
                # The campus wired path is clean relative to the air (the
                # paper's Figure 11 finds the wireless component dominant).
                wired_loss_rate=0.0015,
            ),
            overrides,
        )

    @classmethod
    def _scaled(cls, defaults: dict, overrides: dict) -> "ScenarioConfig":
        """Merge a named scale's flat defaults with caller overrides.

        A component passed whole in ``overrides`` wins over the scale's
        flat defaults for that component (otherwise ``tiny(geometry=...)``
        would have its floors silently reset by the scale).
        """
        merged = dict(defaults)
        for component in COMPONENT_NAMES:
            if component in overrides:
                for name, route in _FLAT_ROUTES.items():
                    if route[0] == component:
                        merged.pop(name, None)
        merged.update(overrides)
        return cls(**merged)

    # --- legacy flat views -------------------------------------------------

    @property
    def floors(self) -> int:
        return self.geometry.floors

    @property
    def aps_per_floor(self) -> int:
        return self.geometry.aps_per_floor

    @property
    def n_pods(self) -> int:
        return self.geometry.n_pods

    @property
    def n_buildings(self) -> int:
        return self.geometry.n_buildings

    @property
    def building_index(self) -> int:
        return self.geometry.building_index

    @property
    def uncovered_wing(self) -> bool:
        return self.geometry.uncovered_wing

    @property
    def n_clients(self) -> int:
        return self.fleet.n_clients

    @property
    def corner_client_fraction(self) -> float:
        return self.fleet.corner_client_fraction

    @property
    def fraction_11b_clients(self) -> float:
        return self.fleet.fraction_11b_clients

    @property
    def tx_power_ap_dbm(self) -> float:
        return self.fleet.tx_power_ap_dbm

    @property
    def tx_power_client_dbm(self) -> float:
        return self.fleet.tx_power_client_dbm

    @property
    def protection_timeout_us(self) -> int:
        return self.fleet.protection_timeout_us

    @property
    def client_rescan_interval_us(self) -> int:
        return self.behavior.rescan_interval_us

    @property
    def wired_loss_rate(self) -> float:
        return self.impairments.wired_loss_rate

    @property
    def wired_rtt_us(self) -> int:
        return self.impairments.wired_rtt_us

    @property
    def arp_interval_us(self) -> int:
        return self.impairments.arp_interval_us

    @property
    def microwave(self) -> bool:
        return self.impairments.microwave

    @property
    def diurnal(self) -> bool:
        return self.workload.diurnal

    # --- derived ----------------------------------------------------------

    @property
    def n_aps(self) -> int:
        return self.geometry.floors * self.geometry.aps_per_floor

    @property
    def n_radios(self) -> int:
        """Monitor radios: each pod is 2 monitors x 2 radios (Section 3.2)."""
        return self.geometry.n_pods * 4

    def diurnal_activity(self, t_us: int) -> float:
        """Relative client activity level at simulated time ``t_us``.

        Maps ``[0, duration]`` onto a 24-hour day and returns a smooth
        curve matching Figure 8's description: most clients active from
        late morning (10am) until late afternoon (5pm), some in the early
        morning and well into the night, a low overnight floor of
        always-on devices.
        """
        if not self.workload.diurnal:
            return 1.0
        hour = 24.0 * (t_us % self.duration_us) / self.duration_us
        # Sum of two gaussian bumps (morning ramp-in, afternoon peak) over
        # a 0.15 overnight floor.
        peak = math.exp(-((hour - 13.5) ** 2) / (2 * 3.2**2))
        evening = 0.35 * math.exp(-((hour - 20.0) ** 2) / (2 * 2.0**2))
        return 0.15 + 0.85 * min(1.0, peak + evening)

    def arrival_envelope(self, t_us: int) -> float:
        """Combined arrival modulation: diurnal curve x flash wave."""
        return self.diurnal_activity(t_us) * self.workload.flash_envelope(
            t_us, self.duration_us
        )
