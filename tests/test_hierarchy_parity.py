"""Hierarchical sharding parity: the merge tree against every other mode.

The tentpole claim of ``repro.core.unify.hierarchy`` is bit-identity *by
construction*: whatever tree shape the plan builds, however the leaves
execute (serial, pool, pool with dying workers), and whatever damage the
capture path injected, the jframe stream is exactly the flat
:class:`~repro.core.unify.sharded.ShardedUnifier`'s.  This suite holds
that claim over the full matrix — tree depth x execution mode x fault
state — plus the live daemon (which shards through the same
``partition_traces``) and the incremental pool-widening protocol of
:class:`~repro.core.sync.sharded.ShardedBootstrap` (accumulated delta
payloads must reproduce a full-window collection bit for bit).
"""

import os

import pytest

from repro.core.faults import RetryPolicy
from repro.core.sync.bootstrap import (
    bootstrap_synchronization,
    union_shard_payloads,
)
from repro.core.sync.sharded import (
    ShardedBootstrap,
    _collect_shard_prefixes,
)
from repro.core.unify import MergeTree, ShardPlan, ShardedUnifier
from repro.core.unify.sharded import _unify_shard
from repro.jtrace.io import RadioTrace
from repro.service import JigsawDaemon
from repro.sim.campus import run_campus
from repro.sim.faults import inject_record_faults
from repro.sim.registry import scenario_config

SEED = 17
N_BUILDINGS = 4


def fingerprints(jframes):
    """Full-identity fingerprint: frame content plus every instance."""
    return [
        (
            jf.timestamp_us,
            jf.kind,
            jf.channel,
            jf.frame_len,
            jf.fcs,
            jf.rate_mbps,
            jf.duration_us,
            jf.dispersion_us,
            None if jf.transmitter is None else jf.transmitter.value,
            tuple(
                (i.radio_id, i.local_us, i.universal_us)
                for i in jf.instances
            ),
        )
        for jf in jframes
    ]


def stripped(traces):
    """The same records with the locality stamps removed (legacy input)."""
    return [RadioTrace(t.radio_id, t.channel, t.records) for t in traces]


@pytest.fixture(scope="module")
def campus():
    return run_campus(
        scenario_config("campus", "tiny", seed=SEED, n_buildings=N_BUILDINGS)
    )


@pytest.fixture(scope="module")
def bootstrap(campus):
    result = bootstrap_synchronization(
        campus.traces, clock_groups=campus.clock_groups
    )
    # Stamped fleets default to island_mode="local": every building is
    # its own expected reference island, nobody gets quarantined off a
    # "primary" building's timeline.
    assert result.quarantined == {}
    assert sorted(len(i) for i in result.islands) == sorted(
        len([t for t in campus.traces if t.building_id == b])
        for b in range(N_BUILDINGS)
    )
    return result


@pytest.fixture(scope="module")
def reference(campus, bootstrap):
    """The acceptance baseline: the flat coordinator, serial."""
    return ShardedUnifier(max_workers=0).unify(campus.traces, bootstrap)


@pytest.fixture(scope="module")
def stripped_reference(campus, bootstrap):
    """The legacy baseline: locality stamps removed, channel shards only.

    Not bit-identical to ``reference`` — and that is a feature, pinned by
    ``test_hierarchy_confines_headless_attachment``: mixed channel shards
    let a headless corrupt record attach to a timestamp-adjacent group
    from a *different building*, which (building, channel) leaves
    preclude.  Valid-frame assembly is partition-independent either way.
    """
    return ShardedUnifier(max_workers=0).unify(
        stripped(campus.traces), bootstrap
    )


def assert_results_identical(result, reference):
    assert fingerprints(result.jframes) == fingerprints(reference.jframes)
    assert result.stats == reference.stats
    assert set(result.tracks) == set(reference.tracks)


class TestTreeShapeMatrix:
    """Tree depth x execution mode, all against the flat coordinator."""

    @pytest.mark.parametrize("max_workers", [1, 2], ids=["serial", "pool"])
    @pytest.mark.parametrize("fanout", [8, 2], ids=["2-level", "3-level"])
    def test_tree_matches_flat_coordinator(
        self, campus, bootstrap, reference, fanout, max_workers
    ):
        tree = MergeTree(max_workers=max_workers, fanout=fanout)
        result = tree.unify(campus.traces, bootstrap)
        assert_results_identical(result, reference)
        expected = (
            f"hierarchy-pool{tree.health.pool_workers}"
            if max_workers > 1
            else "hierarchy-serial"
        )
        assert tree.last_engine == expected

    @pytest.mark.parametrize("max_workers", [2], ids=["pool"])
    def test_flat_channel_shards_match(
        self, campus, bootstrap, stripped_reference, max_workers
    ):
        """On legacy (unstamped) input every execution mode of the flat
        coordinator interleaves identically."""
        result = ShardedUnifier(max_workers=max_workers).unify(
            stripped(campus.traces), bootstrap
        )
        assert_results_identical(result, stripped_reference)

    def test_tree_on_stripped_traces_matches(
        self, campus, bootstrap, stripped_reference
    ):
        """A MergeTree over legacy (unstamped) traces degrades to the
        flat channel plan and still reproduces the flat coordinator."""
        tree = MergeTree(max_workers=1)
        result = tree.unify(stripped(campus.traces), bootstrap)
        assert_results_identical(result, stripped_reference)

    def test_hierarchy_confines_headless_attachment(
        self, reference, stripped_reference
    ):
        """The one sanctioned divergence between the stamped and legacy
        partitions: a corrupt record whose header is unparseable attaches
        to the timestamp-nearest open group *in its shard*.  Mixed
        channel shards can pick a group from another building; locality
        leaves cannot, so the hierarchy emits at least as many jframes
        (the strays front their own groups).  Re-partitioning only moves
        records between groups — it never drops or duplicates one — so
        the total instance count is conserved."""
        assert len(reference.jframes) >= len(stripped_reference.jframes)

        def instances(result):
            return sum(len(jf.instances) for jf in result.jframes)

        assert instances(reference) == instances(stripped_reference)

    def test_iter_and_stream_apis_match_batch(
        self, campus, bootstrap, reference
    ):
        jframes = list(MergeTree(max_workers=1).iter_unify(
            campus.traces, bootstrap
        ))
        assert fingerprints(jframes) == fingerprints(reference.jframes)


class TestPlanShapes:
    def test_campus_plan_is_building_major(self, campus):
        plan = ShardPlan.build(campus.traces)
        described = plan.describe()
        assert described["localities"] == N_BUILDINGS
        # One leaf per (building, channel) pair actually present.
        pairs = {
            (t.building_id, t.channel) for t in campus.traces if len(t)
        }
        assert described["leaves"] == len(
            {
                (leaf.locality, ch)
                for leaf in plan.leaves
                for ch in leaf.channels
            }
        )
        assert described["leaves"] >= len(pairs)
        # Default fanout: building-local nodes, then one root level.
        assert described["depth"] == 2

    def test_narrow_fanout_adds_levels(self, campus):
        plan = ShardPlan.build(campus.traces, fanout=2)
        # 4 building nodes reduce 2-at-a-time: 4 -> 2 -> 1.
        assert plan.depth == 3
        assert len(plan.levels[-1]) == 1

    def test_legacy_plan_falls_back_to_channels(self, campus):
        plan = ShardPlan.build(stripped(campus.traces))
        assert all(leaf.locality is None for leaf in plan.leaves)
        assert plan.describe()["localities"] == 0

    def test_mixed_stamps_fall_back_to_channels(self, campus):
        """partition_traces is all-or-nothing on locality: one unstamped
        trace must demote the whole plan (never a half-hierarchy)."""
        traces = list(campus.traces)
        traces[0] = RadioTrace(
            traces[0].radio_id, traces[0].channel, traces[0].records
        )
        plan = ShardPlan.build(traces)
        assert all(leaf.locality is None for leaf in plan.leaves)

    def test_degenerate_fanout_rejected(self, campus):
        with pytest.raises(ValueError, match="fanout"):
            ShardPlan.build(campus.traces, fanout=1)


# --------------------------------------------------------------------------
# Fault axis: dying pool workers and capture-path damage
# --------------------------------------------------------------------------

_CRASH_FLAG = None


def _crashy_leaf(unifier, traces, bootstrap):
    """Leaf runner that hard-kills its worker once, then behaves."""
    if _CRASH_FLAG and not os.path.exists(_CRASH_FLAG):
        open(_CRASH_FLAG, "w").close()
        os._exit(1)
    return _unify_shard(unifier, traces, bootstrap)


@pytest.mark.faults
class TestFaultMatrix:
    def test_tree_survives_worker_death_bit_identical(
        self, campus, bootstrap, reference, tmp_path
    ):
        global _CRASH_FLAG
        _CRASH_FLAG = str(tmp_path / "tree_crash")
        try:
            tree = MergeTree(
                max_workers=2,
                leaf_runner=_crashy_leaf,
                retry_policy=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            )
            result = tree.unify(campus.traces, bootstrap)
        finally:
            _CRASH_FLAG = None
        assert tree.health.worker_crashes >= 1
        assert_results_identical(result, reference)

    @pytest.mark.parametrize("max_workers", [1, 2], ids=["serial", "pool"])
    def test_fault_injected_shards_stay_identical(self, campus, max_workers):
        """Blackouts and clock jumps on campus traces: the damaged fleet
        must still merge identically through flat shards and the tree."""
        faulted_config = scenario_config(
            "campus",
            "tiny",
            seed=SEED,
            n_buildings=N_BUILDINGS,
            blackout_radios=2,
            clock_jump_radios=2,
        )
        faulted, plan = inject_record_faults(campus.traces, faulted_config)
        assert plan.any
        # Stamps survive the rebuild — the tree still plans hierarchically.
        assert all(t.building_id is not None for t in faulted)
        boot = bootstrap_synchronization(
            faulted, clock_groups=campus.clock_groups
        )
        flat = ShardedUnifier(max_workers=0).unify(faulted, boot)
        result = MergeTree(max_workers=max_workers).unify(faulted, boot)
        assert_results_identical(result, flat)


# --------------------------------------------------------------------------
# Daemon axis: the live service shards through the same partition
# --------------------------------------------------------------------------


class ListFeed:
    """Minimal service feed over materialized (campus) traces."""

    def __init__(self, traces, clock_groups):
        self.traces = list(traces)
        self._clock_groups = [list(g) for g in clock_groups]
        self._by_radio = {t.radio_id: t for t in self.traces}
        self._cursor = {t.radio_id: 0 for t in self.traces}

    def clock_groups(self):
        return [list(g) for g in self._clock_groups]

    def consumed(self):
        return dict(self._cursor)

    def seek(self, consumed):
        self._cursor.update(consumed)

    def next_record(self, radio_id):
        trace = self._by_radio[radio_id]
        index = self._cursor[radio_id]
        if index >= len(trace.records):
            return None
        self._cursor[radio_id] = index + 1
        return trace.records[index]


class TestDaemonParity:
    def test_daemon_matches_tree_batch(self, campus):
        """The live daemon over a campus feed emits the tree's jframes,
        jframe for jframe (same partition, same tie-break order)."""
        daemon = JigsawDaemon(ListFeed(campus.traces, campus.clock_groups))
        service = daemon.serve()
        assert service is not None
        # Reproduce the daemon's bootstrap policy exactly (serial
        # sharded prepass, 1 s window, auto-widen) for the batch leg.
        boot = ShardedBootstrap(max_workers=1).bootstrap(
            campus.traces, clock_groups=campus.clock_groups
        )
        batch = MergeTree(max_workers=1).unify(campus.traces, boot)
        report = service.report
        assert fingerprints(report.jframes) == fingerprints(batch.jframes)
        assert report.unification.stats == batch.stats
        assert report.bootstrap.offsets_us == boot.offsets_us
        assert report.bootstrap.quarantined == {}


# --------------------------------------------------------------------------
# Incremental pool widening: delta shipping is bit-exact
# --------------------------------------------------------------------------


class TestWidenDelta:
    def test_delta_payload_union_matches_full_collection(self, campus):
        """The protocol's core identity: a round's payload over just the
        delta records, re-anchored at its absolute index base, unions
        with earlier rounds into exactly the payload one full-window
        collection would have produced."""
        shard = [
            (pos, t.radio_id, t.records)
            for pos, t in enumerate(campus.traces)
        ]
        full = _collect_shard_prefixes(
            [(pos, rid, 0, records) for pos, rid, records in shard]
        )
        rounds = []
        for lo_frac, hi_frac in ((0.0, 0.3), (0.3, 0.7), (0.7, 1.0)):
            rounds.append(
                _collect_shard_prefixes(
                    [
                        (pos, rid, lo, records[lo:hi])
                        for pos, rid, records in shard
                        for lo in [int(lo_frac * len(records))]
                        for hi in [
                            len(records)
                            if hi_frac == 1.0
                            else int(hi_frac * len(records))
                        ]
                    ]
                )
            )
        assert union_shard_payloads(rounds) == union_shard_payloads([full])

    def test_pool_widening_matches_serial_and_reference(self, campus):
        """End to end with a window small enough to force widening: the
        resident-pool delta protocol must land on the serial incremental
        path's exact result, which must match the one-shot reference."""
        kwargs = dict(window_us=20_000, auto_widen=True)
        serial = ShardedBootstrap(max_workers=1, **kwargs)
        serial_result = serial.bootstrap(
            campus.traces, clock_groups=campus.clock_groups
        )
        pool = ShardedBootstrap(max_workers=2, **kwargs)
        pool_result = pool.bootstrap(
            campus.traces, clock_groups=campus.clock_groups
        )
        assert serial_result.widen_rounds > 0, (
            "window did not force widening; shrink window_us"
        )
        assert pool.health.pool_workers == 2
        assert pool_result.offsets_us == serial_result.offsets_us
        assert pool_result.widen_rounds == serial_result.widen_rounds
        assert pool_result.window_us == serial_result.window_us
        assert pool_result.quarantined == serial_result.quarantined
        assert (
            pool_result.reference_frames_seen
            == serial_result.reference_frames_seen
        )
        reference = bootstrap_synchronization(
            campus.traces,
            clock_groups=campus.clock_groups,
            window_us=20_000,
        )
        assert serial_result.offsets_us == reference.offsets_us
