"""Unit tests for the network packet model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packets import (
    ArpPacket,
    IpPacket,
    IpProto,
    PacketParseError,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
    arp_to_bytes,
    format_ip,
    ip_to_bytes,
    packet_from_bytes,
    parse_ip,
    try_parse_packet,
)


class TestIpText:
    def test_round_trip(self):
        assert format_ip(parse_ip("10.1.2.3")) == "10.1.2.3"

    def test_parse_rejects_bad(self):
        with pytest.raises(ValueError):
            parse_ip("10.1.2")
        with pytest.raises(ValueError):
            parse_ip("10.1.2.300")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_format_parse_inverse(self, addr):
        assert parse_ip(format_ip(addr)) == addr


class TestTcpSegment:
    def test_seq_end_counts_payload(self):
        seg = TcpSegment(1, 2, seq=100, ack=0, flags=TcpFlags.ACK, payload_len=50)
        assert seg.seq_end == 150

    def test_syn_consumes_sequence(self):
        seg = TcpSegment(1, 2, seq=100, ack=0, flags=TcpFlags.SYN)
        assert seg.seq_end == 101

    def test_fin_with_payload(self):
        seg = TcpSegment(
            1, 2, seq=100, ack=0,
            flags=TcpFlags.FIN | TcpFlags.ACK, payload_len=10,
        )
        assert seg.seq_end == 111

    def test_flag_properties(self):
        seg = TcpSegment(1, 2, 0, 0, TcpFlags.SYN | TcpFlags.ACK)
        assert seg.is_syn and seg.is_ack and not seg.is_fin

    def test_seq_end_wraps(self):
        seg = TcpSegment(1, 2, seq=0xFFFFFFF0, ack=0,
                         flags=TcpFlags.ACK, payload_len=0x20)
        assert seg.seq_end == 0x10


class TestSerialization:
    def test_tcp_round_trip(self):
        packet = IpPacket(
            parse_ip("10.0.0.1"),
            parse_ip("172.16.0.2"),
            TcpSegment(4321, 80, seq=1000, ack=2000,
                       flags=TcpFlags.ACK | TcpFlags.PSH, payload_len=1460),
        )
        decoded = packet_from_bytes(ip_to_bytes(packet))
        assert decoded == packet
        assert decoded.proto is IpProto.TCP

    def test_udp_round_trip(self):
        packet = IpPacket(1, 2, UdpDatagram(1111, 2222, payload_len=99))
        assert packet_from_bytes(ip_to_bytes(packet)) == packet

    def test_arp_round_trip(self):
        packet = ArpPacket(1, b"\x01" * 6, 100, b"\x00" * 6, 200)
        decoded = packet_from_bytes(arp_to_bytes(packet))
        assert decoded == packet
        assert decoded.is_request

    def test_truncated_payload_filler_still_parses(self):
        packet = IpPacket(
            1, 2,
            TcpSegment(1, 2, 0, 0, TcpFlags.ACK, payload_len=1460),
        )
        raw = ip_to_bytes(packet)[:40]  # snap like a 200-byte capture would
        assert packet_from_bytes(raw) == packet

    def test_garbage_raises(self):
        with pytest.raises(PacketParseError):
            packet_from_bytes(b"garbage!" * 4)

    def test_try_parse_returns_none(self):
        assert try_parse_packet(b"xx") is None
        assert try_parse_packet(b"") is None

    @given(
        src=st.integers(min_value=0, max_value=0xFFFFFFFF),
        dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
        seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
        length=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_tcp_fields_survive(self, src, dst, seq, length):
        packet = IpPacket(
            src, dst,
            TcpSegment(1, 2, seq, 0, TcpFlags.ACK, payload_len=length),
        )
        assert packet_from_bytes(ip_to_bytes(packet)) == packet
