"""Tests for the Section 6/7 analysis modules, on a shared small scenario."""

import pytest

from repro.core.analysis import (
    activity_timeline,
    analyze_protection,
    analyze_tcp_loss,
    broadcast_airtime_share,
    dispersion_cdf,
    estimate_interference,
    identify_stations,
    oracle_coverage,
    summarize,
    wired_coverage,
)
from repro.core.analysis.dispersion import DispersionCdf
from repro.core.pipeline import JigsawPipeline
from repro.sim import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def analysed():
    config = ScenarioConfig.small(
        seed=99, fraction_11b_clients=0.3, client_rescan_interval_us=800_000
    )
    artifacts = run_scenario(config)
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    return config, artifacts, report


class TestIdentifyStations:
    def test_aps_and_clients_split(self, analysed):
        config, artifacts, report = analysed
        clients, aps = identify_stations(report)
        true_aps = {ap.mac for ap in artifacts.aps}
        true_clients = {sta.mac for sta in artifacts.stations}
        assert aps <= true_aps
        assert clients <= true_clients
        assert len(aps) > 0 and len(clients) > 0
        assert not (clients & aps)


class TestSummary:
    def test_counts_consistent(self, analysed):
        config, artifacts, report = analysed
        summary = summarize(report, artifacts.radio_traces, config.duration_us)
        assert summary.total_events == sum(
            len(t) for t in artifacts.radio_traces
        )
        assert summary.jframes == report.unification.stats.jframes
        assert 0 < summary.error_event_fraction < 1
        assert summary.events_per_jframe > 1

    def test_format_table(self, analysed):
        config, artifacts, report = analysed
        summary = summarize(report, artifacts.radio_traces, config.duration_us)
        text = summary.format_table()
        assert "Raw events" in text and "jframes" in text.lower()


class TestDispersion:
    def test_cdf_monotone(self, analysed):
        _, _, report = analysed
        cdf = dispersion_cdf(report.unification)
        points = cdf.cdf_points()
        fractions = [y for _, y in points]
        assert fractions == sorted(fractions)
        assert points[-1][1] == 1.0

    def test_percentiles_ordered(self, analysed):
        _, _, report = analysed
        cdf = dispersion_cdf(report.unification)
        assert cdf.p50_us <= cdf.p90_us <= cdf.p99_us

    def test_empty_cdf(self):
        cdf = DispersionCdf(samples_us=[])
        assert cdf.p90_us == 0.0
        assert cdf.fraction_below(10) == 0.0
        assert cdf.cdf_points() == []


class TestActivity:
    def test_bins_cover_duration(self, analysed):
        config, _, report = analysed
        timeline = activity_timeline(
            report, config.duration_us, bin_us=config.duration_us // 10
        )
        assert len(timeline.bins) == 10

    def test_beacons_in_every_bin(self, analysed):
        config, _, report = analysed
        timeline = activity_timeline(
            report, config.duration_us, bin_us=config.duration_us // 5
        )
        assert all(b.beacon_frames > 0 for b in timeline.bins)

    def test_active_clients_detected(self, analysed):
        config, _, report = analysed
        timeline = activity_timeline(
            report, config.duration_us, bin_us=config.duration_us
        )
        assert timeline.peak_clients() > 0

    def test_broadcast_airtime_positive(self, analysed):
        config, _, report = analysed
        share = broadcast_airtime_share(report, config.duration_us)
        assert share
        assert all(0 < s < 1 for s in share.values())


class TestCoverageAnalysis:
    def test_wired_coverage_bounds(self, analysed):
        _, artifacts, report = analysed
        result = wired_coverage(artifacts.wired_trace, report.jframes)
        assert 0 <= result.overall() <= 1
        for station in result.stations:
            assert 0 <= station.coverage <= 1
            assert station.observed_packets <= station.wired_packets

    def test_both_kinds_of_stations_present(self, analysed):
        _, artifacts, report = analysed
        result = wired_coverage(artifacts.wired_trace, report.jframes)
        kinds = {s.is_ap for s in result.stations}
        assert kinds == {True, False}

    def test_oracle_coverage(self, analysed):
        _, artifacts, _ = analysed
        result = oracle_coverage(artifacts, artifacts.stations[0].mac)
        assert 0 <= result.coverage <= 1
        assert result.transmitted > 0


class TestInterferenceAnalysis:
    def test_estimator_formula(self):
        from repro.core.analysis.interference import PairInterference
        from repro.dot11.address import MacAddress

        pair = PairInterference(
            sender=MacAddress(1), receiver=MacAddress(2),
            n=200, n0=100, nl0=10, nx=100, nlx=40,
        )
        # P_i = (0.4 - 0.1) / (1 - 0.1) = 1/3 ; X = P_i * nx/n = 1/6.
        assert pair.p_interference == pytest.approx(1 / 3)
        assert pair.interference_loss_rate == pytest.approx(1 / 6)

    def test_negative_pi_truncated_in_rate(self):
        from repro.core.analysis.interference import PairInterference
        from repro.dot11.address import MacAddress

        pair = PairInterference(
            sender=MacAddress(1), receiver=MacAddress(2),
            n=200, n0=100, nl0=20, nx=100, nlx=5,
        )
        assert pair.p_interference < 0
        assert pair.interference_loss_rate == 0.0

    def test_no_simultaneous_returns_none(self):
        from repro.core.analysis.interference import PairInterference
        from repro.dot11.address import MacAddress

        pair = PairInterference(
            sender=MacAddress(1), receiver=MacAddress(2),
            n=100, n0=100, nl0=5, nx=0, nlx=0,
        )
        assert pair.p_interference is None

    def test_end_to_end(self, analysed):
        _, _, report = analysed
        result = estimate_interference(report, min_packets=10)
        for pair in result.pairs:
            assert pair.n == pair.n0 + pair.nx
            assert 0 <= pair.interference_loss_rate <= 1


class TestProtectionAnalysis:
    def test_b_and_g_clients_found(self, analysed):
        config, _, report = analysed
        result = analyze_protection(
            report, config.duration_us,
            bin_us=config.duration_us // 6,
            practical_timeout_us=config.duration_us // 3,
        )
        assert result.b_clients
        assert result.g_clients

    def test_protection_detected_with_11b_present(self, analysed):
        config, _, report = analysed
        result = analyze_protection(
            report, config.duration_us,
            bin_us=config.duration_us // 6,
            practical_timeout_us=config.duration_us // 3,
        )
        assert any(b.protecting_aps for b in result.bins)

    def test_affected_fraction_bounded(self, analysed):
        config, _, report = analysed
        result = analyze_protection(
            report, config.duration_us,
            bin_us=config.duration_us // 6,
            practical_timeout_us=config.duration_us // 3,
        )
        assert 0.0 <= result.peak_affected_fraction() <= 1.0


class TestTcpLossAnalysis:
    def test_rates_bounded(self, analysed):
        _, _, report = analysed
        result = analyze_tcp_loss(report)
        assert result.n_flows > 0
        for row in result.flows:
            assert 0 <= row.loss_rate <= 1
        wireless, wired, unknown = result.aggregate_rates()
        assert 0 <= wireless + wired + unknown <= 1

    def test_cdf_sorted(self, analysed):
        _, _, report = analysed
        result = analyze_tcp_loss(report)
        xs = result.loss_rate_cdf()
        assert xs == sorted(xs)
