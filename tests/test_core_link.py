"""Tests for link-layer reconstruction: attempts and frame exchanges."""


from repro.core.link.attempt import AttemptAssembler
from repro.core.link.exchange import ExchangeAssembler
from repro.core.unify.jframe import Instance, JFrame, JFrameKind
from repro.dot11.address import BROADCAST, MacAddress
from repro.dot11.frame import make_ack, make_cts_to_self, make_data
from repro.dot11.rates import (
    RATE_11,
    RATE_24,
    RATE_54,
    ack_airtime_us,
    cts_to_self_duration_field_us,
    data_duration_field_us,
    frame_airtime_us,
)

STA = MacAddress.parse("00:0c:0c:00:00:01")
STA2 = MacAddress.parse("00:0c:0c:00:00:02")
AP = MacAddress.parse("00:0a:0a:00:00:01")


def jf(frame, end_us, rate=RATE_11, channel=1, txid=0):
    """A synthetic one-instance jframe; timestamp is end-of-reception."""
    duration = frame_airtime_us(frame.size_bytes, rate)
    from repro.jtrace.records import RecordKind, TraceRecord
    from repro.dot11.serialize import frame_to_bytes

    raw = frame_to_bytes(frame)
    record = TraceRecord(
        radio_id=0, timestamp_us=end_us, kind=RecordKind.VALID,
        channel=channel, rate_mbps=rate.mbps, rssi_dbm=-55.0,
        frame_len=len(raw), fcs=int.from_bytes(raw[-4:], "little"),
        snap=raw[:200], duration_us=duration, truth_txid=txid,
    )
    return JFrame(
        timestamp_us=end_us, kind=JFrameKind.VALID, channel=channel,
        instances=[Instance(0, end_us, float(end_us), record)],
        frame=frame, frame_len=len(raw),
        fcs=record.fcs, rate_mbps=rate.mbps, duration_us=duration,
        transmitter=frame.transmitter,
    )


def data_ack_pair(seq, t_end, rate=RATE_11, retry=False, src=STA, dst=AP,
                  body=b"x" * 100):
    """DATA ending at t_end plus its ACK after SIFS."""
    ack_rate = RATE_11 if rate is RATE_11 else RATE_24
    data = make_data(src, dst, AP, seq=seq, body=body, retry=retry).with_duration(
        data_duration_field_us(ack_rate)
    )
    ack_end = t_end + 10 + ack_airtime_us(ack_rate)
    return [jf(data, t_end, rate), jf(make_ack(src), ack_end, ack_rate)]


class TestAttemptAssembly:
    def test_data_plus_ack_grouped(self):
        frames = data_ack_pair(seq=5, t_end=10_000)
        attempts = AttemptAssembler().assemble(frames)
        assert len(attempts) == 1
        attempt = attempts[0]
        assert attempt.acked
        assert attempt.seq == 5
        assert attempt.transmitter == STA

    def test_ack_timing_enforced(self):
        """An ACK outside the Duration window must not attach to an earlier
        DATA frame — it signals a *missing* DATA frame (Section 5.1)."""
        data, _ = data_ack_pair(seq=5, t_end=10_000)
        stray_ack = jf(make_ack(STA), 14_000, RATE_11)  # 4 ms later
        assembler = AttemptAssembler()
        attempts = assembler.assemble([data, stray_ack])
        with_data = [a for a in attempts if a.has_data]
        assert len(with_data) == 1 and not with_data[0].acked
        orphans = [a for a in attempts if not a.has_data]
        assert len(orphans) == 1 and orphans[0].transmitter == STA
        assert assembler.stats.acks_orphaned == 1

    def test_cts_to_self_attached(self):
        body = b"z" * 800
        dur = cts_to_self_duration_field_us(len(body) + 28, RATE_54, RATE_24)
        cts = make_cts_to_self(STA, dur)
        cts_jf = jf(cts, 10_000, RATE_11)
        frames = [cts_jf] + data_ack_pair(
            seq=9, t_end=10_300, rate=RATE_54, body=body
        )
        attempts = AttemptAssembler().assemble(frames)
        assert len(attempts) == 1
        assert attempts[0].cts is cts_jf
        assert attempts[0].acked

    def test_stale_cts_not_attached(self):
        cts = make_cts_to_self(STA, 300)
        frames = [jf(cts, 10_000)] + data_ack_pair(seq=9, t_end=40_000)
        attempts = AttemptAssembler().assemble(frames)
        assert attempts[0].cts is None

    def test_ack_matches_correct_sender(self):
        d1, _ = data_ack_pair(seq=1, t_end=10_000, src=STA)
        d2, a2 = data_ack_pair(seq=7, t_end=10_200, src=STA2)
        attempts = AttemptAssembler().assemble([d1, d2, a2])
        by_src = {a.transmitter: a for a in attempts if a.has_data}
        assert not by_src[STA].acked
        assert by_src[STA2].acked

    def test_broadcast_attempt(self):
        frame = make_data(AP, BROADCAST, AP, seq=3, body=b"arp")
        attempts = AttemptAssembler().assemble([jf(frame, 5_000)])
        assert len(attempts) == 1
        assert attempts[0].is_broadcast
        assert not attempts[0].acked


class TestExchangeAssembly:
    def assemble(self, jframes):
        attempts = AttemptAssembler().assemble(jframes)
        assembler = ExchangeAssembler()
        return assembler.assemble(attempts), assembler.stats

    def test_single_acked_exchange(self):
        exchanges, _ = self.assemble(data_ack_pair(seq=1, t_end=10_000))
        assert len(exchanges) == 1
        assert exchanges[0].delivered is True
        assert exchanges[0].retransmissions == 0

    def test_r2_retransmissions_coalesce(self):
        d1, _ = data_ack_pair(seq=5, t_end=10_000)  # first try, no ACK
        retry_frames = data_ack_pair(seq=5, t_end=12_000, retry=True)
        exchanges, _ = self.assemble([d1] + retry_frames)
        assert len(exchanges) == 1
        assert exchanges[0].retransmissions == 1
        assert exchanges[0].delivered is True

    def test_r3_new_sequence_new_exchange(self):
        frames = data_ack_pair(seq=5, t_end=10_000) + data_ack_pair(
            seq=6, t_end=20_000
        )
        exchanges, _ = self.assemble(frames)
        assert len(exchanges) == 2
        assert [e.seq for e in exchanges] == [5, 6]

    def test_r4_gap_no_inference(self):
        frames = data_ack_pair(seq=5, t_end=10_000) + data_ack_pair(
            seq=9, t_end=20_000
        )
        exchanges, stats = self.assemble(frames)
        assert len(exchanges) == 2

    def test_unacked_exchange_ambiguous(self):
        data, _ = data_ack_pair(seq=5, t_end=10_000)
        exchanges, _ = self.assemble([data])
        assert exchanges[0].delivered is None

    def test_orphan_ack_resolves_open_exchange(self):
        """CTS and ACK observed but DATA missed: the queued ACK upgrades
        the prior same-sender exchange when the next sequence arrives."""
        d5, _ = data_ack_pair(seq=5, t_end=10_000)       # DATA seen, ACK missed
        # The retry's DATA was missed but its ACK was captured:
        _, orphan_ack = data_ack_pair(seq=5, t_end=12_000)
        next_frames = data_ack_pair(seq=6, t_end=30_000)
        exchanges, stats = self.assemble([d5, orphan_ack] + next_frames)
        ex5 = next(e for e in exchanges if e.seq == 5)
        assert ex5.delivered is True
        assert ex5.needed_inference
        assert stats.orphans_resolved == 1

    def test_broadcast_is_r1(self):
        frame = make_data(AP, BROADCAST, AP, seq=3, body=b"arp")
        exchanges, _ = self.assemble([jf(frame, 5_000)])
        assert len(exchanges) == 1
        assert exchanges[0].delivered is True  # no ARQ for broadcast

    def test_interleaved_senders_separate(self):
        frames = (
            data_ack_pair(seq=5, t_end=10_000, src=STA)
            + data_ack_pair(seq=900, t_end=10_500, src=STA2)
            + data_ack_pair(seq=6, t_end=11_000, src=STA)
            + data_ack_pair(seq=901, t_end=11_500, src=STA2)
        )
        exchanges, _ = self.assemble(frames)
        assert len(exchanges) == 4
        by_sender = {}
        for e in exchanges:
            by_sender.setdefault(e.transmitter, []).append(e.seq)
        assert by_sender[STA] == [5, 6]
        assert by_sender[STA2] == [900, 901]

    def test_stale_exchange_closed_by_horizon(self):
        d1, _ = data_ack_pair(seq=5, t_end=10_000)
        # Same sequence number reused 2 s later (wrapped or restarted):
        # beyond the 500 ms horizon it must be a fresh exchange.
        d2, a2 = data_ack_pair(seq=5, t_end=2_010_000)
        exchanges, _ = self.assemble([d1, d2, a2])
        assert len(exchanges) == 2

    def test_sequence_wraparound_delta_one(self):
        frames = data_ack_pair(seq=4095, t_end=10_000) + data_ack_pair(
            seq=0, t_end=20_000
        )
        exchanges, _ = self.assemble(frames)
        assert len(exchanges) == 2  # 4095 -> 0 is delta 1, two exchanges

    def test_first_attempt_with_retry_bit_flags_inference(self):
        frames = data_ack_pair(seq=5, t_end=10_000, retry=True)
        exchanges, stats = self.assemble(frames)
        assert exchanges[0].needed_inference
        assert stats.exchanges_needing_inference == 1

    def test_rate_never_increases_across_retries(self):
        d1, _ = data_ack_pair(seq=5, t_end=10_000, rate=RATE_54)
        retry = data_ack_pair(seq=5, t_end=12_000, rate=RATE_24, retry=True)
        exchanges, _ = self.assemble([d1] + retry)
        assert exchanges[0].final_rate_mbps == 24.0
