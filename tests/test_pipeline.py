"""End-to-end tests for the Jigsaw pipeline on simulated deployments."""

import pytest

from repro.core import JigsawPipeline
from repro.core.unify.unifier import Unifier
from repro.jtrace import read_traces, write_traces
from repro.sim import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def pipelined():
    artifacts = run_scenario(ScenarioConfig.small(seed=314))
    report = JigsawPipeline().run(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    return artifacts, report


class TestPipelineEndToEnd:
    def test_bootstrap_synchronizes_fleet(self, pipelined):
        _, report = pipelined
        assert report.bootstrap.fully_synchronized

    def test_stage_counts_consistent(self, pipelined):
        _, report = pipelined
        stats = report.unification.stats
        assert stats.jframes == len(report.jframes)
        assert report.exchange_stats.exchanges == len(report.exchanges)
        assert stats.instances_unified <= stats.records_in

    def test_exchanges_time_ordered(self, pipelined):
        _, report = pipelined
        starts = [e.start_us for e in report.exchanges]
        assert starts == sorted(starts)

    def test_delivery_verdicts_against_oracle(self, pipelined):
        """Exchange delivery must agree with the simulator's ground truth
        for the overwhelming majority of unicast data exchanges."""
        artifacts, report = pipelined
        hist = artifacts.ground_truth
        truth_acked = {}
        for i, tx in enumerate(hist):
            if tx.frame.ftype.value == "data" and tx.frame.addr1.is_unicast:
                acked = any(
                    later.frame.ftype.value == "ack"
                    and later.frame.addr1 == tx.frame.addr2
                    and 0 <= later.start_us - tx.end_us < 50
                    for later in hist[i + 1 : i + 10]
                )
                truth_acked[tx.txid] = acked
        agree = disagree = 0
        for exchange in report.exchanges:
            if exchange.data_jframe is None or exchange.is_broadcast:
                continue
            txids = [
                a.data.truth_txid() for a in exchange.attempts if a.data
            ]
            if not txids or txids[-1] not in truth_acked:
                continue
            if exchange.delivered is None:
                continue
            if exchange.delivered == truth_acked[txids[-1]]:
                agree += 1
            else:
                disagree += 1
        assert agree > 100
        assert disagree / max(1, agree + disagree) < 0.02

    def test_inference_rate_small(self, pipelined):
        """The paper: 0.58% of attempts / 0.14% of exchanges need
        inference — ours must be in the same 'rare' regime."""
        _, report = pipelined
        stats = report.exchange_stats
        assert stats.exchanges_needing_inference / max(1, stats.exchanges) < 0.25

    def test_flows_reconstructed(self, pipelined):
        artifacts, report = pipelined
        assert len(report.completed_flows()) >= len(artifacts.flows) * 0.5

    def test_summary_text(self, pipelined):
        _, report = pipelined
        text = report.summary()
        assert "jframes" in text and "flows" in text

    def test_precomputed_bootstrap_reused(self, pipelined):
        artifacts, report = pipelined
        again = JigsawPipeline().run(
            artifacts.radio_traces, bootstrap=report.bootstrap
        )
        assert again.unification.stats.jframes == pytest.approx(
            report.unification.stats.jframes, rel=0.01
        )

    def test_pipeline_from_trace_files(self, pipelined, tmp_path):
        artifacts, report = pipelined
        write_traces(artifacts.radio_traces, tmp_path)
        loaded = read_traces(tmp_path)
        replayed = JigsawPipeline().run(
            loaded, clock_groups=artifacts.clock_groups()
        )
        assert replayed.unification.stats.jframes == report.unification.stats.jframes
        assert len(replayed.flows) == len(report.flows)

    def test_custom_unifier_settings(self, pipelined):
        artifacts, _ = pipelined
        report = JigsawPipeline(
            unifier=Unifier(search_window_us=5_000, resync_threshold_us=5.0)
        ).run(artifacts.radio_traces, clock_groups=artifacts.clock_groups())
        assert report.unification.stats.jframes > 0


class TestExchangeRefTrimming:
    def test_materialized_run_keeps_exchange_refs(self, pipelined):
        _, report = pipelined
        segmented = [f for f in report.flows if f.observations]
        assert segmented
        assert all(
            obs.exchange is not None
            for f in segmented
            for obs in f.observations
        )

    def test_streaming_run_trims_exchange_refs(self, pipelined):
        artifacts, batch = pipelined
        report = JigsawPipeline().run_streaming(
            artifacts.radio_traces, [], clock_groups=artifacts.clock_groups()
        )
        assert all(
            obs.exchange is None
            for f in report.flows
            for obs in f.observations
        )
        # Trimming happens after inference: verdict-derived state matches
        # the materialized run exactly.
        assert [
            (str(f.key), f.handshake_complete, len(f.loss_events))
            for f in report.flows
        ] == [
            (str(f.key), f.handshake_complete, len(f.loss_events))
            for f in batch.flows
        ]

    def test_trim_can_be_disabled(self, pipelined):
        artifacts, _ = pipelined
        report = JigsawPipeline().run(
            artifacts.radio_traces,
            clock_groups=artifacts.clock_groups(),
            materialize=False,
            trim_exchange_refs=False,
        )
        assert any(
            obs.exchange is not None
            for f in report.flows
            for obs in f.observations
        )


class TestPartitionBehaviour:
    def test_sparse_fleet_partitions_or_degrades(self):
        """Keep only 2 pods far apart: bootstrap should partition (the
        paper's 10-pod failure mode) or at minimum lose radios."""
        artifacts = run_scenario(ScenarioConfig.small(seed=77))
        order = artifacts.pod_reduction_order()
        keep = [order[-1], order[0]]
        radios = set(artifacts.radios_of_pods(keep))
        traces = [t for t in artifacts.radio_traces if t.radio_id in radios]
        groups = [
            g for g in artifacts.clock_groups() if all(r in radios for r in g)
        ]
        pipeline = JigsawPipeline(auto_widen_bootstrap=False)
        report = pipeline.run(traces, clock_groups=groups)
        # Either partitioned, or fully synced via shared frames — both are
        # legitimate; what may not happen is records silently vanishing.
        stats = report.unification.stats
        assert stats.records_in == sum(len(t) for t in traces)
        assert (
            stats.instances_unified + stats.records_skipped_unsynchronized
            == stats.records_in
        )
