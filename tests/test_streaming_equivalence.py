"""Property tests: sharded/streaming unification ≡ batch unification.

The sharded streaming engine must produce jframe-for-jframe identical
output — timestamps, kinds, instance sets, dispersion, resync counts — to
the batch ``Unifier.unify()`` across every execution mode (generator
stream, serial shards, process-pool shards), on randomized multi-channel
building-style traces.
"""

import random

import pytest

from repro.core.sync.bootstrap import BootstrapResult
from repro.core.unify import ShardedUnifier, Unifier, partition_traces
from repro.dot11.address import MacAddress
from repro.dot11.frame import make_ack, make_data
from repro.dot11.serialize import frame_to_bytes
from repro.jtrace.io import RadioTrace
from repro.jtrace.records import RecordKind, TraceRecord


def _record(radio_id, ts, channel, raw=None, kind=RecordKind.VALID,
            duration=100, rate=11.0):
    if kind is RecordKind.PHY_ERROR:
        snap, frame_len, fcs = b"", 0, 0
    else:
        snap, frame_len = raw[:200], len(raw)
        fcs = int.from_bytes(raw[-4:], "little")
    return TraceRecord(
        radio_id=radio_id, timestamp_us=ts, kind=kind, channel=channel,
        rate_mbps=rate, rssi_dbm=-55.0, frame_len=frame_len, fcs=fcs,
        snap=snap, duration_us=duration,
    )


def random_building_traces(seed, n_channels=3, radios_per_channel=3,
                           transmissions_per_channel=150):
    """A randomized multi-channel deployment with skewed clocks.

    Per channel: several radios (with ppm skew and clock offsets) hear a
    shared sequence of transmissions — unique DATA, retried DATA,
    byte-identical ACKs, corrupted copies and PHY-error stubs — with
    per-radio reception jitter large enough to trigger resyncs.
    """
    rng = random.Random(seed)
    traces = []
    offsets = {}
    radio_id = 0
    for ci in range(n_channels):
        channel = 1 + 5 * ci
        src = MacAddress(0x000C0C000000 + ci + 1)
        dst = MacAddress(0x000A0A000000 + ci + 1)
        radios = []
        for _ in range(radios_per_channel):
            skew_ppm = rng.uniform(-60, 60)
            offset = rng.randint(-40_000, 40_000)
            radios.append((radio_id, skew_ppm, offset, []))
            offsets[radio_id] = float(-offset)
            radio_id += 1
        t = 10_000
        for i in range(transmissions_per_channel):
            t += rng.randint(400, 2_500)
            roll = rng.random()
            if roll < 0.6:
                frame = make_data(src, dst, dst, seq=i % 4096,
                                  body=bytes([i % 251, ci]) * 8)
            elif roll < 0.75:
                frame = make_data(src, dst, dst, seq=i % 4096,
                                  body=bytes([i % 251, ci]) * 8, retry=True)
            else:
                # ACKs are byte-identical across transmissions (and across
                # channels) — the content-key stress case.
                frame = make_ack(src)
            raw = frame_to_bytes(frame)
            for rid, skew_ppm, offset, records in radios:
                if rng.random() < 0.25:
                    continue  # this radio missed the frame
                jitter = rng.choice((0, 0, 1, -1, rng.randint(-25, 25)))
                local = int(round((t + jitter) * (1 + skew_ppm * 1e-6))) + offset
                roll2 = rng.random()
                if roll2 < 0.08:
                    damaged = bytearray(raw)
                    damaged[-5] ^= 0xFF
                    records.append(_record(
                        rid, local, channel, bytes(damaged),
                        kind=RecordKind.CORRUPT,
                    ))
                elif roll2 < 0.13:
                    records.append(_record(
                        rid, local, channel, kind=RecordKind.PHY_ERROR,
                    ))
                else:
                    records.append(_record(rid, local, channel, raw))
        for rid, _, _, records in radios:
            records.sort(key=lambda r: r.timestamp_us)
            traces.append(RadioTrace(rid, channel, records))
    return traces, BootstrapResult(offsets_us=offsets)


def jframe_fingerprint(jf):
    return (
        jf.timestamp_us,
        jf.kind,
        jf.channel,
        jf.frame_len,
        jf.fcs,
        jf.rate_mbps,
        jf.duration_us,
        jf.dispersion_us,
        None if jf.transmitter is None else jf.transmitter.value,
        tuple(
            (inst.radio_id, inst.local_us, inst.universal_us)
            for inst in jf.instances
        ),
    )


def stats_fingerprint(stats):
    return (
        stats.records_in,
        stats.records_skipped_unsynchronized,
        stats.jframes,
        stats.valid_jframes,
        stats.corrupt_jframes,
        stats.phy_error_jframes,
        stats.instances_unified,
        stats.resyncs,
    )


def tracks_fingerprint(tracks):
    return {
        rid: (t.offset_us, t.anchor_local_us, t.skew_ppm, t.resync_count,
              t.skew_samples)
        for rid, t in tracks.items()
    }


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_all_execution_modes_identical(seed):
    traces, bootstrap = random_building_traces(seed)
    batch = Unifier().unify(traces, bootstrap)
    reference = [jframe_fingerprint(jf) for jf in batch.jframes]
    assert reference, "generator produced an empty scenario"
    assert any(jf.n_instances >= 2 for jf in batch.jframes)
    assert batch.stats.resyncs > 0, "scenario must exercise resynchronization"

    streamed = list(Unifier().iter_unify(traces, bootstrap))
    assert [jframe_fingerprint(jf) for jf in streamed] == reference

    serial = ShardedUnifier(max_workers=1).unify(traces, bootstrap)
    assert [jframe_fingerprint(jf) for jf in serial.jframes] == reference
    assert stats_fingerprint(serial.stats) == stats_fingerprint(batch.stats)
    assert tracks_fingerprint(serial.tracks) == tracks_fingerprint(batch.tracks)


@pytest.mark.parametrize("seed", [1, 2])
def test_process_pool_identical(seed):
    traces, bootstrap = random_building_traces(
        seed, transmissions_per_channel=60
    )
    batch = Unifier().unify(traces, bootstrap)
    pooled = ShardedUnifier(max_workers=2).unify(traces, bootstrap)
    assert [jframe_fingerprint(jf) for jf in pooled.jframes] == [
        jframe_fingerprint(jf) for jf in batch.jframes
    ]
    assert stats_fingerprint(pooled.stats) == stats_fingerprint(batch.stats)
    assert tracks_fingerprint(pooled.tracks) == tracks_fingerprint(
        batch.tracks
    )


def test_stream_is_time_ordered_and_lazy():
    traces, bootstrap = random_building_traces(11)
    stream = Unifier().stream_unify(traces, bootstrap)
    seen = []
    last = float("-inf")
    for jf in stream:
        assert jf.timestamp_us >= last
        last = jf.timestamp_us
        seen.append(jf)
    assert stats_fingerprint(stream.stats) == stats_fingerprint(
        Unifier().unify(traces, bootstrap).stats
    )
    assert len(seen) == stream.stats.jframes


@pytest.mark.parametrize("window", [60, 200])
def test_stream_ordered_with_tiny_search_window(window):
    """Search windows smaller than the attachment windows must not break
    the streaming emission order (the watermark covers both)."""
    traces, bootstrap = random_building_traces(31)
    unifier = Unifier(search_window_us=window)
    last = float("-inf")
    count = 0
    for jf in unifier.iter_unify(traces, bootstrap):
        assert jf.timestamp_us >= last
        last = jf.timestamp_us
        count += 1
    assert count == len(unifier.unify(traces, bootstrap).jframes)


def test_unsynchronized_radio_skipped_in_sharded():
    traces, bootstrap = random_building_traces(21)
    dropped = traces[0].radio_id
    del bootstrap.offsets_us[dropped]
    batch = Unifier().unify(traces, bootstrap)
    sharded = ShardedUnifier(max_workers=1).unify(traces, bootstrap)
    assert batch.stats.records_skipped_unsynchronized == len(traces[0])
    assert stats_fingerprint(sharded.stats) == stats_fingerprint(batch.stats)
    assert dropped not in sharded.tracks


class TestPartition:
    def test_channels_split(self):
        traces, _ = random_building_traces(3)
        shards = partition_traces(traces)
        assert len(shards) == 3
        for shard in shards:
            assert len({t.channel for t in shard}) == 1
        # Deterministic order by channel.
        assert [s[0].channel for s in shards] == sorted(
            s[0].channel for s in shards
        )

    def test_mixed_channel_trace_merges_shards(self):
        frame = frame_to_bytes(make_ack(MacAddress(0x1)))
        hopper = RadioTrace(0, 1, [
            _record(0, 1000, 1, frame),
            _record(0, 2000, 6, frame),
        ])
        parked = RadioTrace(1, 6, [_record(1, 1500, 6, frame)])
        other = RadioTrace(2, 11, [_record(2, 1500, 11, frame)])
        shards = partition_traces([hopper, parked, other])
        assert len(shards) == 2
        assert {t.radio_id for t in shards[0]} == {0, 1}
        assert {t.radio_id for t in shards[1]} == {2}

    def test_empty_trace_keeps_its_channel(self):
        empty = RadioTrace(5, 11, [])
        shards = partition_traces([empty])
        assert shards == [[empty]]


def test_small_simulation_equivalence():
    """End-to-end: the simulator's multi-channel fleet, all modes agree."""
    from repro.sim import ScenarioConfig, run_scenario
    from repro.core.sync.bootstrap import bootstrap_synchronization

    artifacts = run_scenario(ScenarioConfig.small(seed=97))
    bootstrap = bootstrap_synchronization(
        artifacts.radio_traces, clock_groups=artifacts.clock_groups()
    )
    batch = Unifier().unify(artifacts.radio_traces, bootstrap)
    sharded = ShardedUnifier(max_workers=1).unify(
        artifacts.radio_traces, bootstrap
    )
    assert [jframe_fingerprint(jf) for jf in sharded.jframes] == [
        jframe_fingerprint(jf) for jf in batch.jframes
    ]
    assert stats_fingerprint(sharded.stats) == stats_fingerprint(batch.stats)
