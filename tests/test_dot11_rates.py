"""Unit tests for rate tables and airtime arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dot11 import constants as C
from repro.dot11.rates import (
    ALL_RATES,
    B_RATES,
    G_RATES,
    RATE_1,
    RATE_2,
    RATE_5_5,
    RATE_6,
    RATE_11,
    RATE_24,
    RATE_54,
    ack_airtime_us,
    ack_rate_for,
    cts_airtime_us,
    cts_to_self_duration_field_us,
    data_duration_field_us,
    duration_field_us,
    frame_airtime_us,
    next_lower_rate,
    payload_duration_us,
    plcp_duration_us,
    protection_overhead_factor,
    rate_from_mbps,
)


class TestRateTables:
    def test_b_rates_are_cck(self):
        assert all(r.is_cck for r in B_RATES)

    def test_g_rates_are_ofdm(self):
        assert all(r.is_ofdm for r in G_RATES)

    def test_all_rates_sorted_ascending(self):
        mbps = [r.mbps for r in ALL_RATES]
        assert mbps == sorted(mbps)
        assert len(ALL_RATES) == 12

    def test_lookup_by_mbps(self):
        assert rate_from_mbps(5.5) is RATE_5_5
        assert rate_from_mbps(54) is RATE_54

    def test_lookup_unknown_rate(self):
        with pytest.raises(ValueError):
            rate_from_mbps(7)

    def test_next_lower_rate_steps_down(self):
        assert next_lower_rate(RATE_11, B_RATES) is RATE_5_5
        assert next_lower_rate(RATE_54, G_RATES).mbps == 48

    def test_next_lower_rate_floors_at_lowest(self):
        assert next_lower_rate(RATE_1, B_RATES) is RATE_1

    def test_str(self):
        assert str(RATE_5_5) == "5.5Mbps/cck"
        assert str(RATE_54) == "54Mbps/ofdm"


class TestAirtime:
    def test_plcp_long_preamble(self):
        assert plcp_duration_us(RATE_1) == 192
        assert plcp_duration_us(RATE_2) == 192

    def test_plcp_short_preamble_not_at_1mbps(self):
        assert plcp_duration_us(RATE_1, short_preamble=True) == 192
        assert plcp_duration_us(RATE_2, short_preamble=True) == 96

    def test_plcp_ofdm(self):
        assert plcp_duration_us(RATE_54) == 20

    def test_cck_payload_is_bits_over_rate(self):
        # 1500 bytes at 11 Mbps: 12000 bits / 11 = 1090.9 -> 1091 us
        assert payload_duration_us(1500, RATE_11) == 1091

    def test_ofdm_payload_quantized_to_symbols(self):
        # (16 + 12000 + 6) bits / 216 bits-per-symbol = 55.65 -> 56 symbols
        assert payload_duration_us(1500, RATE_54) == 56 * 4 + 6

    def test_zero_byte_frame_still_costs_symbols(self):
        assert payload_duration_us(0, RATE_54) > 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            payload_duration_us(-1, RATE_11)

    def test_cts_at_2mbps_long_preamble_is_248us(self):
        # Footnote 7: "CTS: 248 us (our APs send CTS at 2 Mbps with the
        # long preamble)".  14 bytes * 8 / 2 = 56 us + 192 us PLCP.
        assert cts_airtime_us(RATE_2) == 248

    def test_ack_rate_is_basic_rate_below_data_rate(self):
        assert ack_rate_for(RATE_54) is RATE_24
        assert ack_rate_for(RATE_6) is RATE_6
        assert ack_rate_for(RATE_11) is RATE_11
        assert ack_rate_for(RATE_5_5) is RATE_5_5

    def test_ack_airtime_monotone_in_rate(self):
        assert ack_airtime_us(RATE_1) > ack_airtime_us(RATE_11)

    @given(
        size=st.integers(min_value=0, max_value=2346),
        rate=st.sampled_from(ALL_RATES),
    )
    def test_airtime_positive_and_monotone_in_size(self, size, rate):
        airtime = frame_airtime_us(size, rate)
        assert airtime > 0
        assert frame_airtime_us(size + 100, rate) >= airtime

    @given(size=st.integers(min_value=1, max_value=2346))
    def test_faster_cck_rate_never_slower(self, size):
        assert frame_airtime_us(size, RATE_11) <= frame_airtime_us(size, RATE_1)


class TestDurationField:
    def test_clamped_to_15_bits(self):
        assert duration_field_us(100_000) == 0x7FFF
        assert duration_field_us(-5) == 0

    def test_data_duration_covers_sifs_plus_ack(self):
        assert data_duration_field_us(RATE_24) == C.SIFS_US + ack_airtime_us(RATE_24)

    def test_cts_to_self_duration_covers_exchange(self):
        dur = cts_to_self_duration_field_us(1500, RATE_54, RATE_24)
        expected = (
            C.SIFS_US
            + frame_airtime_us(1500, RATE_54)
            + C.SIFS_US
            + ack_airtime_us(RATE_24)
        )
        assert dur == expected


class TestFootnote7:
    def test_protection_overhead_near_paper_value(self):
        """The paper computes 1.98; our airtime model (which includes the
        6 us OFDM signal extension the footnote omits) lands within 5%."""
        factor = protection_overhead_factor()
        assert factor == pytest.approx(1.98, rel=0.05)

    def test_protection_overhead_grows_for_smaller_frames(self):
        small = protection_overhead_factor(mss_bytes=100)
        large = protection_overhead_factor(mss_bytes=1500)
        assert small > large
